//! Synthetic two-channel ECG with medically meaningless mean/σ drift.
//!
//! Fig 7 of the paper shows an ECG recorded from two chest locations:
//! "ECG1 shows dramatic but medically meaningless variation in the **mean**
//! of individual beats. ECG2 shows equally dramatic but also medically
//! meaningless variation in the **standard deviation** of individual beats."
//! That drift is what breaks the implicit z-normalization assumption of ETSC
//! models (Section 4).
//!
//! Beats are ECGSYN-style sums of Gaussian bumps (P, Q, R, S, T waves).
//! Channel 1 adds slow baseline wander (respiration + electrode drift) —
//! mean drift. Channel 2 adds slow amplitude modulation — σ drift. The
//! abnormal class elevates the ST segment, the myocardial-infarction
//! signature the paper quotes from \[20\].

use etsc_core::{AnnotatedStream, Event, UcrDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

use crate::shapes::{add_gaussian_bump, add_noise};

/// Normal sinus beat.
pub const CLASS_NORMAL: usize = 0;
/// ST-elevated (abnormal) beat.
pub const CLASS_ST_ELEVATED: usize = 1;

/// ECG generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct EcgConfig {
    /// Samples per beat (the paper's beats are ~0.5 s; at 250 Hz that is 125).
    pub beat_len: usize,
    /// Additive measurement noise std-dev.
    pub noise: f64,
    /// Peak-to-peak magnitude of channel-1 baseline wander, in units of the
    /// R-wave amplitude.
    pub wander_amp: f64,
    /// Relative depth of channel-2 amplitude modulation (0..1).
    pub am_depth: f64,
    /// Beat-to-beat timing jitter std-dev in samples.
    pub timing_jitter: f64,
}

impl Default for EcgConfig {
    fn default() -> Self {
        Self {
            beat_len: 125,
            noise: 0.01,
            wander_amp: 0.8,
            am_depth: 0.45,
            timing_jitter: 1.5,
        }
    }
}

/// One clean beat (no wander/AM/noise) of the given class.
///
/// Wave placement follows the classic ECGSYN morphology, scaled to
/// `beat_len` samples: P at 15%, Q at 38%, R at 42%, S at 46%, T at 70%.
pub fn clean_beat(class: usize, beat_len: usize, rng: &mut StdRng) -> Vec<f64> {
    let n = beat_len as f64;
    let jit = |rng: &mut StdRng, sd: f64| Normal::new(0.0, sd).unwrap().sample(rng);
    let mut out = vec![0.0; beat_len];
    // (center%, width%, amplitude)
    add_gaussian_bump(&mut out, n * 0.15 + jit(rng, 1.0), n * 0.025, 0.12);
    add_gaussian_bump(&mut out, n * 0.38 + jit(rng, 0.5), n * 0.008, -0.15);
    add_gaussian_bump(&mut out, n * 0.42 + jit(rng, 0.5), n * 0.010, 1.00);
    add_gaussian_bump(&mut out, n * 0.46 + jit(rng, 0.5), n * 0.008, -0.25);
    add_gaussian_bump(&mut out, n * 0.70 + jit(rng, 1.5), n * 0.045, 0.22);
    if class == CLASS_ST_ELEVATED {
        // Elevated ST segment: a broad positive hump between S and T.
        add_gaussian_bump(&mut out, n * 0.57, n * 0.06, 0.30);
    }
    out
}

/// Which channel of the two-lead recording to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// Baseline wander → per-beat **mean** drift (paper's ECG1).
    MeanDrift,
    /// Amplitude modulation → per-beat **σ** drift (paper's ECG2).
    StdDrift,
}

/// A continuous multi-beat recording from one channel, with an event per
/// abnormal beat. `abnormal_every` inserts an ST-elevated beat at that
/// period (0 = never).
pub fn ecg_stream(
    n_beats: usize,
    channel: Channel,
    abnormal_every: usize,
    cfg: &EcgConfig,
    seed: u64,
) -> AnnotatedStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data: Vec<f64> = Vec::with_capacity(n_beats * cfg.beat_len);
    let mut events = Vec::new();

    // Slow modulators: respiration-like sinusoids with incommensurate
    // periods, plus a small random-walk component for the electrode drift.
    let resp_period = 7.3 * cfg.beat_len as f64;
    let drift_period = 23.1 * cfg.beat_len as f64;
    let mut walk = 0.0;

    for b in 0..n_beats {
        let class = if abnormal_every > 0 && b % abnormal_every == abnormal_every - 1 {
            CLASS_ST_ELEVATED
        } else {
            CLASS_NORMAL
        };
        let jitter = Normal::new(0.0, cfg.timing_jitter)
            .unwrap()
            .sample(&mut rng);
        let len = ((cfg.beat_len as f64 + jitter).round() as usize).max(cfg.beat_len / 2);
        let mut beat = clean_beat(class, cfg.beat_len, &mut rng);
        beat.truncate(len.min(beat.len()));

        let start = data.len();
        walk += Normal::new(0.0, 0.02).unwrap().sample(&mut rng);
        walk *= 0.995; // mean-reverting electrode drift
        for (i, &v) in beat.iter().enumerate() {
            let t = (start + i) as f64;
            let sample = match channel {
                Channel::MeanDrift => {
                    let wander = cfg.wander_amp
                        * (0.6 * (std::f64::consts::TAU * t / resp_period).sin()
                            + 0.4 * (std::f64::consts::TAU * t / drift_period).sin())
                        + walk;
                    v + wander
                }
                Channel::StdDrift => {
                    let am = 1.0 - cfg.am_depth
                        + cfg.am_depth
                            * (std::f64::consts::TAU * t / resp_period).sin().powi(2)
                            * 2.0;
                    v * am
                }
            };
            data.push(sample);
        }
        let end = data.len();
        if class == CLASS_ST_ELEVATED {
            events.push(Event::new(start, end, CLASS_ST_ELEVATED));
        }
    }
    add_noise(&mut data, cfg.noise, &mut rng);
    AnnotatedStream::new(data, events)
}

/// A UCR-format beat dataset: `n_per_class` clean, segmented, aligned beats
/// per class — the "contrived into the UCR data format" version of the data,
/// as the archive would present it.
pub fn beat_dataset(n_per_class: usize, cfg: &EcgConfig, seed: u64) -> UcrDataset {
    assert!(n_per_class > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(2 * n_per_class);
    let mut labels = Vec::with_capacity(2 * n_per_class);
    for class in [CLASS_NORMAL, CLASS_ST_ELEVATED] {
        for _ in 0..n_per_class {
            let mut b = clean_beat(class, cfg.beat_len, &mut rng);
            add_noise(&mut b, cfg.noise, &mut rng);
            data.push(b);
            labels.push(class);
        }
    }
    UcrDataset::new(data, labels).expect("generator satisfies UCR invariants")
}

/// Per-beat mean and standard deviation down a stream, chunked at
/// `beat_len` — the measurement Fig 7 visualizes.
pub fn per_beat_stats(stream: &[f64], beat_len: usize) -> Vec<(f64, f64)> {
    stream
        .chunks_exact(beat_len)
        .map(etsc_core::stats::mean_std)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_core::stats::{mean, std_dev};

    #[test]
    fn clean_beat_has_dominant_r_wave() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = clean_beat(CLASS_NORMAL, 125, &mut rng);
        let (argmax, &max) = b
            .iter()
            .enumerate()
            .max_by(|a, c| a.1.partial_cmp(c.1).unwrap())
            .unwrap();
        assert!(max > 0.8, "R amplitude {max}");
        let frac = argmax as f64 / 125.0;
        assert!((0.35..0.50).contains(&frac), "R at {frac}");
    }

    #[test]
    fn st_elevation_raises_st_segment() {
        let mut rng = StdRng::seed_from_u64(2);
        let normal = clean_beat(CLASS_NORMAL, 125, &mut rng);
        let mut rng = StdRng::seed_from_u64(2);
        let abnormal = clean_beat(CLASS_ST_ELEVATED, 125, &mut rng);
        let seg = 0.52..0.62;
        let avg = |b: &[f64]| {
            let lo = (seg.start * 125.0) as usize;
            let hi = (seg.end * 125.0) as usize;
            mean(&b[lo..hi])
        };
        assert!(avg(&abnormal) > avg(&normal) + 0.15);
    }

    #[test]
    fn mean_drift_channel_varies_beat_means() {
        let s = ecg_stream(60, Channel::MeanDrift, 0, &EcgConfig::default(), 3);
        let stats = per_beat_stats(&s.data, 125);
        let means: Vec<f64> = stats.iter().map(|&(m, _)| m).collect();
        let spread = std_dev(&means);
        assert!(spread > 0.2, "beat means should wander, spread {spread}");
    }

    #[test]
    fn std_drift_channel_varies_beat_stds() {
        let s = ecg_stream(60, Channel::StdDrift, 0, &EcgConfig::default(), 4);
        let stats = per_beat_stats(&s.data, 125);
        let stds: Vec<f64> = stats.iter().map(|&(_, sd)| sd).collect();
        let lo = stds.iter().cloned().fold(f64::MAX, f64::min);
        let hi = stds.iter().cloned().fold(f64::MIN, f64::max);
        assert!(hi / lo > 1.5, "σ modulation should be dramatic: {lo}..{hi}");
        // ...while the means stay comparatively stable.
        let means: Vec<f64> = stats.iter().map(|&(m, _)| m).collect();
        assert!(std_dev(&means) < 0.2);
    }

    #[test]
    fn abnormal_beats_are_annotated() {
        let s = ecg_stream(50, Channel::MeanDrift, 10, &EcgConfig::default(), 5);
        assert_eq!(s.events.len(), 5);
        for e in &s.events {
            assert_eq!(e.label, CLASS_ST_ELEVATED);
            assert!(e.end <= s.len());
        }
    }

    #[test]
    fn beat_dataset_is_ucr_shaped() {
        let d = beat_dataset(8, &EcgConfig::default(), 6);
        assert_eq!(d.len(), 16);
        assert_eq!(d.series_len(), 125);
        assert_eq!(d.class_counts(), vec![8, 8]);
    }

    #[test]
    fn stream_is_deterministic() {
        let cfg = EcgConfig::default();
        let a = ecg_stream(10, Channel::StdDrift, 3, &cfg, 9);
        let b = ecg_stream(10, Channel::StdDrift, 3, &cfg, 9);
        assert_eq!(a.data, b.data);
        assert_eq!(a.events, b.events);
    }
}
