//! Synthetic electrooculogram (eye movement) recording.
//!
//! Fig 5 (left) searches one hour of EOG data for the nearest neighbors of
//! GunPoint exemplars. EOG signals are characterized by fixations (flat
//! segments with low noise), saccades (fast, smooth step transitions between
//! gaze targets), and occasional blink artifacts (large transient spikes).
//! Precisely because saccade-plateau-saccade shapes resemble the
//! rise-plateau-fall of a pointing hand, this domain is fertile ground for
//! time series homophones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

use crate::shapes::smoothstep;

/// EOG generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct EogConfig {
    /// Mean fixation duration in samples.
    pub mean_fixation: f64,
    /// Saccade transition duration in samples.
    pub saccade_len: usize,
    /// Gaze amplitude range (levels drawn uniformly within ±this).
    pub gaze_range: f64,
    /// Probability per fixation of a blink artifact.
    pub blink_prob: f64,
    /// Measurement noise std-dev.
    pub noise: f64,
}

impl Default for EogConfig {
    fn default() -> Self {
        Self {
            mean_fixation: 90.0,
            saccade_len: 12,
            gaze_range: 1.0,
            blink_prob: 0.05,
            noise: 0.01,
        }
    }
}

/// Generate `len` samples of synthetic EOG.
pub fn eog_stream(len: usize, cfg: &EogConfig, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let noise = Normal::new(0.0, cfg.noise).unwrap();
    let mut out = Vec::with_capacity(len);
    let mut level = 0.0f64;

    while out.len() < len {
        // Fixation: exponential duration around the mean.
        let u: f64 = rng.random::<f64>().max(1e-9);
        let fix_len = (-u.ln() * cfg.mean_fixation).ceil() as usize + 10;
        for _ in 0..fix_len {
            if out.len() >= len {
                break;
            }
            out.push(level + noise.sample(&mut rng));
        }
        // Possible blink: a sharp up-down spike.
        if rng.random::<f64>() < cfg.blink_prob {
            let blink_len = 18;
            for i in 0..blink_len {
                if out.len() >= len {
                    break;
                }
                let t = i as f64 / blink_len as f64;
                let spike = 2.5 * (std::f64::consts::PI * t).sin().powi(2);
                out.push(level + spike + noise.sample(&mut rng));
            }
        }
        // Saccade to a new gaze target.
        let target = rng.random_range(-cfg.gaze_range..=cfg.gaze_range);
        for i in 0..cfg.saccade_len {
            if out.len() >= len {
                break;
            }
            let t = (i + 1) as f64 / cfg.saccade_len as f64;
            out.push(level + (target - level) * smoothstep(t) + noise.sample(&mut rng));
        }
        level = target;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_core::stats::std_dev;

    #[test]
    fn stream_has_requested_length() {
        assert_eq!(eog_stream(5_000, &EogConfig::default(), 1).len(), 5_000);
    }

    #[test]
    fn stream_is_deterministic() {
        let cfg = EogConfig::default();
        assert_eq!(eog_stream(1_000, &cfg, 4), eog_stream(1_000, &cfg, 4));
        assert_ne!(eog_stream(1_000, &cfg, 4), eog_stream(1_000, &cfg, 5));
    }

    #[test]
    fn fixations_are_flat_and_saccades_move() {
        let cfg = EogConfig {
            blink_prob: 0.0,
            noise: 0.0,
            ..EogConfig::default()
        };
        let s = eog_stream(20_000, &cfg, 6);
        // Derivative is zero during fixations and non-zero in saccades:
        // most increments tiny, some large.
        let incs: Vec<f64> = s.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
        let flat = incs.iter().filter(|&&d| d < 1e-6).count();
        let moving = incs.iter().filter(|&&d| d > 0.01).count();
        assert!(flat > incs.len() / 2, "mostly fixation");
        assert!(moving > 100, "saccades exist");
    }

    #[test]
    fn signal_is_bounded_by_gaze_range_plus_blinks() {
        let cfg = EogConfig::default();
        let s = eog_stream(50_000, &cfg, 7);
        let max = s.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max <= cfg.gaze_range + 2.5 + 0.2);
        assert!(std_dev(&s) > 0.1, "gaze changes produce variance");
    }
}
