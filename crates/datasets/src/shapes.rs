//! Low-level waveform building blocks shared by the generators: smooth ramps,
//! Gaussian bumps, band-limited noise, resampling, and smoothing.

use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Smoothstep ramp from 0 to 1 over `\[0, 1\]` (zero slope at both ends).
/// Inputs outside `\[0, 1\]` clamp.
#[inline]
pub fn smoothstep(t: f64) -> f64 {
    let t = t.clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

/// Gaussian bump `amp * exp(-(t - center)^2 / (2 width^2))` sampled at
/// integer positions `0..len`, added onto `out`.
pub fn add_gaussian_bump(out: &mut [f64], center: f64, width: f64, amp: f64) {
    debug_assert!(width > 0.0);
    let inv = 1.0 / (2.0 * width * width);
    for (i, y) in out.iter_mut().enumerate() {
        let d = i as f64 - center;
        *y += amp * (-d * d * inv).exp();
    }
}

/// Add i.i.d. Gaussian noise with standard deviation `sigma`.
pub fn add_noise<R: Rng>(out: &mut [f64], sigma: f64, rng: &mut R) {
    if sigma <= 0.0 {
        return;
    }
    let n = Normal::new(0.0, sigma).expect("sigma validated positive");
    for y in out.iter_mut() {
        *y += n.sample(rng);
    }
}

/// Centered moving average with window `w` (odd windows recommended).
/// Edges use the available partial window, so output length equals input
/// length.
pub fn moving_average(xs: &[f64], w: usize) -> Vec<f64> {
    assert!(w > 0, "window must be positive");
    let half = w / 2;
    let n = xs.len();
    let mut out = Vec::with_capacity(n);
    // Prefix sums for O(n) smoothing at any window size.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &x in xs {
        prefix.push(prefix.last().unwrap() + x);
    }
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        out.push((prefix[hi] - prefix[lo]) / (hi - lo) as f64);
    }
    out
}

/// Linear-interpolation resampling of `xs` to `new_len` points.
pub fn resample_linear(xs: &[f64], new_len: usize) -> Vec<f64> {
    assert!(!xs.is_empty(), "cannot resample an empty series");
    assert!(new_len > 0, "target length must be positive");
    if xs.len() == 1 {
        return vec![xs[0]; new_len];
    }
    if new_len == 1 {
        return vec![xs[0]];
    }
    let scale = (xs.len() - 1) as f64 / (new_len - 1) as f64;
    (0..new_len)
        .map(|i| {
            let pos = i as f64 * scale;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(xs.len() - 1);
            let frac = pos - lo as f64;
            xs[lo] * (1.0 - frac) + xs[hi] * frac
        })
        .collect()
}

/// A smooth pseudo-random curve of length `len`: a sum of `k` sinusoids with
/// random phases/frequencies drawn from `rng`, normalized to roughly unit
/// amplitude. The building block for synthetic "phoneme" shapes.
pub fn smooth_random_curve<R: Rng>(len: usize, k: usize, rng: &mut R) -> Vec<f64> {
    assert!(len > 0 && k > 0);
    let mut out = vec![0.0; len];
    let mut total_amp = 0.0;
    for h in 0..k {
        // Low harmonics dominate, keeping the curve smooth.
        let freq = (h + 1) as f64 * (0.5 + rng.random::<f64>());
        let amp = 1.0 / (h + 1) as f64;
        let phase = rng.random::<f64>() * std::f64::consts::TAU;
        total_amp += amp;
        for (i, y) in out.iter_mut().enumerate() {
            let t = i as f64 / len as f64;
            *y += amp * (std::f64::consts::TAU * freq * t + phase).sin();
        }
    }
    for y in &mut out {
        *y /= total_amp;
    }
    out
}

/// Crossfade-concatenate `b` onto `a` with an overlap of `fade` samples,
/// modeling coarticulation between phonemes.
pub fn crossfade_append(a: &mut Vec<f64>, b: &[f64], fade: usize) {
    let fade = fade.min(a.len()).min(b.len());
    let start = a.len() - fade;
    for i in 0..fade {
        let w = (i + 1) as f64 / (fade + 1) as f64;
        a[start + i] = a[start + i] * (1.0 - w) + b[i] * w;
    }
    a.extend_from_slice(&b[fade..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn smoothstep_endpoints() {
        assert_eq!(smoothstep(0.0), 0.0);
        assert_eq!(smoothstep(1.0), 1.0);
        assert_eq!(smoothstep(-5.0), 0.0);
        assert_eq!(smoothstep(5.0), 1.0);
        assert!((smoothstep(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gaussian_bump_peaks_at_center() {
        let mut out = vec![0.0; 21];
        add_gaussian_bump(&mut out, 10.0, 2.0, 3.0);
        let peak = out
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 10);
        assert!((out[10] - 3.0).abs() < 1e-12);
        assert!(out[0] < 0.01);
    }

    #[test]
    fn moving_average_flattens_constant() {
        let xs = vec![4.0; 10];
        let sm = moving_average(&xs, 3);
        assert_eq!(sm, xs);
    }

    #[test]
    fn moving_average_reduces_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut xs = vec![0.0; 500];
        add_noise(&mut xs, 1.0, &mut rng);
        let sm = moving_average(&xs, 9);
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&sm) < var(&xs) * 0.5);
    }

    #[test]
    fn moving_average_preserves_length() {
        let xs: Vec<f64> = (0..17).map(|i| i as f64).collect();
        for w in [1, 2, 3, 8, 17, 40] {
            assert_eq!(moving_average(&xs, w).len(), xs.len(), "w={w}");
        }
    }

    #[test]
    fn resample_identity_when_same_length() {
        let xs = [1.0, 2.0, 5.0, 3.0];
        let r = resample_linear(&xs, 4);
        for (a, b) in xs.iter().zip(&r) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn resample_up_and_down_preserves_endpoints() {
        let xs = [2.0, 8.0, -1.0, 4.0, 4.5];
        for len in [2usize, 3, 7, 50] {
            let r = resample_linear(&xs, len);
            assert_eq!(r.len(), len);
            assert!((r[0] - 2.0).abs() < 1e-12);
            assert!((r[len - 1] - 4.5).abs() < 1e-12);
        }
    }

    #[test]
    fn resample_single_point_series() {
        assert_eq!(resample_linear(&[3.0], 5), vec![3.0; 5]);
    }

    #[test]
    fn smooth_random_curve_is_bounded_and_deterministic() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = smooth_random_curve(100, 4, &mut r1);
        let b = smooth_random_curve(100, 4, &mut r2);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.abs() <= 1.0 + 1e-9));
    }

    #[test]
    fn crossfade_append_blends() {
        let mut a = vec![1.0; 10];
        let b = vec![-1.0; 10];
        crossfade_append(&mut a, &b, 4);
        assert_eq!(a.len(), 16);
        // The blend region is strictly between the plateaus.
        assert!(a[6] < 1.0 && a[6] > -1.0);
        assert_eq!(a[15], -1.0);
        assert_eq!(a[0], 1.0);
    }

    #[test]
    fn crossfade_append_zero_fade_is_plain_concat() {
        let mut a = vec![1.0, 2.0];
        crossfade_append(&mut a, &[3.0, 4.0], 0);
        assert_eq!(a, vec![1.0, 2.0, 3.0, 4.0]);
    }
}
