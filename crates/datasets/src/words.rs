//! Synthetic "spoken word" time series — the MFCC-track stand-in.
//!
//! Fig 1 of the paper shows utterances of *cat* and *dog* represented as one
//! MFCC coefficient track; Fig 2 then streams the sentence "It was said that
//! Cathy's dogmatic catechism dogmatized catholic doggery" past a classifier
//! trained on those words and counts six false positives.
//!
//! We synthesize words from a fixed **phoneme inventory**: each letter maps
//! to a deterministic smooth curve (seeded by the letter), words are
//! crossfaded concatenations of their phoneme curves, and utterances get
//! per-rendition amplitude/tempo jitter plus noise. Because words share
//! orthographic prefixes they automatically share acoustic prefixes — the
//! exact property (cat ⊑ catalog, point ⊑ appointment) the paper's prefix and
//! inclusion arguments rest on. A small pronunciation override table makes
//! the paper's homophone pairs (*flower*/*flour*, *wither*/*whither*,
//! *point*/*pointe*, *gun*/*Gunn*) acoustically identical despite different
//! spellings.

use etsc_core::{AnnotatedStream, Event, UcrDataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::shapes::{add_noise, crossfade_append, resample_linear, smooth_random_curve};

/// Fixed master seed for the phoneme inventory. Changing it changes every
/// voice in the corpus, so it is a constant: the inventory is part of the
/// "language", not of any one experiment.
const PHONEME_INVENTORY_SEED: u64 = 0x5045414B_45525321; // "PEAKERS!"

/// Synthesis parameters.
#[derive(Debug, Clone, Copy)]
pub struct WordConfig {
    /// Base samples per vowel phoneme.
    pub vowel_len: usize,
    /// Base samples per consonant phoneme.
    pub consonant_len: usize,
    /// Crossfade overlap between adjacent phonemes (coarticulation).
    pub crossfade: usize,
    /// Additive noise std-dev per utterance.
    pub noise: f64,
    /// Per-utterance amplitude jitter (uniform in `1 ± amp_jitter`).
    pub amp_jitter: f64,
    /// Per-phoneme tempo jitter (uniform in `1 ± time_jitter`).
    pub time_jitter: f64,
}

impl Default for WordConfig {
    fn default() -> Self {
        Self {
            vowel_len: 40,
            consonant_len: 24,
            crossfade: 8,
            noise: 0.03,
            amp_jitter: 0.10,
            time_jitter: 0.12,
        }
    }
}

fn is_vowel(c: char) -> bool {
    matches!(c, 'a' | 'e' | 'i' | 'o' | 'u' | 'y')
}

/// Pronunciation: the phoneme sequence of a word. Letters map one-to-one to
/// phonemes, except for the homophone override table below.
pub fn phonemes(word: &str) -> Vec<char> {
    let w = word.to_ascii_lowercase();
    let canonical: &str = match w.as_str() {
        // The paper's homophones / pseudo-homophones (Section 3.3): same
        // sound, different spelling. We map them to one canonical spelling
        // so their waveforms are identical up to rendition jitter.
        "flour" => "flower",
        "whither" => "wither",
        "pointe" => "point",
        "gunn" => "gun",
        other => other,
    };
    canonical
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .collect()
}

/// The deterministic base curve of one phoneme: a level offset plus a smooth
/// fluctuation, both seeded by the letter alone.
fn phoneme_curve(c: char, len: usize) -> Vec<f64> {
    let seed = PHONEME_INVENTORY_SEED ^ ((c as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let mut rng = StdRng::seed_from_u64(seed);
    let level = rng.random_range(-1.0..1.0);
    let curve = smooth_random_curve(len, 3, &mut rng);
    curve.iter().map(|&v| level + 0.5 * v).collect()
}

/// Synthesize one utterance (rendition) of `word`.
pub fn utterance(word: &str, cfg: &WordConfig, rng: &mut StdRng) -> Vec<f64> {
    let ph = phonemes(word);
    assert!(!ph.is_empty(), "word must contain letters: {word:?}");
    let amp = 1.0 + rng.random_range(-cfg.amp_jitter..=cfg.amp_jitter);
    let mut out: Vec<f64> = Vec::new();
    for &c in &ph {
        let base_len = if is_vowel(c) {
            cfg.vowel_len
        } else {
            cfg.consonant_len
        };
        let stretch = 1.0 + rng.random_range(-cfg.time_jitter..=cfg.time_jitter);
        let len = ((base_len as f64 * stretch).round() as usize).max(4);
        let curve = resample_linear(&phoneme_curve(c, base_len), len);
        if out.is_empty() {
            out = curve;
        } else {
            crossfade_append(&mut out, &curve, cfg.crossfade);
        }
    }
    for v in &mut out {
        *v *= amp;
    }
    add_noise(&mut out, cfg.noise, rng);
    out
}

/// Expected (jitter-free) utterance length of `word` in samples.
pub fn nominal_len(word: &str, cfg: &WordConfig) -> usize {
    let ph = phonemes(word);
    let raw: usize = ph
        .iter()
        .map(|&c| {
            if is_vowel(c) {
                cfg.vowel_len
            } else {
                cfg.consonant_len
            }
        })
        .sum();
    raw.saturating_sub(cfg.crossfade * ph.len().saturating_sub(1))
}

/// Build a UCR-format dataset: `n_per_word` renditions of each word in
/// `vocab`, resampled to `target_len` samples, labeled by vocabulary index.
/// Output is raw; call [`UcrDataset::znormalize`] for archive-style data.
pub fn word_dataset(
    vocab: &[&str],
    n_per_word: usize,
    target_len: usize,
    cfg: &WordConfig,
    seed: u64,
) -> UcrDataset {
    assert!(!vocab.is_empty() && n_per_word > 0 && target_len > 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(vocab.len() * n_per_word);
    let mut labels = Vec::with_capacity(vocab.len() * n_per_word);
    for (label, word) in vocab.iter().enumerate() {
        for _ in 0..n_per_word {
            let u = utterance(word, cfg, &mut rng);
            data.push(resample_linear(&u, target_len));
            labels.push(label);
        }
    }
    UcrDataset::new(data, labels).expect("generator satisfies UCR invariants")
}

/// Render a sentence to a continuous stream with ground-truth events.
///
/// Words are separated by low-level pause segments. An [`Event`] is emitted
/// for every spoken word that **exactly matches** one of `targets`
/// (case-insensitive), labeled with the target's index. Words merely
/// *containing* a target (e.g. *catalog* when the target is *cat*) produce no
/// event — those are precisely the innocuous confusers that become false
/// positives in the streaming experiments.
pub fn sentence_stream(
    sentence: &[&str],
    targets: &[&str],
    cfg: &WordConfig,
    seed: u64,
) -> AnnotatedStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data: Vec<f64> = Vec::new();
    let mut events = Vec::new();

    let push_pause = |data: &mut Vec<f64>, rng: &mut StdRng| {
        let len = rng.random_range(25..45);
        let mut pause = vec![0.0; len];
        add_noise(&mut pause, cfg.noise, rng);
        data.extend_from_slice(&pause);
    };

    push_pause(&mut data, &mut rng);
    for word in sentence {
        let start = data.len();
        let u = utterance(word, cfg, &mut rng);
        data.extend_from_slice(&u);
        let end = data.len();
        let lw = word.to_ascii_lowercase();
        if let Some(ix) = targets.iter().position(|t| t.eq_ignore_ascii_case(&lw)) {
            events.push(Event::new(start, end, ix));
        }
        push_pause(&mut data, &mut rng);
    }
    AnnotatedStream::new(data, events)
}

/// Words beginning with "gun" (a sample of the 88 the paper counts).
pub const GUN_PREFIX_WORDS: &[&str] = &[
    "gunwales",
    "gunnel",
    "gunnysack",
    "gunk",
    "gunner",
    "gunship",
    "gunshot",
    "gunsmith",
];

/// Words beginning with "point" (a sample of the 26 the paper counts).
pub const POINT_PREFIX_WORDS: &[&str] = &[
    "pointedly",
    "pointlessness",
    "pointier",
    "pointman",
    "pointer",
    "pointless",
];

/// Words *containing* "gun" or "point" (the inclusion problem, Section 3.2).
pub const INCLUSION_WORDS: &[&str] = &[
    "disappointing",
    "ballpoints",
    "appointment",
    "burgundy",
    "begun",
    "gunderson",
];

/// The sentence of Fig 2 (lowercased, punctuation dropped).
pub const FIG2_SENTENCE: &[&str] = &[
    "it",
    "was",
    "said",
    "that",
    "cathys",
    "dogmatic",
    "catechism",
    "dogmatized",
    "catholic",
    "doggery",
];

/// The "Amy Gunn" sentence of Section 3.4.
pub const AMY_GUNN_SENTENCE: &[&str] = &[
    "amy",
    "gunn",
    "thought",
    "it",
    "pointless",
    "to",
    "go",
    "on",
    "pointe",
    "before",
    "she",
    "had",
    "begun",
    "her",
    "appointment",
    "to",
    "get",
    "her",
    "burgundy",
    "ballet",
    "shoes",
    "cleaned",
    "of",
    "all",
    "the",
    "gunk",
];

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_core::distance::euclidean;
    use etsc_core::znorm::znormalize;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn phonemes_strip_non_letters_and_lowercase() {
        assert_eq!(phonemes("Cat's"), vec!['c', 'a', 't', 's']);
        assert_eq!(phonemes("DOG"), vec!['d', 'o', 'g']);
    }

    #[test]
    fn homophones_share_pronunciation() {
        assert_eq!(phonemes("flour"), phonemes("flower"));
        assert_eq!(phonemes("whither"), phonemes("wither"));
        assert_eq!(phonemes("pointe"), phonemes("point"));
        assert_eq!(phonemes("Gunn"), phonemes("gun"));
        assert_ne!(phonemes("cat"), phonemes("dog"));
    }

    #[test]
    fn utterance_is_deterministic_per_rng_state() {
        let cfg = WordConfig::default();
        let a = utterance("cat", &cfg, &mut rng(3));
        let b = utterance("cat", &cfg, &mut rng(3));
        assert_eq!(a, b);
    }

    #[test]
    fn renditions_of_same_word_are_similar_but_not_identical() {
        let cfg = WordConfig::default();
        let mut r = rng(4);
        let a = utterance("catalog", &cfg, &mut r);
        let b = utterance("catalog", &cfg, &mut r);
        assert_ne!(a, b);
        // Compare after resampling to a common length; same word should be
        // much closer than different words.
        let n = 100;
        let az = znormalize(&resample_linear(&a, n));
        let bz = znormalize(&resample_linear(&b, n));
        let c = utterance("pointer", &cfg, &mut r);
        let cz = znormalize(&resample_linear(&c, n));
        let d_same = euclidean(&az, &bz);
        let d_diff = euclidean(&az, &cz);
        assert!(
            d_same < d_diff * 0.7,
            "same-word distance {d_same} should beat cross-word {d_diff}"
        );
    }

    #[test]
    fn prefix_word_shares_acoustic_prefix() {
        // Jitter-free: "cat" should match the head of "catalog" closely.
        let cfg = WordConfig {
            noise: 0.0,
            amp_jitter: 0.0,
            time_jitter: 0.0,
            ..WordConfig::default()
        };
        let mut r = rng(5);
        let cat = utterance("cat", &cfg, &mut r);
        let catalog = utterance("catalog", &cfg, &mut r);
        // Compare everything strictly before the final crossfade region of
        // "cat"'s last phoneme, which blends into the next phoneme in
        // "catalog".
        let head = cat.len() - cfg.crossfade;
        let d = euclidean(&cat[..head], &catalog[..head]);
        assert!(
            d / (head as f64).sqrt() < 0.05,
            "prefix mismatch rms {}",
            d / (head as f64).sqrt()
        );
    }

    #[test]
    fn word_dataset_shape_and_labels() {
        let d = word_dataset(&["cat", "dog"], 5, 150, &WordConfig::default(), 6);
        assert_eq!(d.len(), 10);
        assert_eq!(d.series_len(), 150);
        assert_eq!(d.class_counts(), vec![5, 5]);
    }

    #[test]
    fn nominal_len_counts_phonemes() {
        let cfg = WordConfig::default();
        // cat: c(24) a(40) t(24) - 2*8 = 72
        assert_eq!(nominal_len("cat", &cfg), 72);
        assert!(nominal_len("catalog", &cfg) > nominal_len("cat", &cfg));
    }

    #[test]
    fn sentence_stream_emits_events_only_for_exact_targets() {
        let cfg = WordConfig::default();
        let s = sentence_stream(
            &["cat", "catalog", "dog", "dogmatic"],
            &["cat", "dog"],
            &cfg,
            7,
        );
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].label, 0);
        assert_eq!(s.events[1].label, 1);
        assert!(s.events[0].start < s.events[1].start);
        assert!(s.len() > 200);
    }

    #[test]
    fn sentence_stream_events_lie_within_stream() {
        let cfg = WordConfig::default();
        let s = sentence_stream(FIG2_SENTENCE, &["cat", "dog"], &cfg, 8);
        // Fig 2 sentence contains no standalone cat/dog: zero true events.
        assert!(s.events.is_empty());
        let s2 = sentence_stream(&["dog", "cat"], &["cat", "dog"], &cfg, 8);
        for e in &s2.events {
            assert!(e.end <= s2.len());
        }
    }
}
