//! Property tests for the synthetic generators: determinism, shape
//! invariants, and annotation consistency under arbitrary seeds and sizes.

use etsc_datasets::chicken::{chicken_stream, dustbathing_template, ChickenConfig};
use etsc_datasets::ecg::{beat_dataset, ecg_stream, Channel, EcgConfig};
use etsc_datasets::eog::{eog_stream, EogConfig};
use etsc_datasets::epg::{epg_stream, EpgConfig};
use etsc_datasets::gunpoint::{self, GunPointConfig};
use etsc_datasets::random_walk::{random_walk, smoothed_random_walk};
use etsc_datasets::shapes::{moving_average, resample_linear};
use etsc_datasets::transforms::{denormalize, train_test_split, DenormalizeConfig};
use etsc_datasets::words::{phonemes, utterance, word_dataset, WordConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gunpoint_is_deterministic_and_well_shaped(
        seed in 0u64..1000,
        n in 2usize..8,
    ) {
        let cfg = GunPointConfig::default();
        let a = gunpoint::generate(n, &cfg, seed);
        let b = gunpoint::generate(n, &cfg, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), 2 * n);
        prop_assert_eq!(a.series_len(), cfg.series_len);
        prop_assert_eq!(a.n_classes(), 2);
    }

    #[test]
    fn random_walk_determinism_and_length(seed in 0u64..1000, len in 1usize..5000) {
        prop_assert_eq!(random_walk(len, seed).len(), len);
        prop_assert_eq!(
            smoothed_random_walk(len, 7, seed),
            smoothed_random_walk(len, 7, seed)
        );
    }

    #[test]
    fn background_streams_have_exact_length(seed in 0u64..200, len in 10usize..3000) {
        prop_assert_eq!(eog_stream(len, &EogConfig::default(), seed).len(), len);
        prop_assert_eq!(epg_stream(len, &EpgConfig::default(), seed).len(), len);
    }

    #[test]
    fn chicken_events_are_sorted_in_bounds_and_nonoverlapping(seed in 0u64..100) {
        let cfg = ChickenConfig::default();
        let s = chicken_stream(30_000, &cfg, seed);
        prop_assert_eq!(s.len(), 30_000);
        for w in s.events.windows(2) {
            prop_assert!(w[0].start <= w[1].start);
            prop_assert!(w[0].end <= w[1].start, "bouts must not overlap");
        }
        for e in &s.events {
            prop_assert!(e.end <= s.len());
            prop_assert!(e.len() >= cfg.bout_len / 2);
        }
    }

    #[test]
    fn ecg_streams_are_deterministic(seed in 0u64..100, n_beats in 2usize..30) {
        let cfg = EcgConfig::default();
        for ch in [Channel::MeanDrift, Channel::StdDrift] {
            let a = ecg_stream(n_beats, ch, 5, &cfg, seed);
            let b = ecg_stream(n_beats, ch, 5, &cfg, seed);
            prop_assert_eq!(a.data, b.data);
            prop_assert_eq!(a.events, b.events);
        }
        let d = beat_dataset(3, &cfg, seed);
        prop_assert_eq!(d.series_len(), cfg.beat_len);
    }

    #[test]
    fn word_utterances_have_positive_length(seed in 0u64..200) {
        let cfg = WordConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        for word in ["cat", "dog", "catalog", "gun", "point", "appointment"] {
            let u = utterance(word, &cfg, &mut rng);
            prop_assert!(u.len() >= phonemes(word).len() * 4);
        }
    }

    #[test]
    fn word_dataset_respects_requested_shape(
        seed in 0u64..100,
        n in 1usize..5,
        len in 8usize..200,
    ) {
        let d = word_dataset(&["cat", "dog"], n, len, &WordConfig::default(), seed);
        prop_assert_eq!(d.len(), 2 * n);
        prop_assert_eq!(d.series_len(), len);
    }

    #[test]
    fn denormalize_offsets_are_bounded(seed in 0u64..100, max_offset in 0.01f64..5.0) {
        let d = gunpoint::generate(3, &GunPointConfig::default(), seed);
        let cfg = DenormalizeConfig { max_offset, scale_jitter: 0.0 };
        let dn = denormalize(&d, cfg, seed);
        for i in 0..d.len() {
            let delta = dn.series(i)[0] - d.series(i)[0];
            prop_assert!(delta.abs() <= max_offset + 1e-9);
            // The shift is constant across the exemplar.
            for j in 0..d.series_len() {
                prop_assert!((dn.series(i)[j] - d.series(i)[j] - delta).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn split_partitions_the_dataset(seed in 0u64..100, per_class in 1usize..5) {
        let d = gunpoint::generate(per_class + 2, &GunPointConfig::default(), seed);
        let (train, test) = train_test_split(&d, per_class, seed).unwrap();
        prop_assert_eq!(train.len() + test.len(), d.len());
        prop_assert_eq!(train.class_counts(), vec![per_class, per_class]);
    }

    #[test]
    fn resample_round_trip_preserves_endpoints(
        len in 2usize..50,
        target in 2usize..100,
    ) {
        let xs: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin()).collect();
        let r = resample_linear(&xs, target);
        prop_assert_eq!(r.len(), target);
        prop_assert!((r[0] - xs[0]).abs() < 1e-12);
        prop_assert!((r[target - 1] - xs[len - 1]).abs() < 1e-12);
    }

    #[test]
    fn moving_average_is_bounded_by_input_range(len in 1usize..200, w in 1usize..20) {
        let xs: Vec<f64> = (0..len).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let lo = xs.iter().cloned().fold(f64::MAX, f64::min);
        let hi = xs.iter().cloned().fold(f64::MIN, f64::max);
        for v in moving_average(&xs, w) {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}

#[test]
fn dustbathing_template_length_contract() {
    for len in [8usize, 70, 120, 500] {
        assert_eq!(dustbathing_template(len).len(), len);
    }
}
