//! Property tests for the early classifiers: decisions stay in-domain,
//! evaluation invariants hold, and thresholds act monotonically.

use etsc_core::UcrDataset;
use etsc_early::ects::{Ects, EctsConfig};
use etsc_early::metrics::{classify_stream, evaluate, PrefixPolicy};
use etsc_early::relclass::{RelClass, RelClassConfig};
use etsc_early::template::TemplateMatcher;
use etsc_early::{Decision, EarlyClassifier};
use proptest::prelude::*;

/// A small seeded two-class dataset with adjustable separation point.
fn dataset(n: usize, len: usize, split: usize, salt: u64) -> UcrDataset {
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for c in 0..2usize {
        for i in 0..n {
            data.push(
                (0..len)
                    .map(|j| {
                        let h = (i as u64 * 7 + j as u64 * 13 + c as u64 * 29 + salt * 31) % 11;
                        let noise = 0.06 * (h as f64 - 5.0);
                        if j < split {
                            noise
                        } else {
                            c as f64 * 2.0 + noise
                        }
                    })
                    .collect(),
            );
            labels.push(c);
        }
    }
    UcrDataset::new(data, labels).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ects_mpls_are_within_series_length(
        salt in 0u64..50,
        split in 0usize..20,
    ) {
        let d = dataset(5, 24, split, salt);
        let m = Ects::fit(&d, &EctsConfig::default());
        for &mpl in m.mpls() {
            prop_assert!((1..=24).contains(&mpl));
        }
    }

    #[test]
    fn decisions_have_valid_labels_and_confidence(
        salt in 0u64..30,
        prefix_len in 1usize..24,
    ) {
        let d = dataset(5, 24, 6, salt);
        let ects = Ects::fit(&d, &EctsConfig::default());
        let rc = RelClass::fit(&d, &RelClassConfig::default());
        let probe: Vec<f64> = d.series(0)[..prefix_len].to_vec();
        for decision in [ects.decide(&probe), rc.decide(&probe)] {
            if let Decision::Predict { label, confidence } = decision {
                prop_assert!(label < 2);
                prop_assert!((0.0..=1.0).contains(&confidence), "confidence {confidence}");
            }
        }
    }

    #[test]
    fn classify_stream_length_is_bounded(salt in 0u64..30) {
        let d = dataset(6, 24, 6, salt);
        let m = Ects::fit(&d, &EctsConfig::default());
        for (s, _) in d.iter() {
            let (label, len, _) = classify_stream(&m, s, PrefixPolicy::Oracle);
            prop_assert!(label < 2);
            prop_assert!(len >= 1 && len <= s.len());
        }
    }

    #[test]
    fn evaluation_metrics_are_in_unit_range(salt in 0u64..30, split in 0usize..16) {
        let train = dataset(6, 24, split, salt);
        let test = dataset(3, 24, split, salt ^ 0xFF);
        let m = RelClass::fit(&train, &RelClassConfig::default());
        let ev = evaluate(&m, &test, PrefixPolicy::Oracle);
        prop_assert!((0.0..=1.0).contains(&ev.accuracy()));
        prop_assert!((0.0..=1.0).contains(&ev.earliness()));
        prop_assert!((0.0..=1.0).contains(&ev.harmonic_mean()));
        prop_assert!((0.0..=1.0).contains(&ev.commit_rate()));
        prop_assert_eq!(ev.instances.len(), test.len());
    }

    #[test]
    fn template_threshold_is_monotone_in_commitments(
        salt in 0u64..30,
        t_small in 0.05f64..0.3,
        t_extra in 0.05f64..1.0,
    ) {
        let d = dataset(6, 24, 0, salt);
        let tight = TemplateMatcher::from_centroids(&d, t_small, 6);
        let loose = TemplateMatcher::from_centroids(&d, t_small + t_extra, 6);
        // Anything the tight matcher accepts, the loose one must too.
        for (s, _) in d.iter() {
            if tight.decide(s).is_predict() {
                prop_assert!(loose.decide(s).is_predict());
            }
        }
    }

    #[test]
    fn relclass_tau_monotonicity_on_commit_lengths(salt in 0u64..20) {
        let train = dataset(6, 24, 8, salt);
        let lo = RelClass::fit(&train, &RelClassConfig { tau: 0.05, ..Default::default() });
        let hi = RelClass::fit(&train, &RelClassConfig { tau: 0.6, ..Default::default() });
        for (s, _) in train.iter() {
            let (_, len_lo, _) = classify_stream(&lo, s, PrefixPolicy::Oracle);
            let (_, len_hi, _) = classify_stream(&hi, s, PrefixPolicy::Oracle);
            prop_assert!(len_lo <= len_hi, "lower tau must commit no later");
        }
    }
}
