//! Property tests for the early classifiers: decisions stay in-domain,
//! evaluation invariants hold, thresholds act monotonically, and — for
//! every `EarlyClassifier` implementor — the incremental session API
//! reproduces the stateless grow-the-prefix `decide` loop.

use etsc_core::UcrDataset;
use etsc_early::costaware::{CostAware, CostAwareConfig};
use etsc_early::ecdire::{Ecdire, EcdireConfig};
use etsc_early::ects::{Ects, EctsConfig};
use etsc_early::edsc::{Edsc, EdscConfig, ThresholdMethod};
use etsc_early::metrics::{classify_stream, evaluate, PrefixPolicy};
use etsc_early::relclass::{RelClass, RelClassConfig};
use etsc_early::teaser::{Teaser, TeaserConfig};
use etsc_early::template::TemplateMatcher;
use etsc_early::threshold::ProbThreshold;
use etsc_early::{Decision, EarlyClassifier, SessionNorm};
use proptest::prelude::*;

/// Assert that pushing `series` sample-by-sample through a fresh raw
/// session produces, at every prefix length up to and including the first
/// commit, exactly the decision of the stateless `decide` on that prefix —
/// the contract the session API is built on. (Sessions latch after the
/// first commit, which is the early classification, so the comparison stops
/// there.)
fn assert_session_reproduces_decide(clf: &dyn EarlyClassifier, series: &[f64]) {
    let mut session = clf.session(SessionNorm::Raw);
    for t in 0..series.len() {
        let incremental = session.push(series[t]);
        let batch = clf.decide(&series[..t + 1]);
        assert_eq!(
            incremental,
            batch,
            "session diverged from decide at prefix {}/{}",
            t + 1,
            series.len()
        );
        if incremental.is_predict() {
            break;
        }
    }
}

/// The first-commit outcome of the old offline evaluation loop: grow the
/// prefix one point at a time, query `decide`, stop at the first `Predict`.
fn first_commit_via_decide(clf: &dyn EarlyClassifier, series: &[f64]) -> Option<(usize, usize)> {
    let start = clf.min_prefix().clamp(1, series.len());
    for len in start..=series.len() {
        if let Some(label) = clf.decide(&series[..len]).label() {
            return Some((len, label));
        }
    }
    None
}

/// The first-commit outcome of a session under `norm` over the same series.
fn first_commit_via_session_norm(
    clf: &dyn EarlyClassifier,
    norm: SessionNorm,
    series: &[f64],
) -> Option<(usize, usize)> {
    let mut session = clf.session(norm);
    for (i, &x) in series.iter().enumerate() {
        if let Some(label) = session.push(x).label() {
            return Some((i + 1, label));
        }
    }
    None
}

/// The first-commit outcome of a raw session over the same series.
fn first_commit_via_session(clf: &dyn EarlyClassifier, series: &[f64]) -> Option<(usize, usize)> {
    first_commit_via_session_norm(clf, SessionNorm::Raw, series)
}

/// The first-commit outcome of the per-prefix reference loop: grow the
/// prefix, z-normalize it honestly, query `decide` — what the replay
/// fallback used to compute, and the semantics `SessionNorm::PerPrefix`
/// sessions must track.
fn first_commit_via_znorm_decide(
    clf: &dyn EarlyClassifier,
    series: &[f64],
) -> Option<(usize, usize)> {
    let start = clf.min_prefix().clamp(1, series.len());
    for len in start..=series.len() {
        let z = etsc_core::znorm::znormalize(&series[..len]);
        if let Some(label) = clf.decide(&z).label() {
            return Some((len, label));
        }
    }
    None
}

/// Assert a `PerPrefix` session tracks the renormalize-and-decide reference
/// to documented tolerance: the running-sums algebra regroups the same
/// floating-point arithmetic, so a commit may shift by at most one sample
/// where a score grazes its threshold, and labels must agree.
fn assert_per_prefix_session_tracks_reference(clf: &dyn EarlyClassifier, series: &[f64]) {
    let a = first_commit_via_znorm_decide(clf, series);
    let b = first_commit_via_session_norm(clf, SessionNorm::PerPrefix, series);
    match (a, b) {
        (None, None) => {}
        (Some((la, ca)), Some((lb, cb))) => {
            assert_eq!(ca, cb, "labels must agree");
            assert!(
                la.abs_diff(lb) <= 1,
                "commit step {la} vs {lb} drifted by more than one sample"
            );
        }
        _ => panic!("one path committed, the other never did: {a:?} vs {b:?}"),
    }
}

/// A small seeded two-class dataset with adjustable separation point.
fn dataset(n: usize, len: usize, split: usize, salt: u64) -> UcrDataset {
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for c in 0..2usize {
        for i in 0..n {
            data.push(
                (0..len)
                    .map(|j| {
                        let h = (i as u64 * 7 + j as u64 * 13 + c as u64 * 29 + salt * 31) % 11;
                        let noise = 0.06 * (h as f64 - 5.0);
                        if j < split {
                            noise
                        } else {
                            c as f64 * 2.0 + noise
                        }
                    })
                    .collect(),
            );
            labels.push(c);
        }
    }
    UcrDataset::new(data, labels).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ects_mpls_are_within_series_length(
        salt in 0u64..50,
        split in 0usize..20,
    ) {
        let d = dataset(5, 24, split, salt);
        let m = Ects::fit(&d, &EctsConfig::default());
        for &mpl in m.mpls() {
            prop_assert!((1..=24).contains(&mpl));
        }
    }

    #[test]
    fn decisions_have_valid_labels_and_confidence(
        salt in 0u64..30,
        prefix_len in 1usize..24,
    ) {
        let d = dataset(5, 24, 6, salt);
        let ects = Ects::fit(&d, &EctsConfig::default());
        let rc = RelClass::fit(&d, &RelClassConfig::default());
        let probe: Vec<f64> = d.series(0)[..prefix_len].to_vec();
        for decision in [ects.decide(&probe), rc.decide(&probe)] {
            if let Decision::Predict { label, confidence } = decision {
                prop_assert!(label < 2);
                prop_assert!((0.0..=1.0).contains(&confidence), "confidence {confidence}");
            }
        }
    }

    #[test]
    fn classify_stream_length_is_bounded(salt in 0u64..30) {
        let d = dataset(6, 24, 6, salt);
        let m = Ects::fit(&d, &EctsConfig::default());
        for (s, _) in d.iter() {
            let (label, len, _) = classify_stream(&m, s, PrefixPolicy::Oracle);
            prop_assert!(label < 2);
            prop_assert!(len >= 1 && len <= s.len());
        }
    }

    #[test]
    fn evaluation_metrics_are_in_unit_range(salt in 0u64..30, split in 0usize..16) {
        let train = dataset(6, 24, split, salt);
        let test = dataset(3, 24, split, salt ^ 0xFF);
        let m = RelClass::fit(&train, &RelClassConfig::default());
        let ev = evaluate(&m, &test, PrefixPolicy::Oracle);
        prop_assert!((0.0..=1.0).contains(&ev.accuracy()));
        prop_assert!((0.0..=1.0).contains(&ev.earliness()));
        prop_assert!((0.0..=1.0).contains(&ev.harmonic_mean()));
        prop_assert!((0.0..=1.0).contains(&ev.commit_rate()));
        prop_assert_eq!(ev.instances.len(), test.len());
    }

    #[test]
    fn template_threshold_is_monotone_in_commitments(
        salt in 0u64..30,
        t_small in 0.05f64..0.3,
        t_extra in 0.05f64..1.0,
    ) {
        let d = dataset(6, 24, 0, salt);
        let tight = TemplateMatcher::from_centroids(&d, t_small, 6);
        let loose = TemplateMatcher::from_centroids(&d, t_small + t_extra, 6);
        // Anything the tight matcher accepts, the loose one must too.
        for (s, _) in d.iter() {
            if tight.decide(s).is_predict() {
                prop_assert!(loose.decide(s).is_predict());
            }
        }
    }

    #[test]
    fn relclass_tau_monotonicity_on_commit_lengths(salt in 0u64..20) {
        let train = dataset(6, 24, 8, salt);
        let lo = RelClass::fit(&train, &RelClassConfig { tau: 0.05, ..Default::default() });
        let hi = RelClass::fit(&train, &RelClassConfig { tau: 0.6, ..Default::default() });
        for (s, _) in train.iter() {
            let (_, len_lo, _) = classify_stream(&lo, s, PrefixPolicy::Oracle);
            let (_, len_hi, _) = classify_stream(&hi, s, PrefixPolicy::Oracle);
            prop_assert!(len_lo <= len_hi, "lower tau must commit no later");
        }
    }
}

// Session/decide equivalence, one property per `EarlyClassifier`
// implementor. Fitting happens inside each case, so the case counts are
// kept low; the per-prefix assertions are exhaustive over every probe.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn ects_sessions_reproduce_decide(salt in 0u64..40, split in 0usize..16) {
        let d = dataset(5, 24, split, salt);
        for relaxed in [false, true] {
            let m = Ects::fit(&d, &EctsConfig { relaxed, ..EctsConfig::default() });
            for (s, _) in d.iter() {
                assert_session_reproduces_decide(&m, s);
            }
        }
    }

    #[test]
    fn edsc_sessions_reproduce_decide(salt in 0u64..40) {
        let d = dataset(5, 24, 4, salt);
        for method in [
            ThresholdMethod::Chebyshev { k: 2.0 },
            ThresholdMethod::Kde { precision: 0.85 },
        ] {
            let cfg = EdscConfig {
                lengths: vec![6, 10],
                stride: 3,
                method,
                min_precision: 0.7,
                max_features_per_class: 6,
            };
            let m = Edsc::fit(&d, &cfg);
            for (s, _) in d.iter() {
                assert_session_reproduces_decide(&m, s);
            }
        }
    }

    #[test]
    fn relclass_sessions_reproduce_decide(salt in 0u64..40, split in 0usize..12) {
        let d = dataset(5, 24, split, salt);
        for cfg in [RelClassConfig::default(), RelClassConfig::ldg(0.1)] {
            let m = RelClass::fit(&d, &cfg);
            for (s, _) in d.iter() {
                assert_session_reproduces_decide(&m, s);
            }
        }
    }

    #[test]
    fn relclass_full_covariance_sessions_reproduce_decide(salt in 0u64..40, split in 0usize..12) {
        // Previously a ReplaySession fallback. The incremental session
        // extends one forward-substitution row per push against the factor
        // computed at fit time — identical arithmetic in identical order to
        // the batch path, so the equivalence is exact, not toleranced.
        let d = dataset(5, 24, split, salt);
        let m = RelClass::fit(
            &d,
            &RelClassConfig {
                covariance: etsc_classifiers::gaussian::CovarianceKind::Full,
                ..Default::default()
            },
        );
        for (s, _) in d.iter() {
            assert_session_reproduces_decide(&m, s);
        }
    }

    #[test]
    fn teaser_sessions_reproduce_decide(salt in 0u64..30) {
        let d = dataset(5, 24, 6, salt);
        let cfg = TeaserConfig { n_snapshots: 6, ..TeaserConfig::fast() };
        let m = Teaser::fit(&d, &cfg);
        for (s, _) in d.iter() {
            assert_session_reproduces_decide(&m, s);
        }
    }

    #[test]
    fn checkpoint_algorithm_sessions_reproduce_decide(salt in 0u64..30, split in 0usize..12) {
        let d = dataset(5, 24, split, salt);
        let ecdire = Ecdire::fit(&d, &EcdireConfig { n_checkpoints: 6, ..EcdireConfig::default() });
        let stopping = etsc_early::stopping_rule::StoppingRule::fit(
            &d,
            &etsc_early::stopping_rule::StoppingRuleConfig {
                n_checkpoints: 6,
                gamma_grid_steps: 3,
                ..Default::default()
            },
        );
        let costaware = CostAware::fit(
            &d,
            &CostAwareConfig { n_checkpoints: 6, ..CostAwareConfig::default() },
        );
        let models: [&dyn EarlyClassifier; 3] = [&ecdire, &stopping, &costaware];
        for m in models {
            for (s, _) in d.iter() {
                assert_session_reproduces_decide(m, s);
            }
        }
    }

    #[test]
    fn prob_threshold_sessions_reproduce_decide(salt in 0u64..40, thr in 0.55f64..0.95) {
        let d = dataset(5, 24, 0, salt);
        let m = ProbThreshold::new(
            etsc_classifiers::centroid::NearestCentroid::fit(&d),
            thr,
            24,
            2,
        );
        for (s, _) in d.iter() {
            assert_session_reproduces_decide(&m, s);
        }
    }

    #[test]
    fn first_commits_agree_between_session_and_decide_loop(salt in 0u64..40) {
        // The headline claim of the session API: streaming one sample at a
        // time commits at exactly the same step, with the same label, as
        // the old offline grow-the-prefix loop.
        let d = dataset(5, 24, 6, salt);
        let ects = Ects::fit(&d, &EctsConfig::default());
        let rc = RelClass::fit(&d, &RelClassConfig::default());
        let models: [&dyn EarlyClassifier; 2] = [&ects, &rc];
        for m in models {
            for (s, _) in d.iter() {
                prop_assert_eq!(first_commit_via_decide(m, s), first_commit_via_session(m, s));
            }
        }
    }

    #[test]
    fn per_prefix_sessions_track_znormalized_decide(salt in 0u64..40, split in 0usize..12) {
        // The three remaining previously-fallback combinations, each under
        // honest per-prefix z-normalization: RelClass (every covariance
        // kind), ProbThreshold (centroid and full-Gaussian substrates), and
        // EDSC. Tolerance is documented on each session type: the
        // closed-form running sums regroup the batch arithmetic, so commits
        // may shift by at most one sample at threshold grazes.
        let d = dataset(5, 24, split, salt);
        use etsc_classifiers::gaussian::{CovarianceKind, GaussianModel};
        let rc_diag = RelClass::fit(&d, &RelClassConfig::default());
        let rc_ldg = RelClass::fit(&d, &RelClassConfig::ldg(0.1));
        let rc_full = RelClass::fit(
            &d,
            &RelClassConfig { covariance: CovarianceKind::Full, ..Default::default() },
        );
        let pt_centroid = ProbThreshold::new(
            etsc_classifiers::centroid::NearestCentroid::fit(&d),
            0.7,
            24,
            2,
        );
        let pt_gauss = ProbThreshold::new(
            GaussianModel::fit(&d, CovarianceKind::Full),
            0.7,
            24,
            2,
        );
        let edsc = Edsc::fit(
            &d,
            &EdscConfig {
                lengths: vec![6, 10],
                stride: 3,
                method: ThresholdMethod::Chebyshev { k: 2.0 },
                min_precision: 0.7,
                max_features_per_class: 6,
            },
        );
        let models: [&dyn EarlyClassifier; 6] =
            [&rc_diag, &rc_ldg, &rc_full, &pt_centroid, &pt_gauss, &edsc];
        for m in models {
            for (s, _) in d.iter() {
                assert_per_prefix_session_tracks_reference(m, s);
            }
        }
    }

    #[test]
    fn template_sessions_match_decide_to_tolerance(salt in 0u64..40, thr in 0.2f64..0.8) {
        // The template session evaluates the same z-normalized distance
        // through the correlation identity, which reassociates the floating
        // point sums — so commits may shift by at most one sample when a
        // distance grazes the threshold, and confidences agree to ~1e-6.
        let d = dataset(5, 24, 0, salt);
        let m = TemplateMatcher::from_centroids(&d, thr, 4);
        for (s, _) in d.iter() {
            let a = first_commit_via_decide(&m, s);
            let b = first_commit_via_session(&m, s);
            match (a, b) {
                (None, None) => {}
                (Some((la, ca)), Some((lb, cb))) => {
                    prop_assert_eq!(ca, cb, "labels must agree");
                    prop_assert!(
                        la.abs_diff(lb) <= 1,
                        "commit step {} vs {} drifted by more than one sample",
                        la,
                        lb
                    );
                }
                _ => prop_assert!(false, "one path committed, the other never did: {a:?} vs {b:?}"),
            }
        }
    }
}
