//! RelClass — reliable early classification from incomplete information
//! (after Parrish et al., JMLR 2013) — and its LDG variant.
//!
//! The idea: model each class as a Gaussian over the *full-length* series.
//! A prefix is then scored under each class's **marginal** distribution over
//! the observed coordinates (for a Gaussian, simply the leading sub-vector
//! and principal submatrix). The classifier commits once the decision is
//! *reliable* — once the posterior computed from the prefix favors one class
//! by at least τ.
//!
//! **Documented substitution** (see DESIGN.md): Parrish et al. bound the
//! probability that the prefix decision will agree with the eventual
//! full-length decision by solving a quadratic program over the unseen
//! suffix ("the box method"). We operationalize reliability as the posterior
//! margin `P(best | prefix) − P(second | prefix)` of the same class-
//! conditional Gaussians, *discounted by the observed fraction* `t / L` of
//! the series — the unseen suffix carries `(L − t)` coordinates of variance
//! that could still overturn the decision, so reliability cannot approach 1
//! until most of the series has arrived. Both our proxy and Parrish's bound
//! grow as the prefix pins down the class, both reach 1 only with (near-)
//! complete observation, and the τ = 0.1 operating point of Table 1 keeps
//! the same "commit early, tolerate residual uncertainty" meaning.
//!
//! * **Rel. Class.** — per-class diagonal covariances (quadratic boundary).
//! * **LDG Rel. Class.** — pooled ("linear discriminant Gaussian")
//!   covariance, giving a linear boundary.

use etsc_classifiers::gaussian::{
    softmax_of_logs_in_place, CovarianceKind, GaussianLikelihoodSession, GaussianModel,
    GaussianZnormSession,
};
use etsc_classifiers::{Classifier, ScoreSession};
use etsc_core::{ClassLabel, UcrDataset};
use etsc_persist::{Decoder, Encoder, Persist, PersistError};

use crate::{
    expect_norm, expect_session_tag, get_decision, put_decision, put_norm, session_tags, Decision,
    DecisionSession, EarlyClassifier, SessionNorm,
};

/// RelClass hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct RelClassConfig {
    /// Reliability threshold τ ∈ [0, 1]. Table 1 uses 0.1.
    pub tau: f64,
    /// Covariance structure: `Diagonal` = Rel. Class., `PooledDiagonal` =
    /// LDG Rel. Class., `Full` = QDA variant on short series.
    pub covariance: CovarianceKind,
    /// Smallest prefix length considered.
    pub min_prefix: usize,
}

impl Default for RelClassConfig {
    fn default() -> Self {
        Self {
            tau: 0.1,
            covariance: CovarianceKind::Diagonal,
            min_prefix: 3,
        }
    }
}

impl RelClassConfig {
    /// The LDG (pooled covariance) variant at the given τ.
    pub fn ldg(tau: f64) -> Self {
        Self {
            tau,
            covariance: CovarianceKind::PooledDiagonal,
            min_prefix: 3,
        }
    }
}

/// A fitted RelClass model.
#[derive(Debug, Clone)]
pub struct RelClass {
    model: GaussianModel,
    tau: f64,
    min_prefix: usize,
}

impl RelClass {
    /// Fit the Gaussian class models on `train`.
    pub fn fit(train: &UcrDataset, cfg: &RelClassConfig) -> Self {
        assert!((0.0..=1.0).contains(&cfg.tau), "τ must be in [0, 1]");
        Self {
            model: GaussianModel::fit(train, cfg.covariance),
            tau: cfg.tau,
            min_prefix: cfg.min_prefix.max(1),
        }
    }

    /// Calibrated class posterior over a prefix.
    ///
    /// Naive-Bayes log-likelihoods *sum* per-coordinate evidence, so even a
    /// non-discriminating region drives the softmax to saturation once
    /// enough coordinates accumulate. RelClass therefore scores classes by
    /// the **mean** log-likelihood per observed coordinate — the posterior
    /// then reflects how discriminating the observed region actually is,
    /// which is what the reliability judgment needs.
    pub fn calibrated_posterior(&self, prefix: &[f64]) -> Vec<f64> {
        let t = prefix.len().min(self.model.series_len()).max(1) as f64;
        let logs: Vec<f64> = (0..self.model.n_classes())
            .map(|c| {
                (self.model.class_prior(c).max(1e-12).ln()
                    + self.model.log_likelihood_prefix(c, prefix))
                    / t
            })
            .collect();
        etsc_classifiers::gaussian::softmax_of_logs(&logs)
    }

    /// Reliability proxy for a prefix: calibrated posterior margin
    /// discounted by the fraction of the series observed (the unseen suffix
    /// could still overturn the decision).
    pub fn reliability(&self, prefix: &[f64]) -> f64 {
        let p = self.calibrated_posterior(prefix);
        let (best, second) = crate::top_two(&p);
        let observed =
            prefix.len().min(self.model.series_len()) as f64 / self.model.series_len() as f64;
        (best - second) * observed
    }
}

impl EarlyClassifier for RelClass {
    fn n_classes(&self) -> usize {
        self.model.n_classes()
    }

    fn series_len(&self) -> usize {
        self.model.series_len()
    }

    fn min_prefix(&self) -> usize {
        self.min_prefix
    }

    fn decide(&self, prefix: &[f64]) -> Decision {
        if prefix.len() < self.min_prefix {
            return Decision::Wait;
        }
        let p = self.calibrated_posterior(prefix);
        let label = etsc_classifiers::argmax(&p);
        if self.reliability(prefix) >= self.tau {
            Decision::Predict {
                label,
                confidence: p[label],
            }
        } else {
            Decision::Wait
        }
    }

    fn session(&self, norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
        // Every covariance kind and both norms run incrementally.
        // * Raw: the likelihood accumulator — per-coordinate sums for
        //   diagonal kinds (O(classes) per sample), one forward-substitution
        //   row per class for Full (O(classes × prefix) per sample, vs
        //   O(classes × prefix³) for refactoring per push) — and decisions
        //   reproduce `decide` exactly.
        // * PerPrefix: the z-norm running-sums algebra (see
        //   `GaussianZnormSession`), which applies each prefix-wide
        //   mean/std change as a closed-form update instead of replaying
        //   the prefix; decisions track `decide(&znormalize(prefix))` to
        //   floating-point reassociation tolerance.
        let scorer = match norm {
            SessionNorm::Raw => LikelihoodScorer::Raw(self.model.likelihood_session()),
            SessionNorm::PerPrefix => {
                LikelihoodScorer::Znorm(self.model.znorm_likelihood_session())
            }
        };
        Box::new(RelClassSession {
            model: self,
            scorer,
            ll: vec![0.0; self.model.n_classes()],
            posterior: vec![0.0; self.model.n_classes()],
            len: 0,
            decision: Decision::Wait,
        })
    }

    fn predict_full(&self, series: &[f64]) -> ClassLabel {
        self.model.predict(series)
    }

    fn resume_session(
        &self,
        norm: SessionNorm,
        dec: &mut Decoder<'_>,
    ) -> Result<Box<dyn DecisionSession + '_>, PersistError> {
        expect_session_tag(dec, session_tags::RELCLASS)?;
        expect_norm(dec, norm)?;
        let mut scorer = match norm {
            SessionNorm::Raw => LikelihoodScorer::Raw(self.model.likelihood_session()),
            SessionNorm::PerPrefix => {
                LikelihoodScorer::Znorm(self.model.znorm_likelihood_session())
            }
        };
        {
            let mut sub = dec.section("relclass scorer")?;
            match &mut scorer {
                LikelihoodScorer::Raw(s) => s.load_state(&mut sub)?,
                LikelihoodScorer::Znorm(s) => s.load_state(&mut sub)?,
            }
            sub.finish()?;
        }
        let len = dec.get_usize("relclass len")?;
        let decision = get_decision(dec, self.model.n_classes())?;
        Ok(Box::new(RelClassSession {
            model: self,
            scorer,
            ll: vec![0.0; self.model.n_classes()],
            posterior: vec![0.0; self.model.n_classes()],
            len,
            decision,
        }))
    }
}

impl Persist for RelClass {
    const KIND: &'static str = "RelClass";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.section(|e| self.model.encode_body(e));
        enc.put_f64(self.tau);
        enc.put_usize(self.min_prefix);
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let mut sub = dec.section("relclass model")?;
        let model = GaussianModel::decode_body(&mut sub)?;
        sub.finish()?;
        let tau = dec.get_f64("relclass tau")?;
        if !(0.0..=1.0).contains(&tau) {
            return Err(PersistError::Corrupt(format!("relclass: tau {tau}")));
        }
        let min_prefix = dec.get_usize("relclass min_prefix")?.max(1);
        Ok(Self {
            model,
            tau,
            min_prefix,
        })
    }
}

/// The per-class log-likelihood accumulator behind a [`RelClassSession`]:
/// raw samples feed a [`GaussianLikelihoodSession`] (exact), per-prefix
/// z-normalized sessions feed a [`GaussianZnormSession`] (running-sums
/// algebra, documented tolerance).
enum LikelihoodScorer<'a> {
    Raw(GaussianLikelihoodSession<'a>),
    Znorm(GaussianZnormSession<'a>),
}

impl LikelihoodScorer<'_> {
    fn push(&mut self, x: f64) {
        match self {
            LikelihoodScorer::Raw(s) => s.push(x),
            LikelihoodScorer::Znorm(s) => s.push(x),
        }
    }

    fn len(&self) -> usize {
        match self {
            LikelihoodScorer::Raw(s) => s.len(),
            LikelihoodScorer::Znorm(s) => s.len(),
        }
    }

    fn log_likelihoods_into(&self, out: &mut [f64]) {
        match self {
            LikelihoodScorer::Raw(s) => out.copy_from_slice(s.log_likelihoods()),
            LikelihoodScorer::Znorm(s) => s.log_likelihoods_into(out),
        }
    }

    fn reset(&mut self) {
        match self {
            LikelihoodScorer::Raw(s) => s.reset(),
            LikelihoodScorer::Znorm(s) => s.reset(),
        }
    }
}

/// Incremental RelClass session over Gaussian class models.
///
/// The scorer accumulates each class's log-likelihood as samples arrive
/// (see [`LikelihoodScorer`]), and the calibrated posterior, reliability
/// discount, and τ-gate are evaluated on those running sums — amortized
/// O(classes) per sample for diagonal covariances versus
/// O(classes × prefix) for the stateless [`RelClass::decide`] (for the Full
/// covariance the gap is prefix² per push: one forward-substitution row
/// instead of a fresh factor-and-solve).
struct RelClassSession<'a> {
    model: &'a RelClass,
    scorer: LikelihoodScorer<'a>,
    /// Scratch: per-class log-likelihoods as of the last push.
    ll: Vec<f64>,
    posterior: Vec<f64>,
    /// Samples consumed, counted independently of the scorer so latched
    /// pushes stay O(1).
    len: usize,
    decision: Decision,
}

impl DecisionSession for RelClassSession<'_> {
    fn push(&mut self, x: f64) -> Decision {
        self.len += 1;
        if self.decision.is_predict() {
            return self.decision; // latched: count the sample, skip the work
        }
        self.scorer.push(x);
        let model = self.model;
        if self.scorer.len() < model.min_prefix {
            return Decision::Wait;
        }
        // Calibrated posterior: mean log-likelihood per observed coordinate
        // (mirrors `calibrated_posterior`).
        let series_len = model.model.series_len();
        let t = self.scorer.len().min(series_len).max(1) as f64;
        self.scorer.log_likelihoods_into(&mut self.ll);
        for (c, out) in self.posterior.iter_mut().enumerate() {
            *out = (model.model.class_prior(c).max(1e-12).ln() + self.ll[c]) / t;
        }
        softmax_of_logs_in_place(&mut self.posterior);
        let label = etsc_classifiers::argmax(&self.posterior);
        // Reliability: posterior margin discounted by observed fraction
        // (mirrors `reliability`).
        let (best, second) = crate::top_two(&self.posterior);
        let observed = self.scorer.len().min(series_len) as f64 / series_len as f64;
        if (best - second) * observed >= model.tau {
            self.decision = Decision::Predict {
                label,
                confidence: self.posterior[label],
            };
        }
        self.decision
    }

    fn decision(&self) -> Decision {
        self.decision
    }

    fn len(&self) -> usize {
        self.len
    }

    fn reset(&mut self) {
        self.scorer.reset();
        self.len = 0;
        self.decision = Decision::Wait;
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u8(session_tags::RELCLASS);
        put_norm(
            enc,
            match self.scorer {
                LikelihoodScorer::Raw(_) => SessionNorm::Raw,
                LikelihoodScorer::Znorm(_) => SessionNorm::PerPrefix,
            },
        );
        enc.try_section(|e| match &self.scorer {
            LikelihoodScorer::Raw(s) => s.save_state(e),
            LikelihoodScorer::Znorm(s) => s.save_state(e),
        })?;
        enc.put_usize(self.len);
        put_decision(enc, self.decision);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate, PrefixPolicy};

    fn toy(n: usize, len: usize, gap: f64) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n {
                data.push(
                    (0..len)
                        .map(|j| {
                            c as f64 * gap + 0.2 * (((i * 13 + j * 7) % 10) as f64 / 10.0 - 0.5)
                        })
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    #[test]
    fn commits_early_on_separated_classes() {
        let train = toy(10, 30, 3.0);
        let rc = RelClass::fit(&train, &RelClassConfig::default());
        let test = toy(5, 30, 3.0);
        let ev = evaluate(&rc, &test, PrefixPolicy::Oracle);
        assert!(ev.accuracy() >= 0.9, "accuracy {}", ev.accuracy());
        assert!(ev.earliness() < 0.35, "earliness {}", ev.earliness());
    }

    #[test]
    fn higher_tau_delays_commitment() {
        let train = toy(10, 30, 0.8);
        let test = toy(5, 30, 0.8);
        let lo = RelClass::fit(
            &train,
            &RelClassConfig {
                tau: 0.05,
                ..Default::default()
            },
        );
        let hi = RelClass::fit(
            &train,
            &RelClassConfig {
                tau: 0.9,
                ..Default::default()
            },
        );
        let e_lo = evaluate(&lo, &test, PrefixPolicy::Oracle).earliness();
        let e_hi = evaluate(&hi, &test, PrefixPolicy::Oracle).earliness();
        assert!(e_lo <= e_hi + 1e-9, "τ=0.05 ({e_lo}) vs τ=0.9 ({e_hi})");
    }

    #[test]
    fn ldg_variant_works() {
        let train = toy(10, 20, 2.0);
        let rc = RelClass::fit(&train, &RelClassConfig::ldg(0.1));
        let test = toy(5, 20, 2.0);
        let ev = evaluate(&rc, &test, PrefixPolicy::Oracle);
        assert!(ev.accuracy() >= 0.9);
    }

    #[test]
    fn reliability_grows_with_prefix_on_separated_data() {
        let train = toy(10, 30, 3.0);
        let rc = RelClass::fit(&train, &RelClassConfig::default());
        let probe: Vec<f64> = vec![0.0; 30];
        let r_short = rc.reliability(&probe[..4]);
        let r_long = rc.reliability(&probe[..25]);
        assert!(r_long >= r_short - 1e-9, "short {r_short} long {r_long}");
        assert!(r_long > 0.8);
    }

    #[test]
    fn waits_below_min_prefix() {
        let train = toy(6, 20, 3.0);
        let rc = RelClass::fit(&train, &RelClassConfig::default());
        assert_eq!(rc.decide(&[0.0, 0.0]), Decision::Wait);
    }

    #[test]
    fn predict_full_is_bayes_decision() {
        let train = toy(10, 20, 2.0);
        let rc = RelClass::fit(&train, &RelClassConfig::default());
        assert_eq!(rc.predict_full(&[0.0; 20]), 0);
        assert_eq!(rc.predict_full(&[2.0; 20]), 1);
    }

    #[test]
    fn diagonal_session_reproduces_decide_exactly() {
        let train = toy(10, 30, 0.8);
        for cfg in [RelClassConfig::default(), RelClassConfig::ldg(0.1)] {
            let rc = RelClass::fit(&train, &cfg);
            for probe_idx in [0, train.len() - 1] {
                let probe = train.series(probe_idx);
                let mut s = rc.session(crate::SessionNorm::Raw);
                for t in 0..probe.len() {
                    let inc = s.push(probe[t]);
                    let batch = rc.decide(&probe[..t + 1]);
                    assert_eq!(inc, batch, "probe {probe_idx} prefix {}", t + 1);
                    if inc.is_predict() {
                        break; // sessions latch at the first commit
                    }
                }
            }
        }
    }

    #[test]
    fn full_covariance_session_reproduces_decide_exactly() {
        // The Full-kind session extends one forward-substitution row per
        // push against the covariance factor computed at fit time — the
        // same arithmetic, in the same order, as the batch path, so the
        // equivalence is exact (not merely toleranced).
        let train = toy(10, 12, 2.0);
        let rc = RelClass::fit(
            &train,
            &RelClassConfig {
                covariance: CovarianceKind::Full,
                ..Default::default()
            },
        );
        for probe_idx in [0, train.len() - 1] {
            let probe = train.series(probe_idx);
            let mut s = rc.session(crate::SessionNorm::Raw);
            for t in 0..probe.len() {
                let inc = s.push(probe[t]);
                assert_eq!(inc, rc.decide(&probe[..t + 1]), "prefix {}", t + 1);
                if inc.is_predict() {
                    break;
                }
            }
        }
    }

    #[test]
    fn per_prefix_session_tracks_znormalized_decide() {
        use etsc_core::znorm::znormalize;
        let train = toy(10, 30, 0.8);
        for cfg in [
            RelClassConfig::default(),
            RelClassConfig::ldg(0.1),
            RelClassConfig {
                covariance: CovarianceKind::Full,
                ..Default::default()
            },
        ] {
            let rc = RelClass::fit(&train, &cfg);
            for probe_idx in [0, train.len() - 1] {
                let probe = train.series(probe_idx);
                let mut s = rc.session(crate::SessionNorm::PerPrefix);
                for t in 0..probe.len() {
                    let inc = s.push(probe[t]);
                    let batch = rc.decide(&znormalize(&probe[..t + 1]));
                    // Running-sums algebra: same arithmetic regrouped, so
                    // commits may shift only where the margin grazes τ
                    // within fp noise; labels and confidences must agree.
                    assert_eq!(
                        inc.is_predict(),
                        batch.is_predict(),
                        "{:?} probe {probe_idx} prefix {}",
                        cfg.covariance,
                        t + 1
                    );
                    if let (Some((li, ci)), Some((lb, cb))) =
                        (inc.label_confidence(), batch.label_confidence())
                    {
                        assert_eq!(li, lb);
                        assert!((ci - cb).abs() < 1e-9, "confidence {ci} vs {cb}");
                        break; // sessions latch at the first commit
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "τ must be in")]
    fn rejects_bad_tau() {
        let train = toy(4, 10, 1.0);
        let _ = RelClass::fit(
            &train,
            &RelClassConfig {
                tau: 1.5,
                ..Default::default()
            },
        );
    }
}
