//! Stopping-rule early classification (Mori et al., IEEE TNNLS 2018;
//! reference \[10\] of the paper).
//!
//! The classifier emits posteriors at every checkpoint; a learned linear
//! **stopping rule** decides whether to halt:
//!
//! ```text
//! halt  ⇔  γ1·p(1) + γ2·(p(1) − p(2)) + γ3·(t / L)  >  0
//! ```
//!
//! where `p(1) ≥ p(2)` are the two largest posteriors. The coefficients γ
//! are grid-searched on training data to minimize the combined cost
//! `α·(1 − accuracy) + (1 − α)·earliness` — the explicit accuracy/earliness
//! trade-off this line of work optimizes.

use etsc_core::{ClassLabel, UcrDataset};
use etsc_persist::{Decoder, Encoder, Persist, PersistError};

use crate::checkpoints::{BaseClassifier, CheckpointCursor, CheckpointEnsemble};
use crate::{
    expect_norm, expect_session_tag, get_decision, put_decision, put_norm, session_tags, Decision,
    DecisionSession, EarlyClassifier, SessionNorm,
};

/// Stopping-rule hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct StoppingRuleConfig {
    /// Number of checkpoints.
    pub n_checkpoints: usize,
    /// Trade-off weight: cost = `alpha·(1 − acc) + (1 − alpha)·earliness`.
    pub alpha: f64,
    /// Base classifier per checkpoint.
    pub base: BaseClassifier,
    /// Grid of values each γ coefficient may take.
    pub gamma_grid_steps: usize,
    /// Smallest usable prefix length.
    pub min_len: usize,
}

impl Default for StoppingRuleConfig {
    fn default() -> Self {
        Self {
            n_checkpoints: 20,
            alpha: 0.8,
            base: BaseClassifier::Centroid,
            gamma_grid_steps: 5,
            min_len: 4,
        }
    }
}

/// A fitted stopping-rule model.
#[derive(Debug, Clone)]
pub struct StoppingRule {
    ensemble: CheckpointEnsemble,
    gamma: [f64; 3],
}

use crate::top_two;

impl StoppingRule {
    /// Fit the checkpoint ensemble and grid-search γ on `train`.
    pub fn fit(train: &UcrDataset, cfg: &StoppingRuleConfig) -> Self {
        assert!((0.0..=1.0).contains(&cfg.alpha), "alpha must be in [0, 1]");
        assert!(cfg.gamma_grid_steps >= 2, "grid needs at least 2 steps");
        let ensemble = CheckpointEnsemble::fit(train, cfg.base, cfg.n_checkpoints, cfg.min_len);
        let series_len = ensemble.series_len() as f64;

        // Precompute per-instance, per-checkpoint posterior features on
        // honest (cross-validated) posteriors where possible; fall back to
        // resubstitution if the training set cannot be folded.
        let cv = CheckpointEnsemble::cross_val_posteriors(
            train,
            cfg.base,
            cfg.n_checkpoints,
            cfg.min_len,
        );
        // features[i][ci] = (p1, p1 - p2, t/L, argmax label)
        let n = train.len();
        let n_ckpt = ensemble.lengths().len();
        let mut features = vec![Vec::with_capacity(n_ckpt); n];
        match cv {
            Some(cv) => {
                // cross_val_posteriors orders instances odd-fold-then-even;
                // rebuild per-instance sequences from the known order.
                let even: Vec<usize> = (0..n).step_by(2).collect();
                let odd: Vec<usize> = (1..n).step_by(2).collect();
                let order: Vec<usize> = odd.iter().chain(even.iter()).copied().collect();
                for (ci, pairs) in cv.iter().enumerate() {
                    for (k, (p, _)) in pairs.iter().enumerate() {
                        let i = order[k];
                        let (p1, p2) = top_two(p);
                        let t = ensemble.lengths()[ci] as f64 / series_len;
                        features[i].push((p1, p1 - p2, t, etsc_classifiers::argmax(p)));
                    }
                }
            }
            None => {
                for (i, (s, _)) in train.iter().enumerate() {
                    for ci in 0..n_ckpt {
                        let p = ensemble.proba_at(ci, s);
                        let (p1, p2) = top_two(&p);
                        let t = ensemble.lengths()[ci] as f64 / series_len;
                        features[i].push((p1, p1 - p2, t, etsc_classifiers::argmax(&p)));
                    }
                }
            }
        }

        // Grid search γ ∈ [-1, 1]^3 minimizing the combined cost.
        let steps = cfg.gamma_grid_steps;
        let grid: Vec<f64> = (0..steps)
            .map(|k| -1.0 + 2.0 * k as f64 / (steps - 1) as f64)
            .collect();
        let mut best = ([0.0f64; 3], f64::INFINITY);
        for &g1 in &grid {
            for &g2 in &grid {
                for &g3 in &grid {
                    let gamma = [g1, g2, g3];
                    let mut correct = 0usize;
                    let mut earliness_sum = 0.0;
                    for (i, _) in train.iter().enumerate() {
                        let (pred, t_frac) = Self::simulate(&features[i], gamma);
                        if pred == train.label(i) {
                            correct += 1;
                        }
                        earliness_sum += t_frac;
                    }
                    let acc = correct as f64 / n as f64;
                    let earl = earliness_sum / n as f64;
                    let cost = cfg.alpha * (1.0 - acc) + (1.0 - cfg.alpha) * earl;
                    if cost < best.1 {
                        best = (gamma, cost);
                    }
                }
            }
        }

        Self {
            ensemble,
            gamma: best.0,
        }
    }

    /// Walk one instance's checkpoint features under a candidate rule;
    /// returns (prediction, fraction of series consumed).
    fn simulate(feats: &[(f64, f64, f64, ClassLabel)], gamma: [f64; 3]) -> (ClassLabel, f64) {
        for &(p1, diff, t, label) in feats {
            // The final checkpoint always halts.
            let is_last = t >= 1.0 - 1e-12;
            if is_last || gamma[0] * p1 + gamma[1] * diff + gamma[2] * t > 0.0 {
                return (label, t);
            }
        }
        // Defensive: empty feature list (cannot happen for fitted models).
        (0, 1.0)
    }

    /// The learned stopping-rule coefficients `[γ1, γ2, γ3]`.
    pub fn gamma(&self) -> [f64; 3] {
        self.gamma
    }
}

impl EarlyClassifier for StoppingRule {
    fn n_classes(&self) -> usize {
        self.ensemble.n_classes()
    }

    fn series_len(&self) -> usize {
        self.ensemble.series_len()
    }

    fn min_prefix(&self) -> usize {
        self.ensemble.lengths()[0]
    }

    fn decide(&self, prefix: &[f64]) -> Decision {
        let Some(ci) = self.ensemble.latest_checkpoint(prefix.len()) else {
            return Decision::Wait;
        };
        let p = self.ensemble.proba_at(ci, prefix);
        self.halt_rule(ci, &p)
    }

    fn session(&self, norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
        Box::new(StoppingRuleSession {
            model: self,
            cursor: self.ensemble.cursor(norm),
            len: 0,
            decision: Decision::Wait,
        })
    }

    fn predict_full(&self, series: &[f64]) -> ClassLabel {
        let last = self.ensemble.lengths().len() - 1;
        etsc_classifiers::argmax(&self.ensemble.proba_at(last, series))
    }

    fn resume_session(
        &self,
        norm: SessionNorm,
        dec: &mut Decoder<'_>,
    ) -> Result<Box<dyn DecisionSession + '_>, PersistError> {
        expect_session_tag(dec, session_tags::STOPPING_RULE)?;
        expect_norm(dec, norm)?;
        let mut cursor = self.ensemble.cursor(norm);
        {
            let mut sub = dec.section("stopping-rule cursor")?;
            cursor.load_state(&mut sub)?;
            sub.finish()?;
        }
        let len = dec.get_usize("stopping-rule len")?;
        let decision = get_decision(dec, self.n_classes())?;
        Ok(Box::new(StoppingRuleSession {
            model: self,
            cursor,
            len,
            decision,
        }))
    }
}

impl Persist for StoppingRule {
    const KIND: &'static str = "StoppingRule";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.section(|e| self.ensemble.encode_body(e));
        for g in self.gamma {
            enc.put_f64(g);
        }
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let mut sub = dec.section("stopping-rule ensemble")?;
        let ensemble = CheckpointEnsemble::decode_body(&mut sub)?;
        sub.finish()?;
        let gamma = [
            dec.get_f64("stopping-rule gamma1")?,
            dec.get_f64("stopping-rule gamma2")?,
            dec.get_f64("stopping-rule gamma3")?,
        ];
        Ok(Self { ensemble, gamma })
    }
}

impl StoppingRule {
    /// Apply the learned stopping rule to one checkpoint's posterior.
    fn halt_rule(&self, ci: usize, p: &[f64]) -> Decision {
        let (p1, p2) = top_two(p);
        let t = self.ensemble.lengths()[ci] as f64 / self.ensemble.series_len() as f64;
        let is_last = ci == self.ensemble.lengths().len() - 1;
        let halt =
            is_last || self.gamma[0] * p1 + self.gamma[1] * (p1 - p2) + self.gamma[2] * t > 0.0;
        if halt {
            Decision::Predict {
                label: etsc_classifiers::argmax(p),
                confidence: p1,
            }
        } else {
            Decision::Wait
        }
    }
}

/// Incremental stopping-rule session: evaluates the halt rule once per
/// checkpoint boundary (via [`CheckpointCursor`]); every other push is O(1).
struct StoppingRuleSession<'a> {
    model: &'a StoppingRule,
    cursor: CheckpointCursor<'a>,
    /// Samples consumed, counted independently of the cursor so latched
    /// pushes stay O(1).
    len: usize,
    decision: Decision,
}

impl DecisionSession for StoppingRuleSession<'_> {
    fn push(&mut self, x: f64) -> Decision {
        self.len += 1;
        if self.decision.is_predict() {
            return self.decision; // latched: count the sample, skip the work
        }
        if let Some(ci) = self.cursor.push(x) {
            let (_, p) = self.cursor.latest().expect("just completed");
            self.decision = self.model.halt_rule(ci, p);
        }
        self.decision
    }

    fn decision(&self) -> Decision {
        self.decision
    }

    fn len(&self) -> usize {
        self.len
    }

    fn reset(&mut self) {
        self.cursor.reset();
        self.len = 0;
        self.decision = Decision::Wait;
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u8(session_tags::STOPPING_RULE);
        put_norm(enc, self.cursor.norm());
        enc.section(|e| self.cursor.save_state(e));
        enc.put_usize(self.len);
        put_decision(enc, self.decision);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate, PrefixPolicy};

    fn toy(n: usize, len: usize, split: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n {
                data.push(
                    (0..len)
                        .map(|j| {
                            let noise = 0.05 * (((i * 3 + j) % 8) as f64 - 3.5);
                            if j < split {
                                noise
                            } else {
                                c as f64 * 2.0 + noise
                            }
                        })
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    #[test]
    fn accurate_on_separable_data() {
        let train = toy(10, 40, 0);
        let test = toy(5, 40, 0);
        let m = StoppingRule::fit(&train, &StoppingRuleConfig::default());
        let ev = evaluate(&m, &test, PrefixPolicy::Oracle);
        assert!(ev.accuracy() >= 0.9, "accuracy {}", ev.accuracy());
    }

    #[test]
    fn alpha_controls_the_tradeoff() {
        let train = toy(10, 40, 10);
        let test = toy(5, 40, 10);
        // Accuracy-obsessed vs earliness-obsessed configurations.
        let acc_first = StoppingRule::fit(
            &train,
            &StoppingRuleConfig {
                alpha: 0.99,
                ..Default::default()
            },
        );
        let early_first = StoppingRule::fit(
            &train,
            &StoppingRuleConfig {
                alpha: 0.1,
                ..Default::default()
            },
        );
        let e_acc = evaluate(&acc_first, &test, PrefixPolicy::Oracle);
        let e_early = evaluate(&early_first, &test, PrefixPolicy::Oracle);
        assert!(
            e_early.earliness() <= e_acc.earliness() + 1e-9,
            "earliness-weighted rule must not be later: {} vs {}",
            e_early.earliness(),
            e_acc.earliness()
        );
    }

    #[test]
    fn always_halts_at_final_checkpoint() {
        let train = toy(8, 32, 0);
        let m = StoppingRule::fit(&train, &StoppingRuleConfig::default());
        let probe = train.series(0);
        assert!(m.decide(probe).is_predict(), "full prefix must halt");
    }

    #[test]
    fn gamma_is_within_grid() {
        let train = toy(8, 32, 8);
        let m = StoppingRule::fit(&train, &StoppingRuleConfig::default());
        for g in m.gamma() {
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn waits_below_first_checkpoint() {
        let train = toy(8, 32, 0);
        let m = StoppingRule::fit(&train, &StoppingRuleConfig::default());
        assert_eq!(m.decide(&[0.0]), Decision::Wait);
    }
}
