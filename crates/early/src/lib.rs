#![warn(missing_docs)]
// Numeric kernels below index several parallel arrays per iteration; explicit
// index loops are the clearer idiom there.
#![allow(clippy::needless_range_loop)]

//! # etsc-early
//!
//! Early time series classification (ETSC) algorithms — the systems the
//! paper benchmarks in Table 1 plus TEASER (Fig 3, Appendix B), implemented
//! from scratch:
//!
//! * [`ects`] — ECTS and RelaxedECTS (Xing et al., KAIS 2012): 1NN with
//!   Minimum Prediction Lengths derived from reverse-nearest-neighbor
//!   stability.
//! * [`edsc`] — EDSC (Xing et al., SDM 2011): early distinctive shapelet
//!   features with CHE (Chebyshev) or KDE threshold learning.
//! * [`relclass`] — RelClass and its LDG variant (after Parrish et al., JMLR
//!   2013): Gaussian class models scored on prefix marginals with a
//!   reliability threshold τ.
//! * [`teaser`] — TEASER (Schäfer & Leser, DMKD 2020): per-snapshot slave
//!   classifiers, one-class master filters, and a consistency counter.
//! * [`template`] — open-world template matching with an absolute distance
//!   threshold (the Section 5 dustbathing instrument).
//! * [`threshold`] — the fixed probability-threshold framing of Fig 3
//!   (right), wrapping any probabilistic classifier.
//! * [`metrics`] — earliness/accuracy evaluation with an explicit
//!   **prefix-normalization policy**, because whether prefixes are
//!   normalized with future statistics (the UCR convention) or honestly is
//!   exactly the issue Section 4 of the paper raises.
//!
//! ## Streaming-first sessions
//!
//! The primary runtime API is the stateful [`DecisionSession`]: open one per
//! monitored stream (or per candidate anchor within a stream), feed it one
//! sample at a time with [`DecisionSession::push`], and read the
//! [`Decision`] each push returns. Sessions maintain running state —
//! Welford statistics for online z-normalization, incremental partial
//! Euclidean sums for the 1NN-based models, per-snapshot/per-checkpoint
//! caches for the ensemble models — so the amortized cost of one sample
//! does **not** grow with the prefix length, where the stateless
//! [`EarlyClassifier::decide`] recomputes the whole prefix on every call.
//!
//! [`EarlyClassifier::decide`] remains as the offline convenience (UCR-style
//! evaluation queries arbitrary prefixes), and [`MultiSession`] drives many
//! concurrent sessions — many anchors of one monitor, or many independent
//! streams — over a single fitted model.

pub mod checkpoints;
pub mod costaware;
pub mod ecdire;
pub mod ects;
pub mod edsc;
pub mod metrics;
pub mod relclass;
pub mod stopping_rule;
pub mod teaser;
pub mod template;
pub mod threshold;

use etsc_core::parallel;
use etsc_core::znorm::znormalize_in_place;
use etsc_core::ClassLabel;
pub use etsc_persist::{Decoder, Encoder, PersistError};

/// Envelope kind tag for standalone session checkpoints (see
/// [`checkpoint_session`] / [`resume_session`]).
pub const SESSION_STATE_KIND: &str = "DecisionSessionState";

/// State-schema tags written at the head of every built-in session's saved
/// state, so resuming against the wrong algorithm or the wrong
/// [`SessionNorm`] fails loudly ([`PersistError::Corrupt`]) instead of
/// misinterpreting accumulators.
pub(crate) mod session_tags {
    pub const ECTS: u8 = 1;
    pub const EDSC_RAW: u8 = 2;
    pub const EDSC_ZNORM: u8 = 3;
    pub const RELCLASS: u8 = 4;
    pub const TEASER: u8 = 5;
    pub const TEMPLATE: u8 = 6;
    pub const PROB_THRESHOLD: u8 = 7;
    pub const ECDIRE: u8 = 8;
    pub const STOPPING_RULE: u8 = 9;
    pub const COST_AWARE: u8 = 10;
}

/// Encode a [`Decision`] (persist helper shared by the session states).
pub(crate) fn put_decision(enc: &mut Encoder, d: Decision) {
    match d {
        Decision::Wait => enc.put_u8(0),
        Decision::Predict { label, confidence } => {
            enc.put_u8(1);
            enc.put_usize(label);
            enc.put_f64(confidence);
        }
    }
}

/// Decode a [`Decision`] written by [`put_decision`], validating the label
/// against `n_classes`.
pub(crate) fn get_decision(
    dec: &mut Decoder<'_>,
    n_classes: usize,
) -> Result<Decision, PersistError> {
    match dec.get_u8("decision tag")? {
        0 => Ok(Decision::Wait),
        1 => {
            let label = dec.get_usize("decision label")?;
            if label >= n_classes {
                return Err(PersistError::Corrupt(format!(
                    "decision label {label} for {n_classes} classes"
                )));
            }
            let confidence = dec.get_f64("decision confidence")?;
            Ok(Decision::Predict { label, confidence })
        }
        t => Err(PersistError::Corrupt(format!("decision tag {t}"))),
    }
}

/// Read a session-state schema tag and demand it matches `expected`.
pub(crate) fn expect_session_tag(dec: &mut Decoder<'_>, expected: u8) -> Result<(), PersistError> {
    let found = dec.get_u8("session state tag")?;
    if found != expected {
        return Err(PersistError::Corrupt(format!(
            "session state tag {found} does not match this algorithm/norm (expected {expected})"
        )));
    }
    Ok(())
}

/// Encode a [`SessionNorm`] (persist helper).
pub(crate) fn put_norm(enc: &mut Encoder, norm: SessionNorm) {
    enc.put_u8(match norm {
        SessionNorm::Raw => 0,
        SessionNorm::PerPrefix => 1,
    });
}

/// Decode a [`SessionNorm`] and demand it matches the norm the caller is
/// resuming under — accumulator layouts differ per norm.
pub(crate) fn expect_norm(
    dec: &mut Decoder<'_>,
    expected: SessionNorm,
) -> Result<(), PersistError> {
    let tag = dec.get_u8("session norm")?;
    let found = match tag {
        0 => SessionNorm::Raw,
        1 => SessionNorm::PerPrefix,
        t => return Err(PersistError::Corrupt(format!("session norm tag {t}"))),
    };
    if found != expected {
        return Err(PersistError::Corrupt(format!(
            "session was checkpointed under {found:?}, resumed under {expected:?}"
        )));
    }
    Ok(())
}

/// Serialize a session's resumable state into a self-describing,
/// checksummed envelope (kind [`SESSION_STATE_KIND`]).
///
/// The state is only meaningful to the fitted classifier (and
/// [`SessionNorm`]) that produced the session; resume it with
/// [`resume_session`] against the same model — or a [`Persist`]-restored
/// copy of it in a new process, which is behavior-identical. Built-in
/// sessions write a schema tag, so resuming against the wrong algorithm or
/// norm fails with [`PersistError::Corrupt`] rather than misdecoding.
///
/// [`Persist`]: etsc_persist::Persist
pub fn checkpoint_session(session: &dyn DecisionSession) -> Result<Vec<u8>, PersistError> {
    let mut enc = Encoder::new();
    session.save_state(&mut enc)?;
    Ok(etsc_persist::envelope(
        SESSION_STATE_KIND,
        &enc.into_bytes(),
    ))
}

/// Rehydrate a session from [`checkpoint_session`] bytes against `clf`
/// under `norm`. The restored session continues **bit-identically** to an
/// uninterrupted one for [`SessionNorm::Raw`] (and, for the built-in
/// algorithms, for [`SessionNorm::PerPrefix`] too — the z-norm running sums
/// round-trip as IEEE bits; the documented ~1e-9 tolerance applies only to
/// the comparison against batch renormalization, exactly as for
/// uninterrupted sessions).
pub fn resume_session<'a, C: EarlyClassifier + ?Sized>(
    clf: &'a C,
    norm: SessionNorm,
    bytes: &[u8],
) -> Result<Box<dyn DecisionSession + 'a>, PersistError> {
    let mut dec = etsc_persist::open_envelope(bytes, SESSION_STATE_KIND)?;
    let session = clf.resume_session(norm, &mut dec)?;
    dec.finish()?;
    Ok(session)
}

/// Minimum number of concurrent sessions before a one-sample fan-out
/// ([`MultiSession::push_all`]) is worth worker threads. The spawn round
/// paid on *every* push costs ~10µs per worker, while a typical incremental
/// push is single-digit microseconds (and O(1) bookkeeping once latched),
/// so the fleet must be in the hundreds before fan-out wins.
pub(crate) const PAR_MIN_SESSIONS: usize = 512;

/// The two largest values of a probability vector `(best, second)`, both
/// 0.0-floored — the margin primitive RelClass, ECDIRE, and the stopping
/// rule all gate on.
pub(crate) fn top_two(p: &[f64]) -> (f64, f64) {
    let mut best = 0.0;
    let mut second = 0.0;
    for &v in p {
        if v > best {
            second = best;
            best = v;
        } else if v > second {
            second = v;
        }
    }
    (best, second)
}

/// The outcome of showing a prefix to an early classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Not confident yet; wait for more data.
    Wait,
    /// Commit to a classification now.
    Predict {
        /// Predicted class.
        label: ClassLabel,
        /// Algorithm-specific confidence in `[0, 1]`.
        confidence: f64,
    },
}

impl Decision {
    /// The predicted label, if the decision is a prediction.
    pub fn label(&self) -> Option<ClassLabel> {
        match *self {
            Decision::Wait => None,
            Decision::Predict { label, .. } => Some(label),
        }
    }

    /// The confidence of the prediction, if the decision is a prediction.
    pub fn confidence(&self) -> Option<f64> {
        match *self {
            Decision::Wait => None,
            Decision::Predict { confidence, .. } => Some(confidence),
        }
    }

    /// Label and confidence together, if the decision is a prediction —
    /// the destructuring most call sites actually want.
    pub fn label_confidence(&self) -> Option<(ClassLabel, f64)> {
        match *self {
            Decision::Wait => None,
            Decision::Predict { label, confidence } => Some((label, confidence)),
        }
    }

    /// True if the classifier committed.
    pub fn is_predict(&self) -> bool {
        matches!(self, Decision::Predict { .. })
    }

    /// Total order on decisiveness: `Wait` sorts below every `Predict`, and
    /// predictions order by confidence under [`f64::total_cmp`] (so NaN
    /// confidences are ordered deterministically instead of poisoning
    /// comparisons). Labels do not participate in the order.
    ///
    /// This is deliberately a named method rather than a `PartialOrd` impl:
    /// "more decisive" is one specific order among several reasonable ones,
    /// and call sites should say which they mean.
    pub fn decisiveness_cmp(&self, other: &Decision) -> std::cmp::Ordering {
        match (self, other) {
            (Decision::Wait, Decision::Wait) => std::cmp::Ordering::Equal,
            (Decision::Wait, Decision::Predict { .. }) => std::cmp::Ordering::Less,
            (Decision::Predict { .. }, Decision::Wait) => std::cmp::Ordering::Greater,
            (Decision::Predict { confidence: a, .. }, Decision::Predict { confidence: b, .. }) => {
                a.total_cmp(b)
            }
        }
    }

    /// The more decisive of two decisions (see
    /// [`decisiveness_cmp`](Self::decisiveness_cmp)); `self` wins exact
    /// ties, so folding a sequence keeps the earliest maximum.
    pub fn prefer(self, other: Decision) -> Decision {
        if self.decisiveness_cmp(&other) == std::cmp::Ordering::Less {
            other
        } else {
            self
        }
    }
}

/// Normalization a [`DecisionSession`] applies to its incoming raw samples.
///
/// There is deliberately no "oracle" variant: a session sees samples in
/// arrival order and cannot standardize them with statistics of data that
/// has not arrived (Section 4 of the paper). Oracle-style evaluation is an
/// offline construct — hand [`EarlyClassifier::decide`] prefixes sliced
/// from pre-normalized exemplars instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionNorm {
    /// Classify the pushed samples as-is.
    Raw,
    /// Honest per-prefix z-normalization: each decision is made on the
    /// z-normalized version of the data it consumes, computed from running
    /// (past-only) statistics. Algorithms that already normalize internally
    /// (e.g. TEASER with honest prefixes, template matching — both are
    /// invariant to affine transforms of the input) treat this identically
    /// to `Raw`.
    ///
    /// # Incremental evaluation: the running-sums algebra
    ///
    /// Per-prefix normalization looks inherently non-incremental — every
    /// arriving sample changes the prefix mean `μ_p` and deviation `σ_p`,
    /// retroactively rescaling **every** past coordinate. The sessions
    /// nevertheless run at amortized O(1)-per-push (in the prefix length)
    /// because the rescaling is *affine and global*: writing the normalized
    /// sample as `ẑᵢ = u·xᵢ − v` with `u = 1/σ_p`, `v = μ_p/σ_p`, any
    /// statistic that is quadratic in `ẑ` is a fixed quadratic polynomial
    /// in `(u, v)` whose coefficients are running sums of the *raw* data —
    /// matrix-profile-style algebra (Mueen's MASS, *Matrix Profile II*),
    /// already used by `etsc_core::nn::BatchProfile`. Concretely:
    ///
    /// * **1NN distances** (ECTS): `‖ẑ − y‖²` unfolds into prefix sums
    ///   `Σx, Σx²` plus one running dot `Σx·y` per exemplar.
    /// * **Gaussian log-likelihoods** (RelClass, ProbThreshold over a
    ///   Gaussian): the per-class Mahalanobis sum unfolds into six running
    ///   sums (`Σx²/σ²ᵢ, Σx/σ²ᵢ, Σx·mᵢ/σ²ᵢ, Σ1/σ²ᵢ, Σmᵢ/σ²ᵢ, Σmᵢ²/σ²ᵢ`)
    ///   evaluated in closed form at the current `(u, v)` — see
    ///   `etsc_classifiers::gaussian::GaussianZnormSession`. With a full
    ///   covariance the same shape survives *whitening*: six running dot
    ///   products over `L⁻¹x`, `L⁻¹𝟙`, `L⁻¹μ`.
    /// * **Centroid distances** (ProbThreshold): the same dot identity per
    ///   class — `etsc_classifiers::centroid::CentroidZnormScoreSession`.
    /// * **Shapelet window scans** (EDSC): every window's distance is a
    ///   closed form over its cached `Σx, Σx², Σx·q`; a per-feature drift
    ///   bound on `(u, v)` movement skips even the closed-form sweep on
    ///   most pushes.
    ///
    /// The closed forms regroup the batch arithmetic, so per-prefix
    /// sessions track `decide(&znormalize(prefix))` to documented
    /// floating-point tolerance (each session type states its bound) rather
    /// than bit-exactly; the normalization constants themselves are
    /// accumulated in `mean_std`'s order and match the batch path exactly.
    PerPrefix,
}

/// A stateful, incremental early-classification session over one stream.
///
/// Obtained from [`EarlyClassifier::session`]. Feed samples in arrival
/// order with [`push`](Self::push); each call returns the decision for the
/// prefix consumed so far. Under [`SessionNorm::Raw`], pushing `x1..xt`
/// yields exactly `decide(&[x1..xt])` — the session is the incremental
/// evaluation of the same function (the equivalence every algorithm's
/// property tests assert).
///
/// **Latching:** once a session commits, it stays committed — every later
/// `push` returns the same `Predict` without recomputation. The first
/// commit is *the* early classification; callers wanting a fresh judgment
/// open a new session (or [`reset`](Self::reset) this one).
///
/// `Send` is a supertrait so boxed sessions can be serviced by worker
/// threads ([`MultiSession::push_all`] and the stream monitor fan one
/// sample out to many sessions in parallel; see `etsc_core::parallel`).
/// Sessions hold owned running state plus a shared reference to their
/// `Sync` model, so every implementor satisfies it automatically.
pub trait DecisionSession: Send {
    /// Consume one sample; returns the decision for the prefix so far.
    fn push(&mut self, x: f64) -> Decision;

    /// The decision as of the last push (`Wait` before any push).
    fn decision(&self) -> Decision;

    /// Number of samples consumed.
    fn len(&self) -> usize;

    /// True before the first sample.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forget all samples and any commitment, keeping allocations — the
    /// cheap way to reuse one session across many anchors/streams.
    fn reset(&mut self);

    /// Append this session's resumable state to `enc` (codec:
    /// `etsc-persist`). Rehydrated into the same fitted model via
    /// [`EarlyClassifier::resume_session`], the session continues
    /// **bit-identically** to an uninterrupted one: every accumulator
    /// travels as its IEEE bits, so the next push performs exactly the
    /// arithmetic it would have performed without the interruption.
    ///
    /// The default refuses with [`PersistError::Unsupported`]; every
    /// built-in algorithm's sessions override it. Use
    /// [`checkpoint_session`] for the envelope-wrapped form.
    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        let _ = enc;
        Err(PersistError::Unsupported(
            "this DecisionSession type (no save_state override)",
        ))
    }
}

/// A fitted early classifier.
///
/// Implementations are fitted on full-length training exemplars and then
/// consume growing prefixes, either statelessly via [`decide`](Self::decide)
/// or incrementally via [`session`](Self::session).
///
/// `decide` must be monotone-safe: callers may query any prefix length in
/// any order, and the *first* `Predict` along the growing prefix is the
/// algorithm's early classification.
///
/// Implementors must provide at least one of `decide` / `session`: each has
/// a default written in terms of the other (`decide` drives a fresh raw
/// session; `session` replays `decide` on a buffered prefix). Providing
/// neither recurses; providing both — a stateless definition plus an
/// incremental one — is the fast path every algorithm in this crate takes.
///
/// `Sync` is a supertrait so one fitted model can serve many sessions from
/// many worker threads concurrently (the parallel monitor and batch-eval
/// paths). Fitted models are plain data, so every implementor satisfies it
/// automatically.
pub trait EarlyClassifier: Sync {
    /// Number of classes fitted.
    fn n_classes(&self) -> usize;

    /// Full series length the model was trained for.
    fn series_len(&self) -> usize;

    /// Smallest prefix length the model will consider (default 1).
    fn min_prefix(&self) -> usize {
        1
    }

    /// Inspect a prefix and either commit or wait.
    ///
    /// The default drives a fresh [`SessionNorm::Raw`] session over
    /// `prefix`, so session-only implementors get offline evaluation for
    /// free.
    fn decide(&self, prefix: &[f64]) -> Decision {
        let mut session = self.session(SessionNorm::Raw);
        let mut decision = Decision::Wait;
        for &x in prefix {
            decision = session.push(x);
        }
        decision
    }

    /// Open an incremental session (see [`DecisionSession`]).
    ///
    /// The default buffers samples and replays [`decide`](Self::decide) on
    /// every push — O(prefix) per sample, correct for any implementor.
    /// Algorithms override this with running-state sessions whose per-sample
    /// cost is amortized O(1) in the prefix length.
    fn session(&self, norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
        Box::new(ReplaySession::new(self, norm))
    }

    /// Unconditional prediction from the full series — the fallback when
    /// `decide` never commits (the ETSC literature always reports *some*
    /// label at full length).
    fn predict_full(&self, series: &[f64]) -> ClassLabel;

    /// Open a session under `norm` and rehydrate it from state written by
    /// [`DecisionSession::save_state`] against this same fitted model (or a
    /// snapshot-restored copy). Implementations validate that the state's
    /// schema and shape match before trusting a single byte of it.
    ///
    /// The default refuses with [`PersistError::Unsupported`]; every
    /// built-in algorithm overrides it. Use the free function
    /// [`resume_session`] for the envelope-wrapped form.
    fn resume_session(
        &self,
        norm: SessionNorm,
        dec: &mut Decoder<'_>,
    ) -> Result<Box<dyn DecisionSession + '_>, PersistError> {
        let _ = (norm, dec);
        Err(PersistError::Unsupported(
            "this EarlyClassifier type (no resume_session override)",
        ))
    }
}

/// The universal fallback session: buffers the pushed samples and replays
/// [`EarlyClassifier::decide`] on the whole buffer at every push.
///
/// Correct for any classifier (it *is* the definition of session/decide
/// equivalence) but O(prefix) per sample. Every built-in algorithm now
/// ships an incremental session for **both** [`SessionNorm`] variants, so
/// this type serves as the trait default for external implementors and as
/// the reference baseline the `bench_sessions` binary measures speedups
/// against. Under [`SessionNorm::PerPrefix`] the buffered prefix is
/// z-normalized into a scratch buffer before deciding.
pub struct ReplaySession<'a, C: EarlyClassifier + ?Sized> {
    clf: &'a C,
    norm: SessionNorm,
    buf: Vec<f64>,
    scratch: Vec<f64>,
    len: usize,
    decision: Decision,
}

impl<'a, C: EarlyClassifier + ?Sized> ReplaySession<'a, C> {
    /// Wrap a classifier reference.
    pub fn new(clf: &'a C, norm: SessionNorm) -> Self {
        Self {
            clf,
            norm,
            buf: Vec::new(),
            scratch: Vec::new(),
            len: 0,
            decision: Decision::Wait,
        }
    }
}

impl<C: EarlyClassifier + ?Sized> DecisionSession for ReplaySession<'_, C> {
    fn push(&mut self, x: f64) -> Decision {
        self.len += 1;
        if self.decision.is_predict() {
            // Latched: count the sample but do no work (and in particular
            // stop growing the buffer — a latched session may be driven for
            // the rest of an unbounded stream).
            return self.decision;
        }
        self.buf.push(x);
        if self.buf.len() < self.clf.min_prefix() {
            // Below the classifier's declared minimum no decision is asked
            // for — mirroring offline evaluation, which never queries
            // prefixes shorter than `min_prefix`.
            return Decision::Wait;
        }
        self.decision = match self.norm {
            SessionNorm::Raw => self.clf.decide(&self.buf),
            SessionNorm::PerPrefix => {
                self.scratch.clear();
                self.scratch.extend_from_slice(&self.buf);
                znormalize_in_place(&mut self.scratch);
                self.clf.decide(&self.scratch)
            }
        };
        self.decision
    }

    fn decision(&self) -> Decision {
        self.decision
    }

    fn len(&self) -> usize {
        self.len
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.scratch.clear();
        self.len = 0;
        self.decision = Decision::Wait;
    }
}

/// A batch driver servicing many concurrent [`DecisionSession`]s — the
/// anchors of one stream monitor, or many independent streams — over one
/// fitted classifier, with session reuse so steady-state operation does not
/// allocate.
///
/// Streams are identified by caller-chosen `u64` keys (an anchor offset, a
/// tenant id, …). [`open`](Self::open) starts a stream,
/// [`push`](Self::push) feeds one sample to one stream,
/// [`push_all`](Self::push_all) feeds the same sample to every stream (the
/// monitor's fan-out), and [`close`](Self::close) retires a stream,
/// recycling its session into an internal pool.
pub struct MultiSession<'a> {
    clf: &'a dyn EarlyClassifier,
    norm: SessionNorm,
    /// Open streams, kept in `open` order — [`push_all`](Self::push_all)
    /// visits them oldest-first, which is what priority-by-age consumers
    /// want.
    slots: Vec<(u64, Box<dyn DecisionSession + 'a>)>,
    /// Retired sessions awaiting reuse.
    pool: Vec<Box<dyn DecisionSession + 'a>>,
}

impl<'a> MultiSession<'a> {
    /// A driver over `clf` whose sessions apply `norm`.
    pub fn new(clf: &'a dyn EarlyClassifier, norm: SessionNorm) -> Self {
        Self {
            clf,
            norm,
            slots: Vec::new(),
            pool: Vec::new(),
        }
    }

    /// Open a stream under `key`. Returns `false` (and does nothing) if the
    /// key is already open.
    pub fn open(&mut self, key: u64) -> bool {
        if self.slots.iter().any(|(k, _)| *k == key) {
            return false;
        }
        let session = match self.pool.pop() {
            Some(mut s) => {
                s.reset();
                s
            }
            None => self.clf.session(self.norm),
        };
        self.slots.push((key, session));
        true
    }

    /// Close the stream under `key`, recycling its session. Returns `false`
    /// if no such stream is open.
    pub fn close(&mut self, key: u64) -> bool {
        match self.slots.iter().position(|(k, _)| *k == key) {
            Some(i) => {
                let (_, session) = self.slots.remove(i);
                self.pool.push(session);
                true
            }
            None => false,
        }
    }

    /// Feed one sample to the stream under `key`; `None` if it is not open.
    pub fn push(&mut self, key: u64, x: f64) -> Option<Decision> {
        self.slots
            .iter_mut()
            .find(|(k, _)| *k == key)
            .map(|(_, s)| s.push(x))
    }

    /// Feed the same sample to every open stream, in `open` order. For each
    /// stream the sink receives `(key, decision, committed_now)`, where
    /// `committed_now` is true exactly on the push that turned the stream's
    /// decision into a `Predict` (sessions latch afterwards).
    ///
    /// With enough open streams the pushes fan out across worker threads
    /// (`etsc_core::parallel`, gated so small fleets stay on the cheap
    /// serial path); the sink still runs on the calling thread in `open`
    /// order, so observable behavior is identical.
    pub fn push_all(&mut self, x: f64, mut sink: impl FnMut(u64, Decision, bool)) {
        let threads = parallel::gate(self.slots.len(), PAR_MIN_SESSIONS);
        if threads <= 1 {
            for (key, session) in self.slots.iter_mut() {
                let was_committed = session.decision().is_predict();
                let decision = session.push(x);
                sink(*key, decision, decision.is_predict() && !was_committed);
            }
            return;
        }
        let outcomes = parallel::map_mut_with(threads, &mut self.slots, |(key, session)| {
            let was_committed = session.decision().is_predict();
            let decision = session.push(x);
            (*key, decision, decision.is_predict() && !was_committed)
        });
        for (key, decision, committed_now) in outcomes {
            sink(key, decision, committed_now);
        }
    }

    /// Current decision and consumed length of the stream under `key`.
    pub fn status(&self, key: u64) -> Option<(Decision, usize)> {
        self.slots
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, s)| (s.decision(), s.len()))
    }

    /// Number of open streams.
    pub fn active(&self) -> usize {
        self.slots.len()
    }

    /// True when no stream is open.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Keys of open streams, in `open` order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.iter().map(|(k, _)| *k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_accessors() {
        assert_eq!(Decision::Wait.label(), None);
        assert_eq!(Decision::Wait.confidence(), None);
        assert_eq!(Decision::Wait.label_confidence(), None);
        assert!(!Decision::Wait.is_predict());
        let p = Decision::Predict {
            label: 3,
            confidence: 0.9,
        };
        assert_eq!(p.label(), Some(3));
        assert_eq!(p.confidence(), Some(0.9));
        assert_eq!(p.label_confidence(), Some((3, 0.9)));
        assert!(p.is_predict());
    }

    #[test]
    fn decisiveness_orders_wait_below_predict_and_by_confidence() {
        use std::cmp::Ordering;
        let lo = Decision::Predict {
            label: 0,
            confidence: 0.2,
        };
        let hi = Decision::Predict {
            label: 1,
            confidence: 0.8,
        };
        assert_eq!(
            Decision::Wait.decisiveness_cmp(&Decision::Wait),
            Ordering::Equal
        );
        assert_eq!(Decision::Wait.decisiveness_cmp(&lo), Ordering::Less);
        assert_eq!(hi.decisiveness_cmp(&Decision::Wait), Ordering::Greater);
        assert_eq!(lo.decisiveness_cmp(&hi), Ordering::Less);
        assert_eq!(hi.prefer(lo), hi);
        assert_eq!(lo.prefer(hi), hi);
        assert_eq!(Decision::Wait.prefer(lo), lo);
        // Label does not break ties; the receiver wins.
        let hi2 = Decision::Predict {
            label: 0,
            confidence: 0.8,
        };
        assert_eq!(hi.prefer(hi2), hi);
    }

    #[test]
    fn decisiveness_is_nan_safe() {
        use std::cmp::Ordering;
        let nan = Decision::Predict {
            label: 0,
            confidence: f64::NAN,
        };
        let ok = Decision::Predict {
            label: 1,
            confidence: 0.5,
        };
        // total_cmp puts NaN above every finite value — deterministic, never
        // a poisoned comparison.
        assert_eq!(nan.decisiveness_cmp(&ok), Ordering::Greater);
        assert_eq!(nan.decisiveness_cmp(&nan), Ordering::Equal);
        assert!(nan.decisiveness_cmp(&Decision::Wait) == Ordering::Greater);
    }

    /// Commits to class 0 with confidence 1 once `commit_at` samples arrive.
    struct FixedCommit {
        commit_at: usize,
    }

    impl EarlyClassifier for FixedCommit {
        fn n_classes(&self) -> usize {
            1
        }
        fn series_len(&self) -> usize {
            16
        }
        fn decide(&self, prefix: &[f64]) -> Decision {
            if prefix.len() >= self.commit_at {
                Decision::Predict {
                    label: 0,
                    confidence: 1.0,
                }
            } else {
                Decision::Wait
            }
        }
        fn predict_full(&self, _series: &[f64]) -> ClassLabel {
            0
        }
    }

    #[test]
    fn default_session_replays_decide_and_latches() {
        let clf = FixedCommit { commit_at: 3 };
        let mut s = clf.session(SessionNorm::Raw);
        assert!(s.is_empty());
        assert_eq!(s.decision(), Decision::Wait);
        assert_eq!(s.push(1.0), Decision::Wait);
        assert_eq!(s.push(1.0), Decision::Wait);
        let committed = s.push(1.0);
        assert!(committed.is_predict());
        assert_eq!(s.push(1.0), committed, "latched after commit");
        assert_eq!(s.len(), 4);
        s.reset();
        assert!(s.is_empty());
        assert_eq!(s.decision(), Decision::Wait);
    }

    /// Session-only implementor: `decide` comes from the trait default.
    struct SessionOnly;

    struct CountSession {
        len: usize,
        decision: Decision,
    }

    impl DecisionSession for CountSession {
        fn push(&mut self, _x: f64) -> Decision {
            self.len += 1;
            if self.len >= 2 {
                self.decision = Decision::Predict {
                    label: 0,
                    confidence: 0.7,
                };
            }
            self.decision
        }
        fn decision(&self) -> Decision {
            self.decision
        }
        fn len(&self) -> usize {
            self.len
        }
        fn reset(&mut self) {
            self.len = 0;
            self.decision = Decision::Wait;
        }
    }

    impl EarlyClassifier for SessionOnly {
        fn n_classes(&self) -> usize {
            1
        }
        fn series_len(&self) -> usize {
            8
        }
        fn session(&self, _norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
            Box::new(CountSession {
                len: 0,
                decision: Decision::Wait,
            })
        }
        fn predict_full(&self, _series: &[f64]) -> ClassLabel {
            0
        }
    }

    #[test]
    fn default_decide_drives_a_session() {
        let clf = SessionOnly;
        assert_eq!(clf.decide(&[0.0]), Decision::Wait);
        assert!(clf.decide(&[0.0, 0.0]).is_predict());
    }

    #[test]
    fn multi_session_opens_pushes_and_recycles() {
        let clf = FixedCommit { commit_at: 2 };
        let mut multi = MultiSession::new(&clf, SessionNorm::Raw);
        assert!(multi.is_empty());
        assert!(multi.open(10));
        assert!(!multi.open(10), "duplicate keys are rejected");
        assert!(multi.open(20));
        assert_eq!(multi.active(), 2);
        assert_eq!(multi.keys().collect::<Vec<_>>(), vec![10, 20]);

        // Stagger the streams: key 10 gets a head start.
        assert_eq!(multi.push(10, 0.5), Some(Decision::Wait));
        let mut events = Vec::new();
        multi.push_all(0.5, |k, d, now| events.push((k, d.is_predict(), now)));
        // Key 10 commits now (2 samples); key 20 has only 1.
        assert_eq!(events, vec![(10, true, true), (20, false, false)]);

        events.clear();
        multi.push_all(0.5, |k, d, now| events.push((k, d.is_predict(), now)));
        // Key 10 is latched (not newly committed); key 20 commits now.
        assert_eq!(events, vec![(10, true, false), (20, true, true)]);

        assert_eq!(
            multi.status(10).map(|(d, l)| (d.is_predict(), l)),
            Some((true, 3))
        );
        assert!(multi.close(10));
        assert!(!multi.close(10));
        // The recycled session starts fresh for a new key.
        assert!(multi.open(30));
        assert_eq!(multi.status(30), Some((Decision::Wait, 0)));
        assert_eq!(multi.push(99, 0.0), None, "unknown key");
    }
}
