#![warn(missing_docs)]
// Numeric kernels below index several parallel arrays per iteration; explicit
// index loops are the clearer idiom there.
#![allow(clippy::needless_range_loop)]

//! # etsc-early
//!
//! Early time series classification (ETSC) algorithms — the systems the
//! paper benchmarks in Table 1 plus TEASER (Fig 3, Appendix B), implemented
//! from scratch:
//!
//! * [`ects`] — ECTS and RelaxedECTS (Xing et al., KAIS 2012): 1NN with
//!   Minimum Prediction Lengths derived from reverse-nearest-neighbor
//!   stability.
//! * [`edsc`] — EDSC (Xing et al., SDM 2011): early distinctive shapelet
//!   features with CHE (Chebyshev) or KDE threshold learning.
//! * [`relclass`] — RelClass and its LDG variant (after Parrish et al., JMLR
//!   2013): Gaussian class models scored on prefix marginals with a
//!   reliability threshold τ.
//! * [`teaser`] — TEASER (Schäfer & Leser, DMKD 2020): per-snapshot slave
//!   classifiers, one-class master filters, and a consistency counter.
//! * [`template`] — open-world template matching with an absolute distance
//!   threshold (the Section 5 dustbathing instrument).
//! * [`threshold`] — the fixed probability-threshold framing of Fig 3
//!   (right), wrapping any probabilistic classifier.
//! * [`metrics`] — earliness/accuracy evaluation with an explicit
//!   **prefix-normalization policy**, because whether prefixes are
//!   normalized with future statistics (the UCR convention) or honestly is
//!   exactly the issue Section 4 of the paper raises.
//!
//! All algorithms implement [`EarlyClassifier`]: fit on a
//! [`UcrDataset`](etsc_core::UcrDataset),
//! then [`EarlyClassifier::decide`] on each growing prefix.

pub mod checkpoints;
pub mod costaware;
pub mod ecdire;
pub mod ects;
pub mod edsc;
pub mod metrics;
pub mod relclass;
pub mod stopping_rule;
pub mod teaser;
pub mod template;
pub mod threshold;

use etsc_core::ClassLabel;

/// The outcome of showing a prefix to an early classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Not confident yet; wait for more data.
    Wait,
    /// Commit to a classification now.
    Predict {
        /// Predicted class.
        label: ClassLabel,
        /// Algorithm-specific confidence in `[0, 1]`.
        confidence: f64,
    },
}

impl Decision {
    /// The predicted label, if the decision is a prediction.
    pub fn label(&self) -> Option<ClassLabel> {
        match *self {
            Decision::Wait => None,
            Decision::Predict { label, .. } => Some(label),
        }
    }

    /// True if the classifier committed.
    pub fn is_predict(&self) -> bool {
        matches!(self, Decision::Predict { .. })
    }
}

/// A fitted early classifier.
///
/// Implementations are fitted on full-length training exemplars and then
/// queried with growing prefixes. `decide` must be monotone-safe: callers
/// may query any prefix length in any order (the trait is stateless), and
/// the *first* `Predict` along the growing prefix is the algorithm's early
/// classification.
pub trait EarlyClassifier {
    /// Number of classes fitted.
    fn n_classes(&self) -> usize;

    /// Full series length the model was trained for.
    fn series_len(&self) -> usize;

    /// Smallest prefix length the model will consider (default 1).
    fn min_prefix(&self) -> usize {
        1
    }

    /// Inspect a prefix and either commit or wait.
    fn decide(&self, prefix: &[f64]) -> Decision;

    /// Unconditional prediction from the full series — the fallback when
    /// `decide` never commits (the ETSC literature always reports *some*
    /// label at full length).
    fn predict_full(&self, series: &[f64]) -> ClassLabel;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_accessors() {
        assert_eq!(Decision::Wait.label(), None);
        assert!(!Decision::Wait.is_predict());
        let p = Decision::Predict {
            label: 3,
            confidence: 0.9,
        };
        assert_eq!(p.label(), Some(3));
        assert!(p.is_predict());
    }
}
