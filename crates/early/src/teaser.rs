//! TEASER — Two-tier Early and Accurate Series classifiER (Schäfer & Leser,
//! DMKD 2020).
//!
//! TEASER evaluates the incoming series at `S` snapshot lengths. Each
//! snapshot has:
//!
//! 1. a probabilistic **slave** classifier trained on training prefixes of
//!    that length (the paper uses WEASEL; we use our from-scratch
//!    [`Weasel`]-lite, or a nearest-centroid slave for cheap configurations);
//! 2. a one-class **master** classifier over the slave's output
//!    `[class probabilities…, margin]` that learns what *trustworthy*
//!    slave outputs look like (fitted on the correctly-classified training
//!    prefixes; the paper uses a one-class SVM, we use a Gaussian envelope —
//!    substitution documented in DESIGN.md);
//! 3. a consistency rule: commit only after `v` consecutive snapshots
//!    produce the same master-accepted prediction, with `v` grid-searched on
//!    the training set.
//!
//! Footnote 2 of the critique paper notes TEASER z-normalizes each prefix
//! honestly (no peeking); `TeaserConfig::znorm_prefixes` reproduces that and
//! is on by default.

use etsc_classifiers::centroid::NearestCentroid;
use etsc_classifiers::weasel::{Weasel, WeaselConfig};
use etsc_classifiers::{argmax, Classifier};
use etsc_core::parallel;
use etsc_core::znorm::{znormalize, znormalize_in_place};
use etsc_core::{ClassLabel, UcrDataset};
use etsc_persist::{Decoder, Encoder, Persist, PersistError};

use crate::{
    expect_norm, expect_session_tag, get_decision, put_decision, put_norm, session_tags, Decision,
    DecisionSession, EarlyClassifier, SessionNorm,
};

/// Which slave classifier each snapshot trains.
#[derive(Debug, Clone)]
pub enum SlaveKind {
    /// WEASEL-lite bag-of-SFA-words + logistic regression (the paper's
    /// architecture).
    Weasel(WeaselConfig),
    /// Nearest-centroid with softmax probabilities — much cheaper; useful
    /// for large sweeps and ablations.
    Centroid,
}

/// TEASER hyper-parameters.
#[derive(Debug, Clone)]
pub struct TeaserConfig {
    /// Number of snapshots `S` (the paper uses 20).
    pub n_snapshots: usize,
    /// Slave classifier family.
    pub slave: SlaveKind,
    /// Master acceptance quantile: a slave output is accepted if its
    /// envelope score is at least the `q`-quantile of correctly-classified
    /// training scores. 0.0 accepts anything as typical as the worst
    /// training example.
    pub master_quantile: f64,
    /// Largest consistency requirement tried during the grid search for `v`.
    pub max_consistency: usize,
    /// Z-normalize each prefix with its own statistics before classifying
    /// (the honest, non-peeking convention; footnote 2).
    pub znorm_prefixes: bool,
}

impl Default for TeaserConfig {
    fn default() -> Self {
        Self {
            n_snapshots: 20,
            slave: SlaveKind::Weasel(WeaselConfig {
                window_sizes: vec![8, 12, 16],
                word_len: 4,
                alphabet: 4,
                top_features: 128,
                stride: 1,
                ..WeaselConfig::default()
            }),
            master_quantile: 0.05,
            max_consistency: 5,
            znorm_prefixes: true,
        }
    }
}

impl TeaserConfig {
    /// A fast configuration with nearest-centroid slaves — used by sweeps
    /// and the streaming experiments where thousands of decisions are made.
    pub fn fast() -> Self {
        Self {
            slave: SlaveKind::Centroid,
            ..Self::default()
        }
    }
}

/// A fitted slave classifier.
#[derive(Debug, Clone)]
enum Slave {
    Weasel(Weasel),
    Centroid(NearestCentroid),
}

impl Slave {
    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        match self {
            Slave::Weasel(w) => w.predict_proba(x),
            Slave::Centroid(c) => c.predict_proba(x),
        }
    }
}

/// Diagonal-Gaussian one-class envelope over slave output vectors.
#[derive(Debug, Clone)]
struct OneClassEnvelope {
    mean: Vec<f64>,
    var: Vec<f64>,
    threshold: f64,
}

impl OneClassEnvelope {
    const VAR_FLOOR: f64 = 1e-4;

    fn fit(vectors: &[Vec<f64>], quantile: f64) -> Option<Self> {
        if vectors.is_empty() {
            return None;
        }
        let d = vectors[0].len();
        let n = vectors.len() as f64;
        let mut mean = vec![0.0; d];
        for v in vectors {
            for (m, &x) in mean.iter_mut().zip(v) {
                *m += x;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n);
        let mut var = vec![0.0; d];
        for v in vectors {
            for ((acc, &x), &m) in var.iter_mut().zip(v).zip(&mean) {
                let dx = x - m;
                *acc += dx * dx;
            }
        }
        var.iter_mut()
            .for_each(|v| *v = (*v / n).max(Self::VAR_FLOOR));
        let proto = Self {
            mean,
            var,
            threshold: f64::NEG_INFINITY,
        };
        let mut scores: Vec<f64> = vectors.iter().map(|v| proto.score(v)).collect();
        // total_cmp: degenerate slave outputs can score NaN; the threshold
        // quantile must not panic mid-fit on a poisoned compare.
        scores.sort_by(f64::total_cmp);
        let idx = ((quantile.clamp(0.0, 1.0)) * (scores.len() - 1) as f64).round() as usize;
        Some(Self {
            threshold: scores[idx],
            ..proto
        })
    }

    /// Unnormalized log-density (Mahalanobis score under the diagonal model).
    fn score(&self, v: &[f64]) -> f64 {
        -self
            .mean
            .iter()
            .zip(&self.var)
            .zip(v)
            .map(|((&m, &var), &x)| {
                let d = x - m;
                d * d / var
            })
            .sum::<f64>()
    }

    fn accepts(&self, v: &[f64]) -> bool {
        self.score(v) >= self.threshold
    }
}

/// One snapshot: a prefix length, its slave, and its master.
#[derive(Debug, Clone)]
struct Snapshot {
    len: usize,
    slave: Slave,
    /// `None` when no training prefix was classified correctly at this
    /// length — the snapshot then never accepts.
    master: Option<OneClassEnvelope>,
}

impl Snapshot {
    /// Master-filtered prediction on an (already normalized) prefix.
    fn accepted_prediction(&self, prefix: &[f64]) -> Option<(ClassLabel, f64)> {
        let p = self
            .slave
            .predict_proba(&prefix[..self.len.min(prefix.len())]);
        let label = argmax(&p);
        let best = p[label];
        let mut second = 0.0;
        for (c, &v) in p.iter().enumerate() {
            if c != label && v > second {
                second = v;
            }
        }
        let mut features = p.clone();
        features.push(best - second);
        match &self.master {
            Some(m) if m.accepts(&features) => Some((label, best)),
            _ => None,
        }
    }
}

/// A fitted TEASER model.
#[derive(Debug, Clone)]
pub struct Teaser {
    snapshots: Vec<Snapshot>,
    /// Consistency requirement chosen on the training set.
    v: usize,
    n_classes: usize,
    series_len: usize,
    znorm_prefixes: bool,
}

impl Teaser {
    /// Fit slaves, masters, and the consistency parameter `v` on `train`.
    pub fn fit(train: &UcrDataset, cfg: &TeaserConfig) -> Self {
        let len = train.series_len();
        let n_classes = train.n_classes();
        assert!(cfg.n_snapshots >= 1);

        // Snapshot lengths: evenly spaced, respecting the slave's minimum
        // usable length.
        let min_len = match &cfg.slave {
            SlaveKind::Weasel(w) => w.window_sizes.iter().copied().min().unwrap_or(8).max(4),
            SlaveKind::Centroid => 2,
        };
        let mut lengths: Vec<usize> = (1..=cfg.n_snapshots)
            .map(|s| (s * len).div_ceil(cfg.n_snapshots))
            .filter(|&l| l >= min_len)
            .collect();
        lengths.dedup();
        assert!(
            !lengths.is_empty(),
            "series of length {len} too short for the chosen slave"
        );

        let normalize = |s: &[f64]| -> Vec<f64> {
            if cfg.znorm_prefixes {
                znormalize(s)
            } else {
                s.to_vec()
            }
        };

        let fit_slave = |ds: &UcrDataset| -> Slave {
            match &cfg.slave {
                SlaveKind::Weasel(wc) => {
                    let mut wc = wc.clone();
                    wc.window_sizes.retain(|&w| w <= ds.series_len());
                    Slave::Weasel(Weasel::fit(ds, &wc))
                }
                SlaveKind::Centroid => Slave::Centroid(NearestCentroid::fit(ds)),
            }
        };

        // Each snapshot's slave + master fit depends only on (train, l), so
        // the fits — the dominant cost of TEASER training — run one per
        // worker thread (`etsc_core::parallel`; results are collected in
        // length order, identical to the serial loop).
        let snapshots = parallel::map(&lengths, |&l| {
            // Slave training set: honest prefixes of length l.
            let prefixes: Vec<Vec<f64>> = train.iter().map(|(s, _)| normalize(&s[..l])).collect();
            let prefix_ds = UcrDataset::new(prefixes.clone(), train.labels().to_vec())
                .expect("prefix dataset inherits validity");
            let slave = fit_slave(&prefix_ds);
            // Master: envelope over correctly classified slave outputs.
            let mut good_vectors = Vec::new();
            let mut correct = 0usize;
            for (p, (_, label)) in prefixes.iter().zip(train.iter()) {
                let proba = slave.predict_proba(p);
                let pred = argmax(&proba);
                if pred == label {
                    correct += 1;
                    let best = proba[pred];
                    let mut second = 0.0;
                    for (c, &v) in proba.iter().enumerate() {
                        if c != pred && v > second {
                            second = v;
                        }
                    }
                    let mut f = proba.clone();
                    f.push(best - second);
                    good_vectors.push(f);
                }
            }
            // A slave that cannot beat the majority-class prior at this
            // length has learned nothing (e.g. a flat lead-in region); its
            // snapshot must never gate an alarm. Resubstitution accuracy is
            // inflated by memorized noise, so the gate uses deterministic
            // 2-fold cross-validation instead.
            let _ = correct; // resubstitution count kept for debugging only
            let cv_acc = Self::cv_accuracy(&prefix_ds, &fit_slave);
            let majority_prior = train.class_priors().into_iter().fold(0.0f64, f64::max);
            let master = if cv_acc > majority_prior + 0.05 {
                OneClassEnvelope::fit(&good_vectors, cfg.master_quantile)
            } else {
                None
            };
            Snapshot {
                len: l,
                slave,
                master,
            }
        });

        let mut teaser = Self {
            snapshots,
            v: 1,
            n_classes,
            series_len: len,
            znorm_prefixes: cfg.znorm_prefixes,
        };
        teaser.v = teaser.select_v(train, cfg.max_consistency);
        teaser
    }

    /// Deterministic 2-fold (even/odd indices) cross-validated accuracy of
    /// the slave family on a prefix dataset. Falls back to 0.0 when a fold
    /// would be degenerate (a missing class), which keeps the gate closed.
    fn cv_accuracy(ds: &UcrDataset, fit_slave: &dyn Fn(&UcrDataset) -> Slave) -> f64 {
        let n = ds.len();
        let even: Vec<usize> = (0..n).step_by(2).collect();
        let odd: Vec<usize> = (1..n).step_by(2).collect();
        if even.is_empty() || odd.is_empty() {
            return 0.0;
        }
        let n_classes = ds.n_classes();
        let mut correct = 0usize;
        let mut total = 0usize;
        for (fit_idx, eval_idx) in [(&even, &odd), (&odd, &even)] {
            let fit_ds = match ds.subset(fit_idx) {
                Ok(d) if d.n_classes() == n_classes => d,
                _ => return 0.0,
            };
            let slave = fit_slave(&fit_ds);
            for &i in eval_idx.iter() {
                let p = slave.predict_proba(ds.series(i));
                if argmax(&p) == ds.label(i) {
                    correct += 1;
                }
                total += 1;
            }
        }
        correct as f64 / total.max(1) as f64
    }

    /// Grid-search the consistency requirement on the training set,
    /// maximizing the harmonic mean of accuracy and earliness.
    ///
    /// Each candidate `v` simulates every training exemplar independently;
    /// the simulations fan out across worker threads and the tallies fold
    /// serially in exemplar order, so the selection is thread-count
    /// invariant. Gated on the training size: one spawn round per `v` only
    /// pays off once there are dozens of simulations to amortize it over.
    fn select_v(&self, train: &UcrDataset, max_v: usize) -> usize {
        let threads = parallel::gate(train.len(), 32);
        let mut best = (1usize, f64::NEG_INFINITY);
        for v in 1..=max_v.max(1) {
            let outcomes: Vec<(bool, usize)> =
                parallel::map_range_with(threads, train.len(), |i| {
                    let (pred, used) = self.simulate(train.series(i), v);
                    (pred == train.label(i), used)
                });
            let mut correct = 0usize;
            let mut earliness_sum = 0.0;
            for (ok, used) in outcomes {
                if ok {
                    correct += 1;
                }
                earliness_sum += used as f64 / self.series_len as f64;
            }
            let acc = correct as f64 / train.len() as f64;
            let earl = 1.0 - earliness_sum / train.len() as f64;
            let hm = if acc + earl > 0.0 {
                2.0 * acc * earl / (acc + earl)
            } else {
                0.0
            };
            if hm > best.1 {
                best = (v, hm);
            }
        }
        best.0
    }

    /// Walk the snapshots of one full series with consistency `v`; returns
    /// (prediction, samples consumed).
    fn simulate(&self, series: &[f64], v: usize) -> (ClassLabel, usize) {
        let mut run: Option<(ClassLabel, usize)> = None;
        for snap in &self.snapshots {
            if snap.len > series.len() {
                break;
            }
            let prefix = self.normalized_prefix(series, snap.len);
            match snap.accepted_prediction(&prefix) {
                Some((label, _)) => {
                    run = match run {
                        Some((l, count)) if l == label => Some((l, count + 1)),
                        _ => Some((label, 1)),
                    };
                    if let Some((l, count)) = run {
                        if count >= v {
                            return (l, snap.len);
                        }
                    }
                }
                None => run = None,
            }
        }
        (self.predict_full(series), series.len())
    }

    fn normalized_prefix(&self, series: &[f64], len: usize) -> Vec<f64> {
        let l = len.min(series.len());
        if self.znorm_prefixes {
            znormalize(&series[..l])
        } else {
            series[..l].to_vec()
        }
    }

    /// Snapshot lengths in use.
    pub fn snapshot_lengths(&self) -> Vec<usize> {
        self.snapshots.iter().map(|s| s.len).collect()
    }

    /// The consistency requirement selected during fitting.
    pub fn consistency(&self) -> usize {
        self.v
    }
}

impl Persist for Teaser {
    const KIND: &'static str = "Teaser";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.put_usize(self.v);
        enc.put_usize(self.n_classes);
        enc.put_usize(self.series_len);
        enc.put_bool(self.znorm_prefixes);
        enc.put_usize(self.snapshots.len());
        for snap in &self.snapshots {
            enc.section(|e| {
                e.put_usize(snap.len);
                match &snap.slave {
                    Slave::Weasel(w) => {
                        e.put_u8(0);
                        e.section(|e2| w.encode_body(e2));
                    }
                    Slave::Centroid(c) => {
                        e.put_u8(1);
                        e.section(|e2| c.encode_body(e2));
                    }
                }
                match &snap.master {
                    Some(m) => {
                        e.put_bool(true);
                        e.put_f64_slice(&m.mean);
                        e.put_f64_slice(&m.var);
                        e.put_f64(m.threshold);
                    }
                    None => e.put_bool(false),
                }
            });
        }
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let v = dec.get_usize("teaser consistency")?.max(1);
        let n_classes = dec.get_usize("teaser class count")?;
        let series_len = dec.get_usize("teaser series_len")?;
        let znorm_prefixes = dec.get_bool("teaser znorm flag")?;
        let n = dec.get_usize("teaser snapshot count")?;
        if n == 0 {
            return Err(PersistError::Corrupt("teaser: zero snapshots".into()));
        }
        let mut snapshots = Vec::with_capacity(n);
        let mut prev_len = 0usize;
        for i in 0..n {
            let mut sub = dec.section("teaser snapshot")?;
            let len = sub.get_usize("teaser snapshot length")?;
            if len <= prev_len || len > series_len {
                return Err(PersistError::Corrupt(format!(
                    "teaser snapshot {i}: length {len} breaks the ascending ladder"
                )));
            }
            prev_len = len;
            let slave = match sub.get_u8("teaser slave tag")? {
                0 => {
                    let mut s = sub.section("teaser weasel slave")?;
                    let w = Weasel::decode_body(&mut s)?;
                    s.finish()?;
                    Slave::Weasel(w)
                }
                1 => {
                    let mut s = sub.section("teaser centroid slave")?;
                    let c = NearestCentroid::decode_body(&mut s)?;
                    s.finish()?;
                    Slave::Centroid(c)
                }
                t => return Err(PersistError::Corrupt(format!("teaser: slave tag {t}"))),
            };
            // Cross-validate the header's class count against the slave: a
            // mismatch would otherwise abort mid-stream in the probability
            // buffers instead of failing the decode.
            let slave_classes = match &slave {
                Slave::Weasel(w) => w.n_classes(),
                Slave::Centroid(c) => c.n_classes(),
            };
            if slave_classes != n_classes {
                return Err(PersistError::Corrupt(format!(
                    "teaser snapshot {i}: slave has {slave_classes} classes, header says {n_classes}"
                )));
            }
            let master = if sub.get_bool("teaser master present")? {
                let mean = sub.get_f64_vec("teaser master mean")?;
                let var = sub.get_f64_vec("teaser master var")?;
                if mean.len() != var.len() || mean.is_empty() {
                    return Err(PersistError::Corrupt(format!(
                        "teaser snapshot {i}: envelope mean/var lengths {}/{}",
                        mean.len(),
                        var.len()
                    )));
                }
                if var.iter().any(|&x| !(x.is_finite() && x > 0.0)) {
                    return Err(PersistError::Corrupt(format!(
                        "teaser snapshot {i}: non-positive envelope variance"
                    )));
                }
                let threshold = sub.get_f64("teaser master threshold")?;
                Some(OneClassEnvelope {
                    mean,
                    var,
                    threshold,
                })
            } else {
                None
            };
            sub.finish()?;
            snapshots.push(Snapshot { len, slave, master });
        }
        Ok(Self {
            snapshots,
            v,
            n_classes,
            series_len,
            znorm_prefixes,
        })
    }
}

impl EarlyClassifier for Teaser {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn series_len(&self) -> usize {
        self.series_len
    }

    fn min_prefix(&self) -> usize {
        self.snapshots.first().map_or(1, |s| s.len)
    }

    fn decide(&self, prefix: &[f64]) -> Decision {
        // Only snapshot boundaries can change the decision; check that the
        // trailing `v` complete snapshots agree and are accepted.
        let complete: Vec<&Snapshot> = self
            .snapshots
            .iter()
            .take_while(|s| s.len <= prefix.len())
            .collect();
        if complete.len() < self.v {
            return Decision::Wait;
        }
        // Recompute only the trailing v snapshots (consistency window).
        let tail = &complete[complete.len() - self.v..];
        consistency_agreement(tail.iter().map(|snap| {
            let p = self.normalized_prefix(prefix, snap.len);
            snap.accepted_prediction(&p)
        }))
    }

    fn session(&self, norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
        Box::new(TeaserSession {
            model: self,
            norm,
            buf: Vec::with_capacity(self.series_len),
            scratch: Vec::new(),
            results: Vec::with_capacity(self.snapshots.len()),
            len: 0,
            decision: Decision::Wait,
        })
    }

    fn predict_full(&self, series: &[f64]) -> ClassLabel {
        let snap = self
            .snapshots
            .iter()
            .rev()
            .find(|s| s.len <= series.len())
            .unwrap_or(&self.snapshots[0]);
        let p = self.normalized_prefix(series, snap.len);
        argmax(&snap.slave.predict_proba(&p[..snap.len.min(p.len())]))
    }

    fn resume_session(
        &self,
        norm: SessionNorm,
        dec: &mut Decoder<'_>,
    ) -> Result<Box<dyn DecisionSession + '_>, PersistError> {
        expect_session_tag(dec, session_tags::TEASER)?;
        expect_norm(dec, norm)?;
        let buf = dec.get_f64_vec("teaser buf")?;
        if buf.len() > self.series_len {
            return Err(PersistError::Corrupt(format!(
                "teaser session: buffer of {} for series_len {}",
                buf.len(),
                self.series_len
            )));
        }
        let n_results = dec.get_usize("teaser result count")?;
        if n_results > self.snapshots.len() {
            return Err(PersistError::Corrupt(format!(
                "teaser session: {n_results} snapshot results for {} snapshots",
                self.snapshots.len()
            )));
        }
        let mut results = Vec::with_capacity(n_results);
        for _ in 0..n_results {
            let r = if dec.get_bool("teaser result present")? {
                let label = dec.get_usize("teaser result label")?;
                if label >= self.n_classes {
                    return Err(PersistError::Corrupt(format!(
                        "teaser session: result label {label} for {} classes",
                        self.n_classes
                    )));
                }
                Some((label, dec.get_f64("teaser result confidence")?))
            } else {
                None
            };
            results.push(r);
        }
        let len = dec.get_usize("teaser len")?;
        let decision = get_decision(dec, self.n_classes)?;
        Ok(Box::new(TeaserSession {
            model: self,
            norm,
            buf,
            scratch: Vec::new(),
            results,
            len,
            decision,
        }))
    }
}

/// The consistency rule shared by [`Teaser::decide`] and the session: every
/// result in the trailing window must be a master-accepted prediction of
/// the same label (confidence = the window maximum); any rejection or
/// disagreement means wait. Lazy over the iterator, so `decide` stops
/// evaluating snapshots at the first rejection.
fn consistency_agreement(results: impl Iterator<Item = Option<(ClassLabel, f64)>>) -> Decision {
    let mut agreed: Option<(ClassLabel, f64)> = None;
    for r in results {
        match r {
            Some((label, conf)) => match agreed {
                None => agreed = Some((label, conf)),
                Some((l, _)) if l != label => return Decision::Wait,
                Some((l, c)) => agreed = Some((l, c.max(conf))),
            },
            None => return Decision::Wait,
        }
    }
    match agreed {
        Some((label, confidence)) => Decision::Predict { label, confidence },
        None => Decision::Wait,
    }
}

/// Incremental TEASER session.
///
/// The decision only changes at snapshot boundaries, so each snapshot's
/// slave + master are evaluated exactly once — when the prefix reaches that
/// snapshot's length — and the master-accepted predictions are cached.
/// Every non-boundary push is O(1); [`Teaser::decide`] instead re-evaluates
/// the whole trailing consistency window (normalization included) on every
/// prefix.
///
/// With `znorm_prefixes` fitted on (TEASER's honest convention, the
/// default) the snapshot windows are z-normalized internally, which also
/// makes the session invariant to affine input transforms — so
/// [`SessionNorm::PerPrefix`] and [`SessionNorm::Raw`] coincide. Without
/// it, `PerPrefix` z-normalizes each snapshot window by its own statistics.
struct TeaserSession<'a> {
    model: &'a Teaser,
    norm: SessionNorm,
    /// Raw samples, capped at the fitted series length.
    buf: Vec<f64>,
    /// Normalized snapshot window scratch.
    scratch: Vec<f64>,
    /// Master-filtered prediction of each completed snapshot.
    results: Vec<Option<(ClassLabel, f64)>>,
    len: usize,
    decision: Decision,
}

impl DecisionSession for TeaserSession<'_> {
    fn push(&mut self, x: f64) -> Decision {
        if self.decision.is_predict() {
            self.len += 1;
            return self.decision; // latched: count the sample, skip the work
        }
        let model = self.model;
        if self.buf.len() < model.series_len {
            self.buf.push(x);
        }
        self.len += 1;
        // Evaluate a snapshot exactly when the prefix reaches its length.
        let next = self.results.len();
        if next >= model.snapshots.len() || self.buf.len() < model.snapshots[next].len {
            return self.decision;
        }
        let snap = &model.snapshots[next];
        debug_assert_eq!(self.buf.len(), snap.len, "snapshot boundaries are exact");
        let normalize = model.znorm_prefixes || self.norm == SessionNorm::PerPrefix;
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.buf);
        if normalize {
            znormalize_in_place(&mut self.scratch);
        }
        self.results.push(snap.accepted_prediction(&self.scratch));

        // Consistency check over the trailing `v` snapshots — the same fold
        // as `Teaser::decide`, on the cached per-snapshot results.
        if self.results.len() < model.v {
            return self.decision;
        }
        let tail = &self.results[self.results.len() - model.v..];
        if let Decision::Predict { label, confidence } = consistency_agreement(tail.iter().copied())
        {
            self.decision = Decision::Predict { label, confidence };
        }
        self.decision
    }

    fn decision(&self) -> Decision {
        self.decision
    }

    fn len(&self) -> usize {
        self.len
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.scratch.clear();
        self.results.clear();
        self.len = 0;
        self.decision = Decision::Wait;
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u8(session_tags::TEASER);
        put_norm(enc, self.norm);
        enc.put_f64_slice(&self.buf);
        enc.put_usize(self.results.len());
        for r in &self.results {
            match r {
                Some((label, conf)) => {
                    enc.put_bool(true);
                    enc.put_usize(*label);
                    enc.put_f64(*conf);
                }
                None => enc.put_bool(false),
            }
        }
        enc.put_usize(self.len);
        put_decision(enc, self.decision);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate, PrefixPolicy};

    /// Shape-distinct classes that survive per-prefix z-normalization:
    /// rising vs falling ramps with small per-instance wiggle. (Phase-shifted
    /// sines would average to a meaningless centroid.)
    fn toy(n: usize, len: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            let slope = if c == 0 { 1.0 } else { -1.0 };
            for i in 0..n {
                data.push(
                    (0..len)
                        .map(|j| {
                            let t = j as f64 / len as f64;
                            slope * (t - 0.5)
                                + 0.05 * (std::f64::consts::TAU * 2.0 * t + i as f64).sin()
                        })
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    fn fast_cfg() -> TeaserConfig {
        TeaserConfig {
            n_snapshots: 8,
            ..TeaserConfig::fast()
        }
    }

    #[test]
    fn centroid_teaser_is_accurate_and_early() {
        let train = toy(8, 60);
        let test = toy(4, 60);
        let t = Teaser::fit(&train, &fast_cfg());
        let ev = evaluate(&t, &test, PrefixPolicy::Raw);
        assert!(ev.accuracy() >= 0.9, "accuracy {}", ev.accuracy());
        assert!(ev.earliness() < 1.0, "should commit before full length");
    }

    #[test]
    fn weasel_teaser_fits_and_classifies() {
        let train = toy(8, 64);
        let cfg = TeaserConfig {
            n_snapshots: 6,
            ..TeaserConfig::default()
        };
        let t = Teaser::fit(&train, &cfg);
        let test = toy(3, 64);
        let ev = evaluate(&t, &test, PrefixPolicy::Raw);
        assert!(ev.accuracy() >= 0.8, "accuracy {}", ev.accuracy());
    }

    #[test]
    fn snapshot_lengths_are_increasing_and_bounded() {
        let train = toy(6, 60);
        let t = Teaser::fit(&train, &fast_cfg());
        let lens = t.snapshot_lengths();
        assert!(!lens.is_empty());
        assert!(lens.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*lens.last().unwrap(), 60);
    }

    #[test]
    fn decide_waits_before_enough_snapshots() {
        let train = toy(6, 60);
        let t = Teaser::fit(&train, &fast_cfg());
        let probe = toy(1, 60);
        let first = t.min_prefix();
        if t.consistency() > 1 {
            assert_eq!(t.decide(&probe.series(0)[..first]), Decision::Wait);
        }
        // Shorter than any snapshot: always wait.
        assert_eq!(t.decide(&probe.series(0)[..1]), Decision::Wait);
    }

    #[test]
    fn consistency_parameter_is_in_grid() {
        let train = toy(6, 60);
        let cfg = fast_cfg();
        let t = Teaser::fit(&train, &cfg);
        assert!((1..=cfg.max_consistency).contains(&t.consistency()));
    }

    #[test]
    fn raw_session_reproduces_decide_exactly() {
        let train = toy(8, 60);
        let test = toy(3, 60);
        let t = Teaser::fit(&train, &fast_cfg());
        for (probe, _) in test.iter() {
            let mut s = t.session(crate::SessionNorm::Raw);
            for i in 0..probe.len() {
                let inc = s.push(probe[i]);
                let batch = t.decide(&probe[..i + 1]);
                assert_eq!(inc, batch, "prefix {}", i + 1);
                if inc.is_predict() {
                    break; // sessions latch at the first commit
                }
            }
        }
    }

    #[test]
    fn znorm_prefixes_makes_model_shift_invariant() {
        let train = toy(8, 60);
        let t = Teaser::fit(&train, &fast_cfg()); // znorm_prefixes = true
        let base = toy(1, 60);
        let shifted: Vec<f64> = base.series(0).iter().map(|&v| v + 50.0).collect();
        let (a, _, _) = crate::metrics::classify_stream(&t, base.series(0), PrefixPolicy::Raw);
        let (b, _, _) = crate::metrics::classify_stream(&t, &shifted, PrefixPolicy::Raw);
        assert_eq!(a, b, "honest per-prefix z-norm is shift invariant");
    }
}
