//! The fixed probability-threshold framing of early classification
//! (Fig 3, right): "the ETSC algorithm simply predicts the probability of
//! being in each class, and if that probability exceeds some user-specified
//! threshold", classification is made.
//!
//! This wraps any probabilistic whole-series classifier whose
//! `predict_proba` accepts prefixes (nearest-centroid, Gaussian models,
//! WEASEL-lite all do).

use etsc_classifiers::{argmax, Classifier, ScoreSession};
use etsc_core::ClassLabel;
use etsc_persist::{Decoder, Encoder, Persist, PersistError};

use crate::{
    expect_norm, expect_session_tag, get_decision, put_decision, put_norm, session_tags, Decision,
    DecisionSession, EarlyClassifier, SessionNorm,
};

/// State-schema tag for the buffering [`RescoreSession`] fallback.
const TAG_RESCORE: u8 = 24;

/// An early classifier that commits when the wrapped model's class
/// probability exceeds a user threshold.
#[derive(Debug, Clone)]
pub struct ProbThreshold<C> {
    inner: C,
    threshold: f64,
    series_len: usize,
    min_prefix: usize,
}

impl<C: Classifier> ProbThreshold<C> {
    /// Wrap a fitted classifier. `threshold` in `(0, 1]`; Fig 3 uses 0.8.
    pub fn new(inner: C, threshold: f64, series_len: usize, min_prefix: usize) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0, 1]"
        );
        Self {
            inner,
            threshold,
            series_len,
            min_prefix: min_prefix.max(1),
        }
    }

    /// Access the wrapped classifier.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The probability trace over all prefixes of `series`: the Fig 3 plot.
    /// Returns `(prefix_len, predicted_label, max_probability)` per step.
    pub fn probability_trace(&self, series: &[f64]) -> Vec<(usize, ClassLabel, f64)> {
        (self.min_prefix..=series.len())
            .map(|l| {
                let p = self.inner.predict_proba(&series[..l]);
                let label = argmax(&p);
                (l, label, p[label])
            })
            .collect()
    }
}

impl<C: Classifier> EarlyClassifier for ProbThreshold<C> {
    fn n_classes(&self) -> usize {
        self.inner.n_classes()
    }

    fn series_len(&self) -> usize {
        self.series_len
    }

    fn min_prefix(&self) -> usize {
        self.min_prefix
    }

    fn decide(&self, prefix: &[f64]) -> Decision {
        if prefix.len() < self.min_prefix {
            return Decision::Wait;
        }
        let p = self.inner.predict_proba(prefix);
        let label = argmax(&p);
        if p[label] >= self.threshold {
            Decision::Predict {
                label,
                confidence: p[label],
            }
        } else {
            Decision::Wait
        }
    }

    fn session(&self, norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
        // Prefer the wrapped classifier's incremental scorer for the
        // requested normalization: `score_session` reproduces the batch
        // probabilities exactly; `score_session_znorm` folds each
        // prefix-wide mean/std change into closed-form running-sum updates
        // (documented fp tolerance). Classifiers with no incremental form
        // for the requested norm (kNN, WEASEL) get the buffering
        // [`RescoreSession`], which rescores the (optionally renormalized)
        // prefix per push — O(prefix) scoring, but the threshold gate and
        // latching logic stay session-native.
        let scorer = match norm {
            SessionNorm::Raw => self.inner.score_session(),
            SessionNorm::PerPrefix => self.inner.score_session_znorm(),
        }
        .unwrap_or_else(|| {
            Box::new(RescoreSession {
                inner: &self.inner,
                norm,
                buf: Vec::new(),
            })
        });
        Box::new(ProbThresholdSession {
            model: self,
            norm,
            scorer,
            proba: vec![0.0; self.inner.n_classes()],
            len: 0,
            decision: Decision::Wait,
        })
    }

    fn predict_full(&self, series: &[f64]) -> ClassLabel {
        self.inner.predict(series)
    }

    fn resume_session(
        &self,
        norm: SessionNorm,
        dec: &mut Decoder<'_>,
    ) -> Result<Box<dyn DecisionSession + '_>, PersistError> {
        expect_session_tag(dec, session_tags::PROB_THRESHOLD)?;
        expect_norm(dec, norm)?;
        // Reopen the scorer exactly as `session` would (incremental when the
        // wrapped model offers one, the buffering fallback otherwise) and
        // rehydrate it through the `ScoreSession` state API — so even a
        // wrapped classifier with no incremental form checkpoints cleanly.
        let mut scorer = match norm {
            SessionNorm::Raw => self.inner.score_session(),
            SessionNorm::PerPrefix => self.inner.score_session_znorm(),
        }
        .unwrap_or_else(|| {
            Box::new(RescoreSession {
                inner: &self.inner,
                norm,
                buf: Vec::new(),
            })
        });
        {
            let mut sub = dec.section("prob-threshold scorer")?;
            scorer.load_state(&mut sub)?;
            sub.finish()?;
        }
        let len = dec.get_usize("prob-threshold len")?;
        let decision = get_decision(dec, self.inner.n_classes())?;
        Ok(Box::new(ProbThresholdSession {
            model: self,
            norm,
            scorer,
            proba: vec![0.0; self.inner.n_classes()],
            len,
            decision,
        }))
    }
}

impl<C: Classifier + Persist> Persist for ProbThreshold<C> {
    const KIND: &'static str = "ProbThreshold";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.put_f64(self.threshold);
        enc.put_usize(self.series_len);
        enc.put_usize(self.min_prefix);
        enc.section(|e| self.inner.encode_body(e));
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let threshold = dec.get_f64("prob-threshold threshold")?;
        if !(threshold > 0.0 && threshold <= 1.0) {
            return Err(PersistError::Corrupt(format!(
                "prob-threshold: threshold {threshold}"
            )));
        }
        let series_len = dec.get_usize("prob-threshold series_len")?;
        let min_prefix = dec.get_usize("prob-threshold min_prefix")?;
        let mut sub = dec.section("prob-threshold inner")?;
        let inner = C::decode_body(&mut sub)?;
        sub.finish()?;
        Ok(Self::new(inner, threshold, series_len, min_prefix))
    }
}

/// The universal scoring fallback: buffers the pushed samples and rescores
/// the whole (optionally per-prefix z-normalized) buffer through the
/// wrapped classifier's `predict_proba_into` on demand.
///
/// O(prefix) per probability query — this exists only for wrapped
/// classifiers with no incremental scorer for the requested normalization;
/// every built-in probabilistic substrate (nearest-centroid, Gaussian
/// models of every covariance kind) provides one for both norms and never
/// takes this path.
struct RescoreSession<'a, C> {
    inner: &'a C,
    norm: SessionNorm,
    buf: Vec<f64>,
}

impl<C: Classifier> ScoreSession for RescoreSession<'_, C> {
    fn push(&mut self, x: f64) {
        self.buf.push(x);
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn predict_proba_into(&self, out: &mut [f64]) {
        match self.norm {
            SessionNorm::Raw => self.inner.predict_proba_into(&self.buf, out),
            SessionNorm::PerPrefix => {
                let mut z = self.buf.clone();
                etsc_core::znorm::znormalize_in_place(&mut z);
                self.inner.predict_proba_into(&z, out);
            }
        }
    }

    fn reset(&mut self) {
        self.buf.clear();
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u8(TAG_RESCORE);
        enc.put_f64_slice(&self.buf);
        Ok(())
    }

    fn load_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), PersistError> {
        if dec.get_u8("rescore session tag")? != TAG_RESCORE {
            return Err(PersistError::Corrupt(
                "rescore session: wrong state tag".into(),
            ));
        }
        self.buf = dec.get_f64_vec("rescore buf")?;
        Ok(())
    }
}

/// Incremental probability-threshold session over the wrapped classifier's
/// [`ScoreSession`]; under [`SessionNorm::Raw`] it reproduces
/// [`ProbThreshold::decide`] exactly because the score session's
/// probabilities are defined to match the batch `predict_proba` on the same
/// prefix, and under [`SessionNorm::PerPrefix`] it tracks
/// `decide(&znormalize(prefix))` to the z-norm scorer's documented
/// tolerance.
struct ProbThresholdSession<'a, C> {
    model: &'a ProbThreshold<C>,
    /// Norm the scorer was opened under (part of the checkpoint schema).
    norm: SessionNorm,
    scorer: Box<dyn ScoreSession + 'a>,
    proba: Vec<f64>,
    /// Samples consumed, counted independently of the scorer so latched
    /// pushes stay O(1).
    len: usize,
    decision: Decision,
}

impl<C: Classifier> DecisionSession for ProbThresholdSession<'_, C> {
    fn push(&mut self, x: f64) -> Decision {
        self.len += 1;
        if self.decision.is_predict() {
            return self.decision; // latched: count the sample, skip the work
        }
        self.scorer.push(x);
        if self.scorer.len() < self.model.min_prefix {
            return Decision::Wait;
        }
        self.scorer.predict_proba_into(&mut self.proba);
        let label = argmax(&self.proba);
        if self.proba[label] >= self.model.threshold {
            self.decision = Decision::Predict {
                label,
                confidence: self.proba[label],
            };
        }
        self.decision
    }

    fn decision(&self) -> Decision {
        self.decision
    }

    fn len(&self) -> usize {
        self.len
    }

    fn reset(&mut self) {
        self.scorer.reset();
        self.len = 0;
        self.decision = Decision::Wait;
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u8(session_tags::PROB_THRESHOLD);
        // The scorer variant is keyed off the norm at open time, so the
        // norm is part of the schema.
        put_norm(enc, self.norm);
        enc.try_section(|e| self.scorer.save_state(e))?;
        enc.put_usize(self.len);
        put_decision(enc, self.decision);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate, PrefixPolicy};
    use etsc_classifiers::centroid::NearestCentroid;
    use etsc_core::UcrDataset;

    fn toy(n: usize, len: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n {
                data.push(
                    (0..len)
                        .map(|j| c as f64 * 2.0 + 0.1 * (((i + j) % 7) as f64 - 3.0))
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    #[test]
    fn commits_when_confident() {
        let train = toy(6, 30);
        let clf = ProbThreshold::new(NearestCentroid::fit(&train), 0.8, 30, 2);
        let test = toy(3, 30);
        let ev = evaluate(&clf, &test, PrefixPolicy::Raw);
        assert!(ev.accuracy() >= 0.9);
        assert!(ev.earliness() < 0.5, "separated classes commit early");
    }

    #[test]
    fn higher_threshold_is_never_earlier() {
        let train = toy(6, 30);
        let test = toy(3, 30);
        let lo = ProbThreshold::new(NearestCentroid::fit(&train), 0.6, 30, 2);
        let hi = ProbThreshold::new(NearestCentroid::fit(&train), 0.99, 30, 2);
        let e_lo = evaluate(&lo, &test, PrefixPolicy::Raw).earliness();
        let e_hi = evaluate(&hi, &test, PrefixPolicy::Raw).earliness();
        assert!(e_lo <= e_hi + 1e-12);
    }

    #[test]
    fn trace_has_one_entry_per_prefix() {
        let train = toy(4, 20);
        let clf = ProbThreshold::new(NearestCentroid::fit(&train), 0.8, 20, 3);
        let trace = clf.probability_trace(train.series(0));
        assert_eq!(trace.len(), 20 - 3 + 1);
        for &(l, label, p) in &trace {
            assert!((3..=20).contains(&l));
            assert!(label < 2);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn raw_session_reproduces_decide_exactly() {
        let train = toy(6, 30);
        let clf = ProbThreshold::new(NearestCentroid::fit(&train), 0.8, 30, 2);
        let test = toy(3, 30);
        for (probe, _) in test.iter() {
            let mut s = clf.session(crate::SessionNorm::Raw);
            for t in 0..probe.len() {
                let inc = s.push(probe[t]);
                let batch = clf.decide(&probe[..t + 1]);
                assert_eq!(inc, batch, "prefix {}", t + 1);
                if inc.is_predict() {
                    break; // sessions latch at the first commit
                }
            }
        }
    }

    #[test]
    fn per_prefix_session_tracks_znormalized_decide() {
        use etsc_core::znorm::znormalize;
        let train = toy(6, 30);
        let clf = ProbThreshold::new(NearestCentroid::fit(&train), 0.8, 30, 2);
        let test = toy(3, 30);
        for (probe, _) in test.iter() {
            let mut s = clf.session(crate::SessionNorm::PerPrefix);
            for t in 0..probe.len() {
                let inc = s.push(probe[t]);
                let batch = clf.decide(&znormalize(&probe[..t + 1]));
                // Closed-form running sums vs whole-prefix renormalization:
                // same arithmetic regrouped, so the gate can differ only
                // where a probability grazes the threshold within fp noise.
                assert_eq!(inc.is_predict(), batch.is_predict(), "prefix {}", t + 1);
                if let (Some((li, ci)), Some((lb, cb))) =
                    (inc.label_confidence(), batch.label_confidence())
                {
                    assert_eq!(li, lb);
                    assert!((ci - cb).abs() < 1e-9, "confidence {ci} vs {cb}");
                    break; // sessions latch at the first commit
                }
            }
        }
    }

    #[test]
    fn rescore_fallback_session_matches_decide_for_sessionless_inner() {
        use etsc_core::znorm::znormalize;
        /// A probabilistic classifier with no incremental scorer.
        #[derive(Debug)]
        struct Opaque;
        impl Classifier for Opaque {
            fn n_classes(&self) -> usize {
                2
            }
            fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
                // Confident in class 1 once the observed mean exceeds 0.5.
                let m = x.iter().sum::<f64>() / x.len().max(1) as f64;
                let p1 = 1.0 / (1.0 + (-4.0 * (m - 0.5)).exp());
                vec![1.0 - p1, p1]
            }
        }
        let clf = ProbThreshold::new(Opaque, 0.8, 16, 2);
        let probe: Vec<f64> = (0..16).map(|i| i as f64 * 0.2).collect();
        for norm in [crate::SessionNorm::Raw, crate::SessionNorm::PerPrefix] {
            let mut s = clf.session(norm);
            for t in 0..probe.len() {
                let inc = s.push(probe[t]);
                let batch = match norm {
                    crate::SessionNorm::Raw => clf.decide(&probe[..t + 1]),
                    crate::SessionNorm::PerPrefix => clf.decide(&znormalize(&probe[..t + 1])),
                };
                assert_eq!(inc, batch, "{norm:?} prefix {}", t + 1);
                if inc.is_predict() {
                    break;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn rejects_zero_threshold() {
        let train = toy(2, 10);
        let _ = ProbThreshold::new(NearestCentroid::fit(&train), 0.0, 10, 1);
    }
}
