//! EDSC — Early Distinctive Shapelet Classification (Xing et al., SDM 2011).
//!
//! EDSC mines **local shapelet features**: short subsequences of training
//! series that (a) match their own class tightly, (b) match other classes
//! rarely, and (c) tend to appear *early*. Each feature carries a distance
//! threshold δ learned in one of two ways:
//!
//! * **CHE** — the one-sided Chebyshev (Cantelli) bound: δ is set `k`
//!   standard deviations below the mean distance to non-target series, so
//!   the probability of a non-target match is provably ≤ 1/(1+k²).
//! * **KDE** — Gaussian kernel density estimates of the target and
//!   non-target distance distributions; δ is the largest value whose
//!   estimated precision still clears a user threshold.
//!
//! Features are ranked by an earliness-weighted utility and greedily
//! selected until they cover the training set. At classification time the
//! incoming prefix is scanned; the first feature whose best-match distance
//! drops below its δ fires a prediction.

use etsc_core::distance::squared_euclidean_early_abandon;
use etsc_core::stats::mean_std;
use etsc_core::{ClassLabel, UcrDataset};
use etsc_persist::{Decoder, Encoder, Persist, PersistError};

use crate::{
    expect_session_tag, get_decision, put_decision, session_tags, Decision, DecisionSession,
    EarlyClassifier, SessionNorm,
};

/// Threshold-learning method for EDSC features.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdMethod {
    /// One-sided Chebyshev bound, `k` standard deviations below the
    /// non-target mean (the paper's EDSC-CHE; `k = 3` is the usual setting).
    Chebyshev {
        /// Number of standard deviations.
        k: f64,
    },
    /// Kernel density estimation of both distance populations; δ maximal
    /// subject to estimated precision ≥ `precision`.
    Kde {
        /// Required estimated precision in `(0, 1]`.
        precision: f64,
    },
}

/// EDSC hyper-parameters.
#[derive(Debug, Clone)]
pub struct EdscConfig {
    /// Candidate subsequence lengths.
    pub lengths: Vec<usize>,
    /// Stride between candidate start offsets (1 = exhaustive).
    pub stride: usize,
    /// Threshold learning method.
    pub method: ThresholdMethod,
    /// Features must reach this empirical precision on the training set.
    pub min_precision: f64,
    /// Cap on selected features per class.
    pub max_features_per_class: usize,
}

impl Default for EdscConfig {
    fn default() -> Self {
        Self {
            lengths: vec![10, 20, 30],
            stride: 3,
            method: ThresholdMethod::Chebyshev { k: 3.0 },
            min_precision: 0.85,
            max_features_per_class: 20,
        }
    }
}

/// One mined shapelet feature.
#[derive(Debug, Clone)]
pub struct Feature {
    /// The subsequence pattern.
    pub pattern: Vec<f64>,
    /// Class the feature indicates.
    pub label: ClassLabel,
    /// Match threshold (Euclidean, not squared).
    pub threshold: f64,
    /// Earliness-weighted utility used for ranking.
    pub utility: f64,
    /// Empirical training precision.
    pub precision: f64,
    /// Empirical training recall.
    pub recall: f64,
}

/// A fitted EDSC model.
#[derive(Debug, Clone)]
pub struct Edsc {
    features: Vec<Feature>,
    n_classes: usize,
    series_len: usize,
    min_prefix: usize,
}

/// Descending-utility candidate order, NaN-last: a degenerate training
/// split can yield a NaN utility (e.g. all-constant distance populations),
/// and `partial_cmp().unwrap()` on such a pair panics mid-fit. NaN
/// candidates sort behind every real-valued one, so they are considered
/// last (and in practice never selected).
fn by_utility_desc(a: &Feature, b: &Feature) -> std::cmp::Ordering {
    match (a.utility.is_nan(), b.utility.is_nan()) {
        (false, false) => b.utility.total_cmp(&a.utility),
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater, // NaN last
        (false, true) => std::cmp::Ordering::Less,
    }
}

/// Best-match (minimum) Euclidean distance of `pattern` over all complete
/// windows of `series`; `None` if the series is shorter than the pattern.
fn best_match_dist(pattern: &[f64], series: &[f64]) -> Option<f64> {
    let m = pattern.len();
    if series.len() < m {
        return None;
    }
    let mut best = f64::INFINITY;
    for start in 0..=(series.len() - m) {
        if let Some(d) = squared_euclidean_early_abandon(pattern, &series[start..start + m], best) {
            best = best.min(d);
        }
    }
    Some(best.sqrt())
}

/// Earliest window end at which `pattern` matches `series` within
/// `threshold`; `None` if it never does.
fn earliest_match_end(pattern: &[f64], series: &[f64], threshold: f64) -> Option<usize> {
    let m = pattern.len();
    if series.len() < m {
        return None;
    }
    let t2 = threshold * threshold;
    for start in 0..=(series.len() - m) {
        if squared_euclidean_early_abandon(pattern, &series[start..start + m], t2).is_some() {
            return Some(start + m);
        }
    }
    None
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf approximation
/// (max abs error ≈ 1.5e-7) — accurate far beyond what KDE needs.
fn normal_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * z.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-z * z).exp();
    let erf = if z >= 0.0 { erf } else { -erf };
    0.5 * (1.0 + erf)
}

/// KDE CDF (Gaussian kernels, Silverman bandwidth) of `sample` at `x`.
fn kde_cdf(sample: &[f64], x: f64) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    let (_, sd) = mean_std(sample);
    let n = sample.len() as f64;
    let bw = (1.06 * sd * n.powf(-0.2)).max(1e-6);
    sample
        .iter()
        .map(|&s| normal_cdf((x - s) / bw))
        .sum::<f64>()
        / n
}

impl Edsc {
    /// Mine and select features from `train`.
    pub fn fit(train: &UcrDataset, cfg: &EdscConfig) -> Self {
        let n = train.len();
        let len = train.series_len();
        let n_classes = train.n_classes();
        assert!(n >= 2, "EDSC needs at least two training exemplars");
        let stride = cfg.stride.max(1);

        let mut candidates: Vec<Feature> = Vec::new();
        for src in 0..n {
            let label = train.label(src);
            let series = train.series(src);
            for &m in &cfg.lengths {
                if m < 2 || m > len {
                    continue;
                }
                let mut start = 0;
                while start + m <= len {
                    let pattern = &series[start..start + m];
                    if let Some(feature) = Self::evaluate_candidate(train, pattern, label, src, cfg)
                    {
                        candidates.push(feature);
                    }
                    start += stride;
                }
            }
        }

        // Greedy utility-ranked selection with per-class coverage.
        candidates.sort_by(by_utility_desc);
        let mut covered = vec![false; n];
        let mut per_class = vec![0usize; n_classes];
        let mut selected: Vec<Feature> = Vec::new();
        for f in candidates {
            if per_class[f.label] >= cfg.max_features_per_class {
                continue;
            }
            // Which target exemplars does this feature newly cover?
            let mut newly = 0;
            let mut marks = Vec::new();
            for i in 0..n {
                if train.label(i) == f.label && !covered[i] {
                    if let Some(d) = best_match_dist(&f.pattern, train.series(i)) {
                        if d <= f.threshold {
                            newly += 1;
                            marks.push(i);
                        }
                    }
                }
            }
            if newly == 0 {
                continue;
            }
            for i in marks {
                covered[i] = true;
            }
            per_class[f.label] += 1;
            selected.push(f);
            if covered.iter().all(|&c| c) {
                break;
            }
        }

        let min_prefix = cfg
            .lengths
            .iter()
            .copied()
            .filter(|&m| m <= len)
            .min()
            .unwrap_or(1);
        Self {
            features: selected,
            n_classes,
            series_len: len,
            min_prefix,
        }
    }

    /// Score one candidate pattern; returns `None` if no valid threshold.
    fn evaluate_candidate(
        train: &UcrDataset,
        pattern: &[f64],
        label: ClassLabel,
        src: usize,
        cfg: &EdscConfig,
    ) -> Option<Feature> {
        let n = train.len();
        let len = train.series_len();
        let mut target = Vec::new();
        let mut non_target = Vec::new();
        let mut dists = vec![0.0f64; n];
        for i in 0..n {
            let d = best_match_dist(pattern, train.series(i)).expect("same-length dataset");
            dists[i] = d;
            if train.label(i) == label {
                if i != src {
                    target.push(d);
                }
            } else {
                non_target.push(d);
            }
        }
        if non_target.is_empty() || target.is_empty() {
            return None;
        }

        let threshold = match cfg.method {
            ThresholdMethod::Chebyshev { k } => {
                let (mu, sd) = mean_std(&non_target);
                mu - k * sd
            }
            ThresholdMethod::Kde { precision } => {
                // Largest δ (scanned over observed target distances) whose
                // KDE-estimated precision clears the requirement.
                let nt = target.len() as f64;
                let nn = non_target.len() as f64;
                let mut grid: Vec<f64> = target.clone();
                grid.sort_by(f64::total_cmp); // NaN-proof: never panics mid-fit
                let mut best = f64::NEG_INFINITY;
                for &delta in grid.iter().rev() {
                    let tp = kde_cdf(&target, delta) * nt;
                    let fp = kde_cdf(&non_target, delta) * nn;
                    if tp + fp > 0.0 && tp / (tp + fp) >= precision {
                        best = delta;
                        break;
                    }
                }
                best
            }
        };
        if threshold <= 0.0 || !threshold.is_finite() {
            return None;
        }

        // Empirical precision / recall / earliness at the learned threshold.
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut end_sum = 0.0;
        for i in 0..n {
            if dists[i] <= threshold {
                if train.label(i) == label {
                    tp += 1;
                    if let Some(end) = earliest_match_end(pattern, train.series(i), threshold) {
                        end_sum += end as f64;
                    }
                } else {
                    fp += 1;
                }
            }
        }
        if tp == 0 {
            return None;
        }
        let precision = tp as f64 / (tp + fp) as f64;
        if precision < cfg.min_precision {
            return None;
        }
        let class_size = train.class_counts()[label];
        let recall = tp as f64 / class_size as f64;
        let mean_end = end_sum / tp as f64;
        // Earliness-weighted utility: recall scaled by how early matches
        // complete (a feature matching at the very start of the series gets
        // weight ~1, one matching at the end ~pattern_len/len).
        let utility = recall * (1.0 - (mean_end - pattern.len() as f64) / len as f64);
        Some(Feature {
            pattern: pattern.to_vec(),
            label,
            threshold,
            utility,
            precision,
            recall,
        })
    }

    /// The selected features, ranked by utility.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// Longest selected pattern — the trailing-window size sessions keep.
    fn max_pattern_len(&self) -> usize {
        self.features
            .iter()
            .map(|f| f.pattern.len())
            .max()
            .unwrap_or(1)
    }
}

impl Persist for Edsc {
    const KIND: &'static str = "Edsc";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.put_usize(self.n_classes);
        enc.put_usize(self.series_len);
        enc.put_usize(self.min_prefix);
        enc.put_usize(self.features.len());
        for f in &self.features {
            enc.section(|e| {
                e.put_f64_slice(&f.pattern);
                e.put_usize(f.label);
                e.put_f64(f.threshold);
                e.put_f64(f.utility);
                e.put_f64(f.precision);
                e.put_f64(f.recall);
            });
        }
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let n_classes = dec.get_usize("edsc class count")?;
        let series_len = dec.get_usize("edsc series_len")?;
        let min_prefix = dec.get_usize("edsc min_prefix")?.max(1);
        let n = dec.get_usize("edsc feature count")?;
        let mut features = Vec::with_capacity(n);
        for i in 0..n {
            let mut sub = dec.section("edsc feature")?;
            let pattern = sub.get_f64_vec("edsc pattern")?;
            if pattern.is_empty() || pattern.len() > series_len {
                return Err(PersistError::Corrupt(format!(
                    "edsc feature {i}: pattern length {} for series_len {series_len}",
                    pattern.len()
                )));
            }
            let label = sub.get_usize("edsc feature label")?;
            if label >= n_classes {
                return Err(PersistError::Corrupt(format!(
                    "edsc feature {i}: label {label} for {n_classes} classes"
                )));
            }
            let threshold = sub.get_f64("edsc feature threshold")?;
            if !(threshold.is_finite() && threshold > 0.0) {
                return Err(PersistError::Corrupt(format!(
                    "edsc feature {i}: threshold {threshold}"
                )));
            }
            let utility = sub.get_f64("edsc feature utility")?;
            let precision = sub.get_f64("edsc feature precision")?;
            let recall = sub.get_f64("edsc feature recall")?;
            sub.finish()?;
            features.push(Feature {
                pattern,
                label,
                threshold,
                utility,
                precision,
                recall,
            });
        }
        Ok(Self {
            features,
            n_classes,
            series_len,
            min_prefix,
        })
    }
}

/// Incremental EDSC session.
///
/// [`Edsc::decide`] rescans every window of the whole prefix per feature on
/// every call — O(prefix × pattern) per feature per sample. The session
/// instead keeps, per feature, the minimum distance over all windows seen
/// so far and, on each push, evaluates only the **new** windows ending at
/// the incoming sample (one per feature, O(pattern) each). The minimum over
/// identical window distances is identical, so decisions reproduce `decide`
/// exactly; per-sample cost is bounded by the feature lengths, independent
/// of how long the prefix has grown.
struct EdscSession<'a> {
    model: &'a Edsc,
    /// Trailing samples, bounded by the longest feature pattern.
    buf: Vec<f64>,
    /// Per-feature minimum window distance seen so far (Euclidean).
    best: Vec<f64>,
    /// Longest pattern length = how much history windows can need.
    window: usize,
    len: usize,
    decision: Decision,
}

impl DecisionSession for EdscSession<'_> {
    fn push(&mut self, x: f64) -> Decision {
        if self.decision.is_predict() {
            self.len += 1;
            return self.decision; // latched: count the sample, skip the work
        }
        if self.buf.len() == self.window {
            self.buf.remove(0); // tiny window; shift beats a ring buffer here
        }
        self.buf.push(x);
        self.len += 1;
        // Evaluate the one new window per feature (the window ending now).
        for (f, best) in self.model.features.iter().zip(self.best.iter_mut()) {
            let m = f.pattern.len();
            if self.len < m {
                continue;
            }
            let start = self.buf.len() - m;
            // Same serial left-to-right accumulation as `decide`'s
            // `best_match_dist` (the unrolled `squared_euclidean`
            // reassociates and would drift a ulp), with the current best as
            // the abandonment cutoff: abandoned windows satisfy d > best
            // exactly, so the best-distance evolution is bit-identical.
            if let Some(d2) =
                squared_euclidean_early_abandon(&f.pattern, &self.buf[start..], *best * *best)
            {
                let d = d2.sqrt();
                if d < *best {
                    *best = d;
                }
            }
        }
        // First feature (utility order) whose best window clears its
        // threshold fires — the same scan as `decide`.
        for (f, &best) in self.model.features.iter().zip(&self.best) {
            if best <= f.threshold {
                let confidence = (1.0 - best / f.threshold).clamp(0.0, 1.0) * f.precision;
                self.decision = Decision::Predict {
                    label: f.label,
                    confidence,
                };
                break;
            }
        }
        self.decision
    }

    fn decision(&self) -> Decision {
        self.decision
    }

    fn len(&self) -> usize {
        self.len
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.best.fill(f64::INFINITY);
        self.len = 0;
        self.decision = Decision::Wait;
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u8(session_tags::EDSC_RAW);
        enc.put_f64_slice(&self.buf);
        enc.put_f64_slice(&self.best);
        enc.put_usize(self.len);
        put_decision(enc, self.decision);
        Ok(())
    }
}

/// Per-feature state of an [`EdscZnormSession`].
struct ZnormFeatureState {
    /// Σ xⱼ·qⱼ of every window seen so far, indexed by window start.
    dots: Vec<f64>,
    /// Running maxima over windows: Σx² (nonnegative), |Σx|, |Σx·q| — the
    /// coefficients of the drift bound.
    amax: f64,
    bmax: f64,
    cmax: f64,
    /// Normalization epoch `(u₀, v₀)`: the parameters of the last full
    /// window sweep for this feature.
    u0: f64,
    v0: f64,
    /// Minimum window distance *at the epoch parameters* (windows born
    /// since the sweep are folded in, evaluated at the epoch).
    min0: f64,
    /// Pattern length (as f64) and sums Σq, Σq².
    m: f64,
    q1: f64,
    r: f64,
}

impl ZnormFeatureState {
    /// Squared distance of a window with raw stats
    /// `(a, b, c) = (Σx², Σx, Σx·q)` to this feature's pattern, under the
    /// prefix normalization `ẑ = u·x − v`:
    ///
    /// ```text
    /// ‖ẑ_w − q‖² = u²·a − 2uv·b + m·v² − 2u·c + 2v·q1 + r
    /// ```
    #[inline]
    fn dist_sq(&self, a: f64, b: f64, c: f64, u: f64, v: f64) -> f64 {
        u * u * a - 2.0 * u * v * b + self.m * v * v - 2.0 * u * c + 2.0 * v * self.q1 + self.r
    }
}

/// Incremental EDSC session under per-prefix z-normalization.
///
/// The batch path re-normalizes the whole prefix and rescans every window
/// per push — O(prefix × pattern) per feature per sample. This session
/// exploits that per-prefix z-normalization is an *affine, global* map
/// `ẑ = u·x − v` (`u = 1/σ_p`, `v = μ_p/σ_p`): a window's distance under
/// any such map is a closed form over three cached raw statistics (its
/// Σx², Σx — both recovered from cumulative prefix sums — and its dot with
/// the pattern, cached at window birth; the same dot identity as
/// `etsc_core::nn::BatchProfile`). Each push therefore costs one O(pattern)
/// dot per feature for the newborn window, plus either:
///
/// * **an O(1) drift-bound check** — per feature, the minimum distance at
///   the current `(u, v)` is lower-bounded from the minimum at the last
///   full sweep (`(u₀, v₀)` epoch) plus the exact window-independent shift
///   and a worst-case bound on the window-dependent terms (running maxima
///   of Σx², |Σx|, |Σx·q|); if the bound clears the feature's threshold,
///   no window can match and the sweep is skipped — or
/// * **an O(windows) closed-form sweep** (3 fused multiply-adds per window)
///   when a match cannot be ruled out, which also resets the epoch.
///
/// As the prefix grows, `(u, v)` converge for stationarity-ish streams and
/// sweeps become rare, so the amortized per-push cost is bounded by the
/// pattern lengths; on adversarial (e.g. strongly trending) streams every
/// push may sweep, which still beats replay by the pattern length (3 flops
/// per window instead of a fresh O(pattern) scan, no re-normalization
/// pass). The bound is conservative (inflated by a 1e-9-relative safety
/// margin), so decisions track `decide(&znormalize(prefix))` to the same
/// reassociation tolerance as sweeping on every push.
struct EdscZnormSession<'a> {
    model: &'a Edsc,
    /// Cumulative Σx / Σx² of the raw prefix (len + 1 entries, leading 0) —
    /// window sums become two subtractions, and the prefix mean/std are
    /// recovered with `mean_std`'s exact accumulation order.
    c1: Vec<f64>,
    c2: Vec<f64>,
    /// Trailing raw samples, bounded by the longest pattern (newborn
    /// windows need their raw values once, for the pattern dot).
    tail: Vec<f64>,
    window: usize,
    features: Vec<ZnormFeatureState>,
    len: usize,
    decision: Decision,
}

impl<'a> EdscZnormSession<'a> {
    fn new(model: &'a Edsc, window: usize) -> Self {
        Self {
            model,
            c1: vec![0.0],
            c2: vec![0.0],
            tail: Vec::with_capacity(window),
            window,
            features: model
                .features
                .iter()
                .map(|f| ZnormFeatureState {
                    dots: Vec::new(),
                    amax: 0.0,
                    bmax: 0.0,
                    cmax: 0.0,
                    u0: 0.0,
                    v0: 0.0,
                    min0: f64::INFINITY,
                    m: f.pattern.len() as f64,
                    q1: f.pattern.iter().sum(),
                    r: f.pattern.iter().map(|&q| q * q).sum(),
                })
                .collect(),
            len: 0,
            decision: Decision::Wait,
        }
    }
}

impl DecisionSession for EdscZnormSession<'_> {
    fn push(&mut self, x: f64) -> Decision {
        self.len += 1;
        if self.decision.is_predict() {
            return self.decision; // latched: count the sample, skip the work
        }
        self.c1.push(self.c1[self.c1.len() - 1] + x);
        self.c2.push(self.c2[self.c2.len() - 1] + x * x);
        if self.tail.len() == self.window {
            self.tail.remove(0); // tiny window; shift beats a ring buffer
        }
        self.tail.push(x);
        let t = self.len;
        // Prefix normalization parameters. The cumulative sums accumulate
        // in the same order as `mean_std` over the buffered prefix, so the
        // constant-prefix branch (`ẑ ≡ 0`, i.e. `(u, v) = (0, 0)`) is taken
        // exactly when the batch `znormalize` takes it.
        let n = t as f64;
        let mean = self.c1[t] / n;
        let var = (self.c2[t] / n - mean * mean).max(0.0);
        let sd = var.sqrt();
        let (u, v) = if sd <= etsc_core::znorm::CONSTANT_EPS {
            (0.0, 0.0)
        } else {
            (1.0 / sd, mean / sd)
        };
        // Features in utility order; the first match fires (same scan as
        // `decide`).
        for (f, st) in self.model.features.iter().zip(self.features.iter_mut()) {
            let m = f.pattern.len();
            if t < m {
                continue;
            }
            // Birth of the window ending at the newest sample.
            let w = t - m;
            let start = self.tail.len() - m;
            let mut dot = 0.0;
            for (xv, qv) in self.tail[start..].iter().zip(&f.pattern) {
                dot += xv * qv;
            }
            let a = self.c2[t] - self.c2[w];
            let b = self.c1[t] - self.c1[w];
            st.amax = st.amax.max(a);
            st.bmax = st.bmax.max(b.abs());
            st.cmax = st.cmax.max(dot.abs());
            if st.dots.is_empty() {
                st.u0 = u;
                st.v0 = v;
                st.min0 = st.dist_sq(a, b, dot, u, v);
            } else {
                st.min0 = st.min0.min(st.dist_sq(a, b, dot, st.u0, st.v0));
            }
            st.dots.push(dot);
            let thr2 = f.threshold * f.threshold;
            // Can any window match under the *current* normalization?
            // min_w d(u,v) ≥ min0 + shift − drift, where `shift` is the
            // exact window-independent part of the parameter change and
            // `drift` bounds the window-dependent part via the running
            // maxima. Inflated by a relative safety margin so fp slop in
            // the bound itself can never hide a true match.
            let shift = st.m * (v * v - st.v0 * st.v0) + 2.0 * st.q1 * (v - st.v0);
            let drift = st.amax * (u * u - st.u0 * st.u0).abs()
                + 2.0 * st.bmax * (u * v - st.u0 * st.v0).abs()
                + 2.0 * st.cmax * (u - st.u0).abs();
            let safety = 1e-9 * (st.min0.abs() + thr2 + 1.0);
            if st.min0 + shift - drift - safety > thr2 {
                continue; // provably no match at the current normalization
            }
            // Full closed-form sweep at the current parameters; new epoch.
            let mut best = f64::INFINITY;
            for (wi, &dw) in st.dots.iter().enumerate() {
                let aw = self.c2[wi + m] - self.c2[wi];
                let bw = self.c1[wi + m] - self.c1[wi];
                let d = st.dist_sq(aw, bw, dw, u, v);
                if d < best {
                    best = d;
                }
            }
            st.u0 = u;
            st.v0 = v;
            st.min0 = best;
            if best <= thr2 {
                let d = best.max(0.0).sqrt();
                let confidence = (1.0 - d / f.threshold).clamp(0.0, 1.0) * f.precision;
                self.decision = Decision::Predict {
                    label: f.label,
                    confidence,
                };
                break;
            }
        }
        self.decision
    }

    fn decision(&self) -> Decision {
        self.decision
    }

    fn len(&self) -> usize {
        self.len
    }

    fn reset(&mut self) {
        self.c1.truncate(1);
        self.c2.truncate(1);
        self.tail.clear();
        for st in self.features.iter_mut() {
            st.dots.clear();
            st.amax = 0.0;
            st.bmax = 0.0;
            st.cmax = 0.0;
            st.u0 = 0.0;
            st.v0 = 0.0;
            st.min0 = f64::INFINITY;
        }
        self.len = 0;
        self.decision = Decision::Wait;
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u8(session_tags::EDSC_ZNORM);
        enc.put_f64_slice(&self.c1);
        enc.put_f64_slice(&self.c2);
        enc.put_f64_slice(&self.tail);
        enc.put_usize(self.len);
        put_decision(enc, self.decision);
        enc.put_usize(self.features.len());
        for st in &self.features {
            enc.section(|e| {
                e.put_f64_slice(&st.dots);
                e.put_f64(st.amax);
                e.put_f64(st.bmax);
                e.put_f64(st.cmax);
                e.put_f64(st.u0);
                e.put_f64(st.v0);
                e.put_f64(st.min0);
            });
        }
        Ok(())
    }
}

impl EarlyClassifier for Edsc {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn series_len(&self) -> usize {
        self.series_len
    }

    fn min_prefix(&self) -> usize {
        self.min_prefix
    }

    fn decide(&self, prefix: &[f64]) -> Decision {
        // The highest-utility feature that matches anywhere in the prefix
        // fires. (Features are stored in utility order.)
        for f in &self.features {
            if prefix.len() < f.pattern.len() {
                continue;
            }
            if let Some(d) = best_match_dist(&f.pattern, prefix) {
                if d <= f.threshold {
                    let confidence = (1.0 - d / f.threshold).clamp(0.0, 1.0) * f.precision;
                    return Decision::Predict {
                        label: f.label,
                        confidence,
                    };
                }
            }
        }
        Decision::Wait
    }

    fn resume_session(
        &self,
        norm: SessionNorm,
        dec: &mut Decoder<'_>,
    ) -> Result<Box<dyn DecisionSession + '_>, PersistError> {
        let window = self.max_pattern_len();
        match norm {
            SessionNorm::Raw => {
                expect_session_tag(dec, session_tags::EDSC_RAW)?;
                let buf = dec.get_f64_vec("edsc buf")?;
                let best = dec.get_f64_vec("edsc best")?;
                if buf.len() > window || best.len() != self.features.len() {
                    return Err(PersistError::Corrupt(format!(
                        "edsc session: buffer {} / {} minima for window {window}, {} features",
                        buf.len(),
                        best.len(),
                        self.features.len()
                    )));
                }
                let len = dec.get_usize("edsc len")?;
                let decision = get_decision(dec, self.n_classes)?;
                Ok(Box::new(EdscSession {
                    model: self,
                    buf,
                    best,
                    window,
                    len,
                    decision,
                }))
            }
            SessionNorm::PerPrefix => {
                expect_session_tag(dec, session_tags::EDSC_ZNORM)?;
                let c1 = dec.get_f64_vec("edsc c1")?;
                let c2 = dec.get_f64_vec("edsc c2")?;
                let tail = dec.get_f64_vec("edsc tail")?;
                if c1.is_empty() || c1.len() != c2.len() || tail.len() > window {
                    return Err(PersistError::Corrupt(
                        "edsc znorm session: cumulative-sum/tail shape".into(),
                    ));
                }
                let len = dec.get_usize("edsc len")?;
                if c1.len() > len + 1 {
                    return Err(PersistError::Corrupt(format!(
                        "edsc znorm session: {} cumulative entries for {len} pushes",
                        c1.len()
                    )));
                }
                let decision = get_decision(dec, self.n_classes)?;
                let n_feat = dec.get_usize("edsc feature state count")?;
                if n_feat != self.features.len() {
                    return Err(PersistError::Corrupt(format!(
                        "edsc znorm session: {n_feat} feature states for {} features",
                        self.features.len()
                    )));
                }
                let mut session = EdscZnormSession::new(self, window);
                for (i, st) in session.features.iter_mut().enumerate() {
                    let mut sub = dec.section("edsc feature state")?;
                    let dots = sub.get_f64_vec("edsc dots")?;
                    if dots.len() + 1 > c1.len() {
                        return Err(PersistError::Corrupt(format!(
                            "edsc znorm session feature {i}: {} window dots for {} prefix entries",
                            dots.len(),
                            c1.len()
                        )));
                    }
                    st.dots = dots;
                    st.amax = sub.get_f64("edsc amax")?;
                    st.bmax = sub.get_f64("edsc bmax")?;
                    st.cmax = sub.get_f64("edsc cmax")?;
                    st.u0 = sub.get_f64("edsc u0")?;
                    st.v0 = sub.get_f64("edsc v0")?;
                    st.min0 = sub.get_f64("edsc min0")?;
                    sub.finish()?;
                }
                session.c1 = c1;
                session.c2 = c2;
                session.tail = tail;
                session.len = len;
                session.decision = decision;
                Ok(Box::new(session))
            }
        }
    }

    fn session(&self, norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
        let window = self.max_pattern_len();
        match norm {
            SessionNorm::Raw => Box::new(EdscSession {
                model: self,
                buf: Vec::with_capacity(window),
                best: vec![f64::INFINITY; self.features.len()],
                window,
                len: 0,
                decision: Decision::Wait,
            }),
            // Re-normalizing a growing prefix rescales every window already
            // scanned, but the rescaling is *affine and global*: each
            // window's distance under any prefix normalization is a closed
            // form over its cached raw Σx/Σx²/Σx·q — so past windows are
            // re-evaluated from three numbers, and a per-feature drift
            // bound skips even that on most pushes.
            SessionNorm::PerPrefix => Box::new(EdscZnormSession::new(self, window)),
        }
    }

    fn predict_full(&self, series: &[f64]) -> ClassLabel {
        // Fallback: the feature with the smallest relative distance wins.
        let mut best = (0usize, f64::INFINITY);
        for f in &self.features {
            if let Some(d) = best_match_dist(&f.pattern, series) {
                let rel = d / f.threshold.max(1e-12);
                if rel < best.1 {
                    best = (f.label, rel);
                }
            }
        }
        if best.1.is_finite() {
            best.0
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate, PrefixPolicy};

    /// Class 0 carries an early bump, class 1 an early dip; both flat after.
    fn bump_data(n: usize, len: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n {
                let sign = if c == 0 { 1.0 } else { -1.0 };
                let jitter = (i % 5) as f64 * 0.3;
                data.push(
                    (0..len)
                        .map(|j| {
                            let x = j as f64 - (8.0 + jitter);
                            sign * (-x * x / 8.0).exp()
                                + 0.01 * (((i * 7 + j * 3) % 5) as f64 - 2.0)
                        })
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    fn quick_cfg(method: ThresholdMethod) -> EdscConfig {
        EdscConfig {
            lengths: vec![8, 12],
            stride: 4,
            method,
            min_precision: 0.8,
            max_features_per_class: 8,
        }
    }

    #[test]
    fn che_fits_and_selects_features() {
        let d = bump_data(8, 40);
        let edsc = Edsc::fit(&d, &quick_cfg(ThresholdMethod::Chebyshev { k: 2.0 }));
        assert!(!edsc.features().is_empty());
        for f in edsc.features() {
            assert!(f.threshold > 0.0);
            assert!(f.precision >= 0.8);
            assert!(f.recall > 0.0);
        }
    }

    #[test]
    fn kde_fits_and_selects_features() {
        let d = bump_data(8, 40);
        let edsc = Edsc::fit(&d, &quick_cfg(ThresholdMethod::Kde { precision: 0.9 }));
        assert!(!edsc.features().is_empty());
    }

    #[test]
    fn classifies_accurately_and_early() {
        let train = bump_data(8, 40);
        let test = bump_data(4, 40);
        for method in [
            ThresholdMethod::Chebyshev { k: 2.0 },
            ThresholdMethod::Kde { precision: 0.9 },
        ] {
            let edsc = Edsc::fit(&train, &quick_cfg(method));
            let ev = evaluate(&edsc, &test, PrefixPolicy::Oracle);
            assert!(
                ev.accuracy() >= 0.75,
                "{method:?} accuracy {}",
                ev.accuracy()
            );
            assert!(
                ev.earliness() < 0.9,
                "{method:?} bump is early; earliness {}",
                ev.earliness()
            );
        }
    }

    #[test]
    fn waits_on_featureless_prefix() {
        let train = bump_data(8, 40);
        let edsc = Edsc::fit(&train, &quick_cfg(ThresholdMethod::Chebyshev { k: 2.0 }));
        // A prefix shorter than every feature must wait.
        assert_eq!(edsc.decide(&[0.0; 4]), Decision::Wait);
        // A flat prefix (no bump) should not fire features tuned to bumps.
        assert_eq!(edsc.decide(&[0.0; 20]), Decision::Wait);
    }

    #[test]
    fn higher_chebyshev_k_tightens_thresholds() {
        let d = bump_data(8, 40);
        let loose = Edsc::fit(&d, &quick_cfg(ThresholdMethod::Chebyshev { k: 1.0 }));
        let tight = Edsc::fit(&d, &quick_cfg(ThresholdMethod::Chebyshev { k: 3.0 }));
        let max_thr = |e: &Edsc| {
            e.features()
                .iter()
                .map(|f| f.threshold)
                .fold(f64::MIN, f64::max)
        };
        if !loose.features().is_empty() && !tight.features().is_empty() {
            assert!(max_thr(&tight) <= max_thr(&loose) + 1e-9);
        }
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!(normal_cdf(3.0) > 0.998);
        assert!(normal_cdf(-3.0) < 0.002);
        // Symmetry.
        assert!((normal_cdf(1.2) + normal_cdf(-1.2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn kde_cdf_is_monotone() {
        let sample = [1.0, 2.0, 3.0, 4.0];
        let mut prev = 0.0;
        for i in 0..50 {
            let x = i as f64 / 10.0;
            let c = kde_cdf(&sample, x);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!(kde_cdf(&sample, 10.0) > 0.99);
        assert!(kde_cdf(&[], 0.0) == 0.0);
    }

    #[test]
    fn raw_session_reproduces_decide_exactly() {
        let train = bump_data(8, 40);
        let test = bump_data(3, 40);
        for method in [
            ThresholdMethod::Chebyshev { k: 2.0 },
            ThresholdMethod::Kde { precision: 0.9 },
        ] {
            let edsc = Edsc::fit(&train, &quick_cfg(method));
            for (probe, _) in test.iter() {
                let mut s = edsc.session(crate::SessionNorm::Raw);
                for t in 0..probe.len() {
                    let inc = s.push(probe[t]);
                    let batch = edsc.decide(&probe[..t + 1]);
                    assert_eq!(inc, batch, "{method:?} prefix {}", t + 1);
                    if inc.is_predict() {
                        break; // sessions latch at the first commit
                    }
                }
            }
        }
    }

    #[test]
    fn per_prefix_session_tracks_znormalized_decide() {
        use etsc_core::znorm::znormalize;
        let train = bump_data(8, 40);
        let test = bump_data(3, 40);
        for method in [
            ThresholdMethod::Chebyshev { k: 2.0 },
            ThresholdMethod::Kde { precision: 0.9 },
        ] {
            let edsc = Edsc::fit(&train, &quick_cfg(method));
            for (probe, _) in test.iter() {
                let mut s = edsc.session(crate::SessionNorm::PerPrefix);
                for t in 0..probe.len() {
                    let inc = s.push(probe[t]);
                    let batch = edsc.decide(&znormalize(&probe[..t + 1]));
                    // Closed-form window algebra vs renormalize-and-rescan:
                    // same arithmetic regrouped, so commits can differ only
                    // where a distance grazes a threshold within fp noise.
                    assert_eq!(
                        inc.is_predict(),
                        batch.is_predict(),
                        "{method:?} prefix {}",
                        t + 1
                    );
                    if let (Some((li, ci)), Some((lb, cb))) =
                        (inc.label_confidence(), batch.label_confidence())
                    {
                        assert_eq!(li, lb, "{method:?} prefix {}", t + 1);
                        assert!((ci - cb).abs() < 1e-9, "confidence {ci} vs {cb}");
                        break; // sessions latch at the first commit
                    }
                }
            }
        }
    }

    #[test]
    fn per_prefix_session_reset_reuses_cleanly() {
        let train = bump_data(8, 40);
        let edsc = Edsc::fit(&train, &quick_cfg(ThresholdMethod::Chebyshev { k: 2.0 }));
        let probe = train.series(1);
        let mut s = edsc.session(crate::SessionNorm::PerPrefix);
        let first: Vec<Decision> = probe.iter().map(|&x| s.push(x)).collect();
        s.reset();
        assert!(s.is_empty());
        let second: Vec<Decision> = probe.iter().map(|&x| s.push(x)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn constant_series_training_split_does_not_panic() {
        // Regression: a degenerate split — one class entirely constant, the
        // other near-constant — drives the candidate distance populations
        // to zero variance. The utility sort must tolerate whatever the
        // threshold learners produce (including NaN) instead of panicking
        // in `partial_cmp().unwrap()`.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..6 {
            data.push(vec![0.0; 24]); // constant class
            labels.push(0);
            data.push(vec![1e-9 * (i as f64); 24]); // near-constant class
            labels.push(1);
        }
        let d = UcrDataset::new(data, labels).unwrap();
        for method in [
            ThresholdMethod::Chebyshev { k: 2.0 },
            ThresholdMethod::Kde { precision: 0.9 },
        ] {
            let edsc = Edsc::fit(&d, &quick_cfg(method)); // must not panic
            let _ = edsc.decide(&[0.0; 24]);
        }
    }

    #[test]
    fn utility_sort_puts_nan_last() {
        use std::cmp::Ordering;
        let f = |utility: f64| Feature {
            pattern: vec![0.0; 4],
            label: 0,
            threshold: 1.0,
            utility,
            precision: 1.0,
            recall: 1.0,
        };
        let mut v = [f(0.2), f(f64::NAN), f(0.9), f(f64::NAN), f(0.5)];
        v.sort_by(by_utility_desc);
        let u: Vec<f64> = v.iter().map(|x| x.utility).collect();
        assert_eq!(&u[..3], &[0.9, 0.5, 0.2], "descending reals first");
        assert!(u[3].is_nan() && u[4].is_nan(), "NaNs sort last");
        assert_eq!(by_utility_desc(&f(f64::NAN), &f(f64::NAN)), Ordering::Equal);
    }

    #[test]
    fn best_match_and_earliest_match_agree() {
        let pattern = [1.0, 2.0, 1.0];
        let series = [0.0, 0.0, 1.0, 2.0, 1.0, 0.0];
        let d = best_match_dist(&pattern, &series).unwrap();
        assert!(d < 1e-12);
        assert_eq!(earliest_match_end(&pattern, &series, 0.1), Some(5));
        assert_eq!(earliest_match_end(&pattern, &series[..4], 0.1), None);
        assert!(best_match_dist(&pattern, &series[..2]).is_none());
    }
}
