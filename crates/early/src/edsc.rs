//! EDSC — Early Distinctive Shapelet Classification (Xing et al., SDM 2011).
//!
//! EDSC mines **local shapelet features**: short subsequences of training
//! series that (a) match their own class tightly, (b) match other classes
//! rarely, and (c) tend to appear *early*. Each feature carries a distance
//! threshold δ learned in one of two ways:
//!
//! * **CHE** — the one-sided Chebyshev (Cantelli) bound: δ is set `k`
//!   standard deviations below the mean distance to non-target series, so
//!   the probability of a non-target match is provably ≤ 1/(1+k²).
//! * **KDE** — Gaussian kernel density estimates of the target and
//!   non-target distance distributions; δ is the largest value whose
//!   estimated precision still clears a user threshold.
//!
//! Features are ranked by an earliness-weighted utility and greedily
//! selected until they cover the training set. At classification time the
//! incoming prefix is scanned; the first feature whose best-match distance
//! drops below its δ fires a prediction.

use etsc_core::distance::squared_euclidean_early_abandon;
use etsc_core::stats::mean_std;
use etsc_core::{ClassLabel, UcrDataset};

use crate::{Decision, DecisionSession, EarlyClassifier, SessionNorm};

/// Threshold-learning method for EDSC features.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdMethod {
    /// One-sided Chebyshev bound, `k` standard deviations below the
    /// non-target mean (the paper's EDSC-CHE; `k = 3` is the usual setting).
    Chebyshev {
        /// Number of standard deviations.
        k: f64,
    },
    /// Kernel density estimation of both distance populations; δ maximal
    /// subject to estimated precision ≥ `precision`.
    Kde {
        /// Required estimated precision in `(0, 1]`.
        precision: f64,
    },
}

/// EDSC hyper-parameters.
#[derive(Debug, Clone)]
pub struct EdscConfig {
    /// Candidate subsequence lengths.
    pub lengths: Vec<usize>,
    /// Stride between candidate start offsets (1 = exhaustive).
    pub stride: usize,
    /// Threshold learning method.
    pub method: ThresholdMethod,
    /// Features must reach this empirical precision on the training set.
    pub min_precision: f64,
    /// Cap on selected features per class.
    pub max_features_per_class: usize,
}

impl Default for EdscConfig {
    fn default() -> Self {
        Self {
            lengths: vec![10, 20, 30],
            stride: 3,
            method: ThresholdMethod::Chebyshev { k: 3.0 },
            min_precision: 0.85,
            max_features_per_class: 20,
        }
    }
}

/// One mined shapelet feature.
#[derive(Debug, Clone)]
pub struct Feature {
    /// The subsequence pattern.
    pub pattern: Vec<f64>,
    /// Class the feature indicates.
    pub label: ClassLabel,
    /// Match threshold (Euclidean, not squared).
    pub threshold: f64,
    /// Earliness-weighted utility used for ranking.
    pub utility: f64,
    /// Empirical training precision.
    pub precision: f64,
    /// Empirical training recall.
    pub recall: f64,
}

/// A fitted EDSC model.
#[derive(Debug, Clone)]
pub struct Edsc {
    features: Vec<Feature>,
    n_classes: usize,
    series_len: usize,
    min_prefix: usize,
}

/// Best-match (minimum) Euclidean distance of `pattern` over all complete
/// windows of `series`; `None` if the series is shorter than the pattern.
fn best_match_dist(pattern: &[f64], series: &[f64]) -> Option<f64> {
    let m = pattern.len();
    if series.len() < m {
        return None;
    }
    let mut best = f64::INFINITY;
    for start in 0..=(series.len() - m) {
        if let Some(d) = squared_euclidean_early_abandon(pattern, &series[start..start + m], best) {
            best = best.min(d);
        }
    }
    Some(best.sqrt())
}

/// Earliest window end at which `pattern` matches `series` within
/// `threshold`; `None` if it never does.
fn earliest_match_end(pattern: &[f64], series: &[f64], threshold: f64) -> Option<usize> {
    let m = pattern.len();
    if series.len() < m {
        return None;
    }
    let t2 = threshold * threshold;
    for start in 0..=(series.len() - m) {
        if squared_euclidean_early_abandon(pattern, &series[start..start + m], t2).is_some() {
            return Some(start + m);
        }
    }
    None
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf approximation
/// (max abs error ≈ 1.5e-7) — accurate far beyond what KDE needs.
fn normal_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * z.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-z * z).exp();
    let erf = if z >= 0.0 { erf } else { -erf };
    0.5 * (1.0 + erf)
}

/// KDE CDF (Gaussian kernels, Silverman bandwidth) of `sample` at `x`.
fn kde_cdf(sample: &[f64], x: f64) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    let (_, sd) = mean_std(sample);
    let n = sample.len() as f64;
    let bw = (1.06 * sd * n.powf(-0.2)).max(1e-6);
    sample
        .iter()
        .map(|&s| normal_cdf((x - s) / bw))
        .sum::<f64>()
        / n
}

impl Edsc {
    /// Mine and select features from `train`.
    pub fn fit(train: &UcrDataset, cfg: &EdscConfig) -> Self {
        let n = train.len();
        let len = train.series_len();
        let n_classes = train.n_classes();
        assert!(n >= 2, "EDSC needs at least two training exemplars");
        let stride = cfg.stride.max(1);

        let mut candidates: Vec<Feature> = Vec::new();
        for src in 0..n {
            let label = train.label(src);
            let series = train.series(src);
            for &m in &cfg.lengths {
                if m < 2 || m > len {
                    continue;
                }
                let mut start = 0;
                while start + m <= len {
                    let pattern = &series[start..start + m];
                    if let Some(feature) = Self::evaluate_candidate(train, pattern, label, src, cfg)
                    {
                        candidates.push(feature);
                    }
                    start += stride;
                }
            }
        }

        // Greedy utility-ranked selection with per-class coverage.
        candidates.sort_by(|a, b| b.utility.partial_cmp(&a.utility).unwrap());
        let mut covered = vec![false; n];
        let mut per_class = vec![0usize; n_classes];
        let mut selected: Vec<Feature> = Vec::new();
        for f in candidates {
            if per_class[f.label] >= cfg.max_features_per_class {
                continue;
            }
            // Which target exemplars does this feature newly cover?
            let mut newly = 0;
            let mut marks = Vec::new();
            for i in 0..n {
                if train.label(i) == f.label && !covered[i] {
                    if let Some(d) = best_match_dist(&f.pattern, train.series(i)) {
                        if d <= f.threshold {
                            newly += 1;
                            marks.push(i);
                        }
                    }
                }
            }
            if newly == 0 {
                continue;
            }
            for i in marks {
                covered[i] = true;
            }
            per_class[f.label] += 1;
            selected.push(f);
            if covered.iter().all(|&c| c) {
                break;
            }
        }

        let min_prefix = cfg
            .lengths
            .iter()
            .copied()
            .filter(|&m| m <= len)
            .min()
            .unwrap_or(1);
        Self {
            features: selected,
            n_classes,
            series_len: len,
            min_prefix,
        }
    }

    /// Score one candidate pattern; returns `None` if no valid threshold.
    fn evaluate_candidate(
        train: &UcrDataset,
        pattern: &[f64],
        label: ClassLabel,
        src: usize,
        cfg: &EdscConfig,
    ) -> Option<Feature> {
        let n = train.len();
        let len = train.series_len();
        let mut target = Vec::new();
        let mut non_target = Vec::new();
        let mut dists = vec![0.0f64; n];
        for i in 0..n {
            let d = best_match_dist(pattern, train.series(i)).expect("same-length dataset");
            dists[i] = d;
            if train.label(i) == label {
                if i != src {
                    target.push(d);
                }
            } else {
                non_target.push(d);
            }
        }
        if non_target.is_empty() || target.is_empty() {
            return None;
        }

        let threshold = match cfg.method {
            ThresholdMethod::Chebyshev { k } => {
                let (mu, sd) = mean_std(&non_target);
                mu - k * sd
            }
            ThresholdMethod::Kde { precision } => {
                // Largest δ (scanned over observed target distances) whose
                // KDE-estimated precision clears the requirement.
                let nt = target.len() as f64;
                let nn = non_target.len() as f64;
                let mut grid: Vec<f64> = target.clone();
                grid.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let mut best = f64::NEG_INFINITY;
                for &delta in grid.iter().rev() {
                    let tp = kde_cdf(&target, delta) * nt;
                    let fp = kde_cdf(&non_target, delta) * nn;
                    if tp + fp > 0.0 && tp / (tp + fp) >= precision {
                        best = delta;
                        break;
                    }
                }
                best
            }
        };
        if threshold <= 0.0 || !threshold.is_finite() {
            return None;
        }

        // Empirical precision / recall / earliness at the learned threshold.
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut end_sum = 0.0;
        for i in 0..n {
            if dists[i] <= threshold {
                if train.label(i) == label {
                    tp += 1;
                    if let Some(end) = earliest_match_end(pattern, train.series(i), threshold) {
                        end_sum += end as f64;
                    }
                } else {
                    fp += 1;
                }
            }
        }
        if tp == 0 {
            return None;
        }
        let precision = tp as f64 / (tp + fp) as f64;
        if precision < cfg.min_precision {
            return None;
        }
        let class_size = train.class_counts()[label];
        let recall = tp as f64 / class_size as f64;
        let mean_end = end_sum / tp as f64;
        // Earliness-weighted utility: recall scaled by how early matches
        // complete (a feature matching at the very start of the series gets
        // weight ~1, one matching at the end ~pattern_len/len).
        let utility = recall * (1.0 - (mean_end - pattern.len() as f64) / len as f64);
        Some(Feature {
            pattern: pattern.to_vec(),
            label,
            threshold,
            utility,
            precision,
            recall,
        })
    }

    /// The selected features, ranked by utility.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }
}

/// Incremental EDSC session.
///
/// [`Edsc::decide`] rescans every window of the whole prefix per feature on
/// every call — O(prefix × pattern) per feature per sample. The session
/// instead keeps, per feature, the minimum distance over all windows seen
/// so far and, on each push, evaluates only the **new** windows ending at
/// the incoming sample (one per feature, O(pattern) each). The minimum over
/// identical window distances is identical, so decisions reproduce `decide`
/// exactly; per-sample cost is bounded by the feature lengths, independent
/// of how long the prefix has grown.
struct EdscSession<'a> {
    model: &'a Edsc,
    /// Trailing samples, bounded by the longest feature pattern.
    buf: Vec<f64>,
    /// Per-feature minimum window distance seen so far (Euclidean).
    best: Vec<f64>,
    /// Longest pattern length = how much history windows can need.
    window: usize,
    len: usize,
    decision: Decision,
}

impl DecisionSession for EdscSession<'_> {
    fn push(&mut self, x: f64) -> Decision {
        if self.decision.is_predict() {
            self.len += 1;
            return self.decision; // latched: count the sample, skip the work
        }
        if self.buf.len() == self.window {
            self.buf.remove(0); // tiny window; shift beats a ring buffer here
        }
        self.buf.push(x);
        self.len += 1;
        // Evaluate the one new window per feature (the window ending now).
        for (f, best) in self.model.features.iter().zip(self.best.iter_mut()) {
            let m = f.pattern.len();
            if self.len < m {
                continue;
            }
            let start = self.buf.len() - m;
            // Same serial left-to-right accumulation as `decide`'s
            // `best_match_dist` (the unrolled `squared_euclidean`
            // reassociates and would drift a ulp), with the current best as
            // the abandonment cutoff: abandoned windows satisfy d > best
            // exactly, so the best-distance evolution is bit-identical.
            if let Some(d2) =
                squared_euclidean_early_abandon(&f.pattern, &self.buf[start..], *best * *best)
            {
                let d = d2.sqrt();
                if d < *best {
                    *best = d;
                }
            }
        }
        // First feature (utility order) whose best window clears its
        // threshold fires — the same scan as `decide`.
        for (f, &best) in self.model.features.iter().zip(&self.best) {
            if best <= f.threshold {
                let confidence = (1.0 - best / f.threshold).clamp(0.0, 1.0) * f.precision;
                self.decision = Decision::Predict {
                    label: f.label,
                    confidence,
                };
                break;
            }
        }
        self.decision
    }

    fn decision(&self) -> Decision {
        self.decision
    }

    fn len(&self) -> usize {
        self.len
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.best.fill(f64::INFINITY);
        self.len = 0;
        self.decision = Decision::Wait;
    }
}

impl EarlyClassifier for Edsc {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn series_len(&self) -> usize {
        self.series_len
    }

    fn min_prefix(&self) -> usize {
        self.min_prefix
    }

    fn decide(&self, prefix: &[f64]) -> Decision {
        // The highest-utility feature that matches anywhere in the prefix
        // fires. (Features are stored in utility order.)
        for f in &self.features {
            if prefix.len() < f.pattern.len() {
                continue;
            }
            if let Some(d) = best_match_dist(&f.pattern, prefix) {
                if d <= f.threshold {
                    let confidence = (1.0 - d / f.threshold).clamp(0.0, 1.0) * f.precision;
                    return Decision::Predict {
                        label: f.label,
                        confidence,
                    };
                }
            }
        }
        Decision::Wait
    }

    fn session(&self, norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
        match norm {
            SessionNorm::Raw => {
                let window = self
                    .features
                    .iter()
                    .map(|f| f.pattern.len())
                    .max()
                    .unwrap_or(1);
                Box::new(EdscSession {
                    model: self,
                    buf: Vec::with_capacity(window),
                    best: vec![f64::INFINITY; self.features.len()],
                    window,
                    len: 0,
                    decision: Decision::Wait,
                })
            }
            // Shapelet features were mined against the training exemplars'
            // normalization; re-normalizing a growing prefix rescales every
            // window already scanned, so there is no incremental form —
            // replay the stateless path.
            SessionNorm::PerPrefix => Box::new(crate::ReplaySession::new(self, norm)),
        }
    }

    fn predict_full(&self, series: &[f64]) -> ClassLabel {
        // Fallback: the feature with the smallest relative distance wins.
        let mut best = (0usize, f64::INFINITY);
        for f in &self.features {
            if let Some(d) = best_match_dist(&f.pattern, series) {
                let rel = d / f.threshold.max(1e-12);
                if rel < best.1 {
                    best = (f.label, rel);
                }
            }
        }
        if best.1.is_finite() {
            best.0
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate, PrefixPolicy};

    /// Class 0 carries an early bump, class 1 an early dip; both flat after.
    fn bump_data(n: usize, len: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n {
                let sign = if c == 0 { 1.0 } else { -1.0 };
                let jitter = (i % 5) as f64 * 0.3;
                data.push(
                    (0..len)
                        .map(|j| {
                            let x = j as f64 - (8.0 + jitter);
                            sign * (-x * x / 8.0).exp()
                                + 0.01 * (((i * 7 + j * 3) % 5) as f64 - 2.0)
                        })
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    fn quick_cfg(method: ThresholdMethod) -> EdscConfig {
        EdscConfig {
            lengths: vec![8, 12],
            stride: 4,
            method,
            min_precision: 0.8,
            max_features_per_class: 8,
        }
    }

    #[test]
    fn che_fits_and_selects_features() {
        let d = bump_data(8, 40);
        let edsc = Edsc::fit(&d, &quick_cfg(ThresholdMethod::Chebyshev { k: 2.0 }));
        assert!(!edsc.features().is_empty());
        for f in edsc.features() {
            assert!(f.threshold > 0.0);
            assert!(f.precision >= 0.8);
            assert!(f.recall > 0.0);
        }
    }

    #[test]
    fn kde_fits_and_selects_features() {
        let d = bump_data(8, 40);
        let edsc = Edsc::fit(&d, &quick_cfg(ThresholdMethod::Kde { precision: 0.9 }));
        assert!(!edsc.features().is_empty());
    }

    #[test]
    fn classifies_accurately_and_early() {
        let train = bump_data(8, 40);
        let test = bump_data(4, 40);
        for method in [
            ThresholdMethod::Chebyshev { k: 2.0 },
            ThresholdMethod::Kde { precision: 0.9 },
        ] {
            let edsc = Edsc::fit(&train, &quick_cfg(method));
            let ev = evaluate(&edsc, &test, PrefixPolicy::Oracle);
            assert!(
                ev.accuracy() >= 0.75,
                "{method:?} accuracy {}",
                ev.accuracy()
            );
            assert!(
                ev.earliness() < 0.9,
                "{method:?} bump is early; earliness {}",
                ev.earliness()
            );
        }
    }

    #[test]
    fn waits_on_featureless_prefix() {
        let train = bump_data(8, 40);
        let edsc = Edsc::fit(&train, &quick_cfg(ThresholdMethod::Chebyshev { k: 2.0 }));
        // A prefix shorter than every feature must wait.
        assert_eq!(edsc.decide(&[0.0; 4]), Decision::Wait);
        // A flat prefix (no bump) should not fire features tuned to bumps.
        assert_eq!(edsc.decide(&[0.0; 20]), Decision::Wait);
    }

    #[test]
    fn higher_chebyshev_k_tightens_thresholds() {
        let d = bump_data(8, 40);
        let loose = Edsc::fit(&d, &quick_cfg(ThresholdMethod::Chebyshev { k: 1.0 }));
        let tight = Edsc::fit(&d, &quick_cfg(ThresholdMethod::Chebyshev { k: 3.0 }));
        let max_thr = |e: &Edsc| {
            e.features()
                .iter()
                .map(|f| f.threshold)
                .fold(f64::MIN, f64::max)
        };
        if !loose.features().is_empty() && !tight.features().is_empty() {
            assert!(max_thr(&tight) <= max_thr(&loose) + 1e-9);
        }
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!(normal_cdf(3.0) > 0.998);
        assert!(normal_cdf(-3.0) < 0.002);
        // Symmetry.
        assert!((normal_cdf(1.2) + normal_cdf(-1.2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn kde_cdf_is_monotone() {
        let sample = [1.0, 2.0, 3.0, 4.0];
        let mut prev = 0.0;
        for i in 0..50 {
            let x = i as f64 / 10.0;
            let c = kde_cdf(&sample, x);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!(kde_cdf(&sample, 10.0) > 0.99);
        assert!(kde_cdf(&[], 0.0) == 0.0);
    }

    #[test]
    fn raw_session_reproduces_decide_exactly() {
        let train = bump_data(8, 40);
        let test = bump_data(3, 40);
        for method in [
            ThresholdMethod::Chebyshev { k: 2.0 },
            ThresholdMethod::Kde { precision: 0.9 },
        ] {
            let edsc = Edsc::fit(&train, &quick_cfg(method));
            for (probe, _) in test.iter() {
                let mut s = edsc.session(crate::SessionNorm::Raw);
                for t in 0..probe.len() {
                    let inc = s.push(probe[t]);
                    let batch = edsc.decide(&probe[..t + 1]);
                    assert_eq!(inc, batch, "{method:?} prefix {}", t + 1);
                    if inc.is_predict() {
                        break; // sessions latch at the first commit
                    }
                }
            }
        }
    }

    #[test]
    fn best_match_and_earliest_match_agree() {
        let pattern = [1.0, 2.0, 1.0];
        let series = [0.0, 0.0, 1.0, 2.0, 1.0, 0.0];
        let d = best_match_dist(&pattern, &series).unwrap();
        assert!(d < 1e-12);
        assert_eq!(earliest_match_end(&pattern, &series, 0.1), Some(5));
        assert_eq!(earliest_match_end(&pattern, &series[..4], 0.1), None);
        assert!(best_match_dist(&pattern, &series[..2]).is_none());
    }
}
