//! Checkpoint ensembles: one probabilistic classifier per prefix length.
//!
//! Several ETSC families (ECDIRE [Mori et al. 2017], the stopping-rule
//! methods [Mori et al. 2018], cost-aware triggering [Tavenard &
//! Malinowski 2016; Achenchabe et al. 2021]) share a chassis: train a
//! separate probabilistic classifier at a ladder of prefix lengths
//! ("checkpoints"), then differ only in *when they trust* one of those
//! classifiers. This module is that chassis.

use etsc_classifiers::centroid::NearestCentroid;
use etsc_classifiers::gaussian::{CovarianceKind, GaussianModel};
use etsc_classifiers::Classifier;
use etsc_core::{ClassLabel, UcrDataset};

/// Per-checkpoint held-out calibration data: for each checkpoint, the
/// `(posterior, actual label)` pairs of every training instance under
/// 2-fold cross-validation.
pub type CvPosteriors = Vec<Vec<(Vec<f64>, ClassLabel)>>;

/// The base classifier family trained at each checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseClassifier {
    /// Nearest centroid with softmax probabilities (cheap, robust).
    Centroid,
    /// Diagonal Gaussian class models (naive Bayes).
    Gaussian,
}

/// One fitted checkpoint classifier.
#[derive(Debug, Clone)]
pub enum CheckpointModel {
    /// Nearest-centroid variant.
    Centroid(NearestCentroid),
    /// Gaussian variant.
    Gaussian(GaussianModel),
}

impl CheckpointModel {
    /// Class probabilities for a prefix.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        match self {
            CheckpointModel::Centroid(c) => c.predict_proba(x),
            CheckpointModel::Gaussian(g) => g.predict_proba(x),
        }
    }

    /// Hard prediction.
    pub fn predict(&self, x: &[f64]) -> ClassLabel {
        etsc_classifiers::argmax(&self.predict_proba(x))
    }
}

/// A ladder of prefix lengths with one classifier per rung.
#[derive(Debug, Clone)]
pub struct CheckpointEnsemble {
    lengths: Vec<usize>,
    models: Vec<CheckpointModel>,
    n_classes: usize,
    series_len: usize,
}

impl CheckpointEnsemble {
    /// Fit one classifier per checkpoint on prefix-truncated training data.
    ///
    /// `n_checkpoints` evenly spaced lengths ending at the full series
    /// length; lengths below `min_len` are dropped.
    pub fn fit(
        train: &UcrDataset,
        base: BaseClassifier,
        n_checkpoints: usize,
        min_len: usize,
    ) -> Self {
        assert!(n_checkpoints >= 1);
        let len = train.series_len();
        let mut lengths: Vec<usize> = (1..=n_checkpoints)
            .map(|s| (s * len).div_ceil(n_checkpoints))
            .filter(|&l| l >= min_len.max(2))
            .collect();
        lengths.dedup();
        assert!(!lengths.is_empty(), "series too short for the checkpoint ladder");

        let models = lengths
            .iter()
            .map(|&l| {
                let prefix = train.prefix(l).expect("length within range");
                match base {
                    BaseClassifier::Centroid => {
                        CheckpointModel::Centroid(NearestCentroid::fit(&prefix))
                    }
                    BaseClassifier::Gaussian => CheckpointModel::Gaussian(GaussianModel::fit(
                        &prefix,
                        CovarianceKind::Diagonal,
                    )),
                }
            })
            .collect();
        Self {
            lengths,
            models,
            n_classes: train.n_classes(),
            series_len: len,
        }
    }

    /// Checkpoint lengths, ascending.
    pub fn lengths(&self) -> &[usize] {
        &self.lengths
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Full training series length.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Index of the latest checkpoint whose length fits in `prefix_len`
    /// (`None` if the prefix is shorter than the first checkpoint).
    pub fn latest_checkpoint(&self, prefix_len: usize) -> Option<usize> {
        match self.lengths.partition_point(|&l| l <= prefix_len) {
            0 => None,
            n => Some(n - 1),
        }
    }

    /// Probabilities from checkpoint `idx` on (the head of) `prefix`.
    pub fn proba_at(&self, idx: usize, prefix: &[f64]) -> Vec<f64> {
        let l = self.lengths[idx].min(prefix.len());
        self.models[idx].predict_proba(&prefix[..l])
    }

    /// Leave-half-out predictions for calibration: fits fold models on
    /// even/odd halves and returns, per checkpoint, the held-out
    /// `(posterior, actual)` pairs across both folds (in a deterministic
    /// order). Used by ECDIRE and the stopping rule to learn thresholds on
    /// honest (non-resubstitution) posteriors.
    pub fn cross_val_posteriors(
        train: &UcrDataset,
        base: BaseClassifier,
        n_checkpoints: usize,
        min_len: usize,
    ) -> Option<CvPosteriors> {
        let n = train.len();
        let even: Vec<usize> = (0..n).step_by(2).collect();
        let odd: Vec<usize> = (1..n).step_by(2).collect();
        if even.is_empty() || odd.is_empty() {
            return None;
        }
        let n_classes = train.n_classes();
        let proto = Self::fit(train, base, n_checkpoints, min_len);
        let mut out: Vec<Vec<(Vec<f64>, ClassLabel)>> =
            vec![Vec::new(); proto.lengths.len()];
        for (fit_idx, eval_idx) in [(&even, &odd), (&odd, &even)] {
            let fit_ds = train.subset(fit_idx).ok()?;
            if fit_ds.n_classes() != n_classes {
                return None;
            }
            let fold = Self::fit(&fit_ds, base, n_checkpoints, min_len);
            if fold.lengths != proto.lengths {
                return None;
            }
            for &i in eval_idx.iter() {
                let s = train.series(i);
                for (ci, _) in fold.lengths.iter().enumerate() {
                    let p = fold.proba_at(ci, s);
                    out[ci].push((p, train.label(i)));
                }
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, len: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n {
                data.push(
                    (0..len)
                        .map(|j| c as f64 * 2.0 + 0.05 * (((i + j) % 7) as f64 - 3.0))
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    #[test]
    fn ladder_is_ascending_and_ends_at_full_length() {
        let d = toy(6, 40);
        let e = CheckpointEnsemble::fit(&d, BaseClassifier::Centroid, 8, 4);
        let lens = e.lengths();
        assert!(lens.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*lens.last().unwrap(), 40);
        assert!(lens[0] >= 4);
    }

    #[test]
    fn latest_checkpoint_indexing() {
        let d = toy(6, 40);
        let e = CheckpointEnsemble::fit(&d, BaseClassifier::Centroid, 4, 4);
        assert_eq!(e.latest_checkpoint(3), None);
        assert_eq!(e.latest_checkpoint(40), Some(e.lengths().len() - 1));
        let first = e.lengths()[0];
        assert_eq!(e.latest_checkpoint(first), Some(0));
    }

    #[test]
    fn checkpoint_models_classify_prefixes() {
        let d = toy(8, 40);
        for base in [BaseClassifier::Centroid, BaseClassifier::Gaussian] {
            let e = CheckpointEnsemble::fit(&d, base, 6, 4);
            let probe = d.series(0);
            for ci in 0..e.lengths().len() {
                let p = e.proba_at(ci, probe);
                assert_eq!(p.len(), 2);
                assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
                assert!(p[0] > p[1], "class 0 probe at checkpoint {ci}");
            }
        }
    }

    #[test]
    fn cross_val_posteriors_cover_all_instances() {
        let d = toy(8, 40);
        let cv =
            CheckpointEnsemble::cross_val_posteriors(&d, BaseClassifier::Centroid, 4, 4).unwrap();
        for per_ckpt in &cv {
            assert_eq!(per_ckpt.len(), d.len());
        }
    }

    #[test]
    fn cross_val_returns_none_for_degenerate_folds() {
        // One exemplar per class: a fold misses a class.
        let d = UcrDataset::new(vec![vec![0.0; 8], vec![1.0; 8]], vec![0, 1]).unwrap();
        assert!(
            CheckpointEnsemble::cross_val_posteriors(&d, BaseClassifier::Centroid, 2, 2).is_none()
        );
    }
}
