//! Checkpoint ensembles: one probabilistic classifier per prefix length.
//!
//! Several ETSC families (ECDIRE [Mori et al. 2017], the stopping-rule
//! methods [Mori et al. 2018], cost-aware triggering [Tavenard &
//! Malinowski 2016; Achenchabe et al. 2021]) share a chassis: train a
//! separate probabilistic classifier at a ladder of prefix lengths
//! ("checkpoints"), then differ only in *when they trust* one of those
//! classifiers. This module is that chassis.

use etsc_classifiers::centroid::NearestCentroid;
use etsc_classifiers::gaussian::{CovarianceKind, GaussianModel};
use etsc_classifiers::Classifier;
use etsc_core::znorm::znormalize_in_place;
use etsc_core::{ClassLabel, UcrDataset};
use etsc_persist::{Decoder, Encoder, Persist, PersistError};

use crate::SessionNorm;

/// Per-checkpoint held-out calibration data: for each checkpoint, the
/// `(posterior, actual label)` pairs of every training instance under
/// 2-fold cross-validation.
pub type CvPosteriors = Vec<Vec<(Vec<f64>, ClassLabel)>>;

/// The base classifier family trained at each checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseClassifier {
    /// Nearest centroid with softmax probabilities (cheap, robust).
    Centroid,
    /// Diagonal Gaussian class models (naive Bayes).
    Gaussian,
}

/// One fitted checkpoint classifier.
#[derive(Debug, Clone)]
pub enum CheckpointModel {
    /// Nearest-centroid variant.
    Centroid(NearestCentroid),
    /// Gaussian variant.
    Gaussian(GaussianModel),
}

impl CheckpointModel {
    /// Class probabilities for a prefix.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        match self {
            CheckpointModel::Centroid(c) => c.predict_proba(x),
            CheckpointModel::Gaussian(g) => g.predict_proba(x),
        }
    }

    /// Class probabilities written into `out` (allocation-free twin of
    /// [`predict_proba`](Self::predict_proba)).
    pub fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        match self {
            CheckpointModel::Centroid(c) => c.predict_proba_into(x, out),
            CheckpointModel::Gaussian(g) => g.predict_proba_into(x, out),
        }
    }

    /// Hard prediction.
    pub fn predict(&self, x: &[f64]) -> ClassLabel {
        etsc_classifiers::argmax(&self.predict_proba(x))
    }
}

/// A ladder of prefix lengths with one classifier per rung.
#[derive(Debug, Clone)]
pub struct CheckpointEnsemble {
    lengths: Vec<usize>,
    models: Vec<CheckpointModel>,
    n_classes: usize,
    series_len: usize,
}

impl CheckpointEnsemble {
    /// Fit one classifier per checkpoint on prefix-truncated training data.
    ///
    /// `n_checkpoints` evenly spaced lengths ending at the full series
    /// length; lengths below `min_len` are dropped.
    pub fn fit(
        train: &UcrDataset,
        base: BaseClassifier,
        n_checkpoints: usize,
        min_len: usize,
    ) -> Self {
        assert!(n_checkpoints >= 1);
        let len = train.series_len();
        let mut lengths: Vec<usize> = (1..=n_checkpoints)
            .map(|s| (s * len).div_ceil(n_checkpoints))
            .filter(|&l| l >= min_len.max(2))
            .collect();
        lengths.dedup();
        assert!(
            !lengths.is_empty(),
            "series too short for the checkpoint ladder"
        );

        let models = lengths
            .iter()
            .map(|&l| {
                let prefix = train.prefix(l).expect("length within range");
                match base {
                    BaseClassifier::Centroid => {
                        CheckpointModel::Centroid(NearestCentroid::fit(&prefix))
                    }
                    BaseClassifier::Gaussian => CheckpointModel::Gaussian(GaussianModel::fit(
                        &prefix,
                        CovarianceKind::Diagonal,
                    )),
                }
            })
            .collect();
        Self {
            lengths,
            models,
            n_classes: train.n_classes(),
            series_len: len,
        }
    }

    /// Checkpoint lengths, ascending.
    pub fn lengths(&self) -> &[usize] {
        &self.lengths
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Full training series length.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Index of the latest checkpoint whose length fits in `prefix_len`
    /// (`None` if the prefix is shorter than the first checkpoint).
    pub fn latest_checkpoint(&self, prefix_len: usize) -> Option<usize> {
        match self.lengths.partition_point(|&l| l <= prefix_len) {
            0 => None,
            n => Some(n - 1),
        }
    }

    /// Probabilities from checkpoint `idx` on (the head of) `prefix`.
    pub fn proba_at(&self, idx: usize, prefix: &[f64]) -> Vec<f64> {
        let l = self.lengths[idx].min(prefix.len());
        self.models[idx].predict_proba(&prefix[..l])
    }

    /// Open an incremental cursor over this ladder (see
    /// [`CheckpointCursor`]).
    pub fn cursor(&self, norm: SessionNorm) -> CheckpointCursor<'_> {
        CheckpointCursor {
            ensemble: self,
            norm,
            buf: Vec::with_capacity(self.series_len),
            scratch: Vec::new(),
            proba: Vec::new(),
            completed: None,
            len: 0,
        }
    }

    /// Leave-half-out predictions for calibration: fits fold models on
    /// even/odd halves and returns, per checkpoint, the held-out
    /// `(posterior, actual)` pairs across both folds (in a deterministic
    /// order). Used by ECDIRE and the stopping rule to learn thresholds on
    /// honest (non-resubstitution) posteriors.
    pub fn cross_val_posteriors(
        train: &UcrDataset,
        base: BaseClassifier,
        n_checkpoints: usize,
        min_len: usize,
    ) -> Option<CvPosteriors> {
        let n = train.len();
        let even: Vec<usize> = (0..n).step_by(2).collect();
        let odd: Vec<usize> = (1..n).step_by(2).collect();
        if even.is_empty() || odd.is_empty() {
            return None;
        }
        let n_classes = train.n_classes();
        let proto = Self::fit(train, base, n_checkpoints, min_len);
        let mut out: Vec<Vec<(Vec<f64>, ClassLabel)>> = vec![Vec::new(); proto.lengths.len()];
        for (fit_idx, eval_idx) in [(&even, &odd), (&odd, &even)] {
            let fit_ds = train.subset(fit_idx).ok()?;
            if fit_ds.n_classes() != n_classes {
                return None;
            }
            let fold = Self::fit(&fit_ds, base, n_checkpoints, min_len);
            if fold.lengths != proto.lengths {
                return None;
            }
            for &i in eval_idx.iter() {
                let s = train.series(i);
                for (ci, _) in fold.lengths.iter().enumerate() {
                    let p = fold.proba_at(ci, s);
                    out[ci].push((p, train.label(i)));
                }
            }
        }
        Some(out)
    }
}

impl Persist for CheckpointEnsemble {
    const KIND: &'static str = "CheckpointEnsemble";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.put_usize(self.n_classes);
        enc.put_usize(self.series_len);
        enc.put_usize_slice(&self.lengths);
        for m in &self.models {
            match m {
                CheckpointModel::Centroid(c) => {
                    enc.put_u8(0);
                    enc.section(|e| c.encode_body(e));
                }
                CheckpointModel::Gaussian(g) => {
                    enc.put_u8(1);
                    enc.section(|e| g.encode_body(e));
                }
            }
        }
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let n_classes = dec.get_usize("ensemble class count")?;
        let series_len = dec.get_usize("ensemble series_len")?;
        let lengths = dec.get_usize_vec("ensemble lengths")?;
        if lengths.is_empty()
            || lengths.windows(2).any(|w| w[0] >= w[1])
            || lengths.iter().any(|&l| l == 0 || l > series_len)
        {
            return Err(PersistError::Corrupt(
                "ensemble: checkpoint ladder must be ascending within 1..=series_len".into(),
            ));
        }
        let mut models = Vec::with_capacity(lengths.len());
        for i in 0..lengths.len() {
            let tag = dec.get_u8("ensemble model tag")?;
            let mut sub = dec.section("ensemble model")?;
            let model = match tag {
                0 => CheckpointModel::Centroid(NearestCentroid::decode_body(&mut sub)?),
                1 => CheckpointModel::Gaussian(GaussianModel::decode_body(&mut sub)?),
                t => {
                    return Err(PersistError::Corrupt(format!(
                        "ensemble: checkpoint model tag {t}"
                    )))
                }
            };
            sub.finish()?;
            // Cross-validate the header's class count against the embedded
            // model: a mismatch would otherwise surface later as a buffer
            // assertion mid-stream, not a decode error.
            let model_classes = match &model {
                CheckpointModel::Centroid(c) => c.n_classes(),
                CheckpointModel::Gaussian(g) => g.n_classes(),
            };
            if model_classes != n_classes {
                return Err(PersistError::Corrupt(format!(
                    "ensemble checkpoint {i}: model has {model_classes} classes, header says {n_classes}"
                )));
            }
            models.push(model);
        }
        Ok(Self {
            lengths,
            models,
            n_classes,
            series_len,
        })
    }
}

/// An incremental walk up a [`CheckpointEnsemble`]'s ladder.
///
/// The decision of every checkpoint-style algorithm (ECDIRE, the stopping
/// rule, the cost-aware trigger) only changes when the prefix reaches the
/// next checkpoint length; between boundaries every push is O(1). The
/// cursor buffers raw samples until the next boundary, evaluates that
/// checkpoint's classifier exactly once, and exposes the result until the
/// next boundary — the shared chassis for those algorithms' sessions.
///
/// Normalization: under [`SessionNorm::Raw`] the checkpoint model sees the
/// raw window (matching the stateless `decide` paths). Under
/// [`SessionNorm::PerPrefix`] the window is z-normalized by its own
/// statistics before classification — the honest deployment convention,
/// applied to exactly the samples the checkpoint consumes.
#[derive(Debug, Clone)]
pub struct CheckpointCursor<'a> {
    ensemble: &'a CheckpointEnsemble,
    norm: SessionNorm,
    /// Raw samples, up to the final checkpoint length.
    buf: Vec<f64>,
    /// Normalization scratch (PerPrefix only).
    scratch: Vec<f64>,
    /// Posterior of the most recently completed checkpoint.
    proba: Vec<f64>,
    /// Index of the most recently completed checkpoint.
    completed: Option<usize>,
    /// Samples consumed (uncapped).
    len: usize,
}

impl CheckpointCursor<'_> {
    /// Consume one sample. Returns `Some(checkpoint_index)` exactly when
    /// this sample completes a checkpoint (whose posterior is then
    /// available from [`latest`](Self::latest)).
    pub fn push(&mut self, x: f64) -> Option<usize> {
        let lengths = self.ensemble.lengths();
        let last_len = *lengths.last().expect("non-empty ladder");
        if self.buf.len() < last_len {
            self.buf.push(x);
        }
        self.len += 1;
        let next = self.completed.map_or(0, |ci| ci + 1);
        if next >= lengths.len() || self.buf.len() < lengths[next] {
            return None;
        }
        debug_assert_eq!(self.buf.len(), lengths[next], "boundaries are exact");
        if self.proba.is_empty() {
            self.proba = vec![0.0; self.ensemble.n_classes()];
        }
        match self.norm {
            SessionNorm::Raw => {
                self.ensemble.models[next].predict_proba_into(&self.buf, &mut self.proba);
            }
            SessionNorm::PerPrefix => {
                self.scratch.clear();
                self.scratch.extend_from_slice(&self.buf);
                znormalize_in_place(&mut self.scratch);
                self.ensemble.models[next].predict_proba_into(&self.scratch, &mut self.proba);
            }
        }
        self.completed = Some(next);
        Some(next)
    }

    /// The most recently completed checkpoint and its posterior.
    pub fn latest(&self) -> Option<(usize, &[f64])> {
        self.completed.map(|ci| (ci, self.proba.as_slice()))
    }

    /// True once the final checkpoint has been evaluated.
    pub fn exhausted(&self) -> bool {
        self.completed == Some(self.ensemble.lengths().len() - 1)
    }

    /// Samples consumed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// The normalization this cursor applies to checkpoint windows.
    pub fn norm(&self) -> SessionNorm {
        self.norm
    }

    /// True before the first sample.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Forget everything, keeping allocations.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.scratch.clear();
        self.completed = None;
        self.len = 0;
    }

    /// Append the cursor's resumable state (buffered window, completed
    /// checkpoint, its posterior, sample count) to `enc`.
    pub fn save_state(&self, enc: &mut Encoder) {
        enc.put_f64_slice(&self.buf);
        enc.put_f64_slice(&self.proba);
        enc.put_opt_usize(self.completed);
        enc.put_usize(self.len);
    }

    /// Rehydrate a fresh cursor from [`CheckpointCursor::save_state`]
    /// output, validating shape against the owning ensemble.
    pub fn load_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), PersistError> {
        let buf = dec.get_f64_vec("cursor buf")?;
        let proba = dec.get_f64_vec("cursor proba")?;
        let completed = dec.get_opt_usize("cursor completed")?;
        let len = dec.get_usize("cursor len")?;
        let last_len = *self.ensemble.lengths().last().expect("non-empty ladder");
        if buf.len() > last_len || buf.len() > len {
            return Err(PersistError::Corrupt(format!(
                "cursor: buffer of {} for {len} pushes (ladder top {last_len})",
                buf.len()
            )));
        }
        if !proba.is_empty() && proba.len() != self.ensemble.n_classes() {
            return Err(PersistError::Corrupt(format!(
                "cursor: posterior of {} for {} classes",
                proba.len(),
                self.ensemble.n_classes()
            )));
        }
        match completed {
            Some(ci) if ci >= self.ensemble.lengths().len() => {
                return Err(PersistError::Corrupt(format!(
                    "cursor: completed checkpoint {ci} of {}",
                    self.ensemble.lengths().len()
                )));
            }
            Some(_) if proba.is_empty() => {
                return Err(PersistError::Corrupt(
                    "cursor: completed checkpoint without a posterior".into(),
                ));
            }
            _ => {}
        }
        self.buf = buf;
        self.proba = proba;
        self.completed = completed;
        self.len = len;
        self.scratch.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, len: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n {
                data.push(
                    (0..len)
                        .map(|j| c as f64 * 2.0 + 0.05 * (((i + j) % 7) as f64 - 3.0))
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    #[test]
    fn ladder_is_ascending_and_ends_at_full_length() {
        let d = toy(6, 40);
        let e = CheckpointEnsemble::fit(&d, BaseClassifier::Centroid, 8, 4);
        let lens = e.lengths();
        assert!(lens.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*lens.last().unwrap(), 40);
        assert!(lens[0] >= 4);
    }

    #[test]
    fn latest_checkpoint_indexing() {
        let d = toy(6, 40);
        let e = CheckpointEnsemble::fit(&d, BaseClassifier::Centroid, 4, 4);
        assert_eq!(e.latest_checkpoint(3), None);
        assert_eq!(e.latest_checkpoint(40), Some(e.lengths().len() - 1));
        let first = e.lengths()[0];
        assert_eq!(e.latest_checkpoint(first), Some(0));
    }

    #[test]
    fn checkpoint_models_classify_prefixes() {
        let d = toy(8, 40);
        for base in [BaseClassifier::Centroid, BaseClassifier::Gaussian] {
            let e = CheckpointEnsemble::fit(&d, base, 6, 4);
            let probe = d.series(0);
            for ci in 0..e.lengths().len() {
                let p = e.proba_at(ci, probe);
                assert_eq!(p.len(), 2);
                assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
                assert!(p[0] > p[1], "class 0 probe at checkpoint {ci}");
            }
        }
    }

    #[test]
    fn cross_val_posteriors_cover_all_instances() {
        let d = toy(8, 40);
        let cv =
            CheckpointEnsemble::cross_val_posteriors(&d, BaseClassifier::Centroid, 4, 4).unwrap();
        for per_ckpt in &cv {
            assert_eq!(per_ckpt.len(), d.len());
        }
    }

    #[test]
    fn cursor_completes_each_checkpoint_exactly_once_with_batch_posteriors() {
        let d = toy(6, 40);
        let e = CheckpointEnsemble::fit(&d, BaseClassifier::Centroid, 4, 4);
        let probe = d.series(0);
        let mut cursor = e.cursor(SessionNorm::Raw);
        assert!(cursor.is_empty());
        let mut seen = Vec::new();
        for &x in probe {
            if let Some(ci) = cursor.push(x) {
                seen.push(ci);
                let (latest, proba) = cursor.latest().unwrap();
                assert_eq!(latest, ci);
                assert_eq!(proba.to_vec(), e.proba_at(ci, probe), "checkpoint {ci}");
            }
        }
        assert_eq!(seen, (0..e.lengths().len()).collect::<Vec<_>>());
        assert!(cursor.exhausted());
        assert_eq!(cursor.len(), probe.len());
        cursor.reset();
        assert!(cursor.latest().is_none());
    }

    #[test]
    fn per_prefix_cursor_normalizes_each_window() {
        let d = toy(6, 40);
        let e = CheckpointEnsemble::fit(&d, BaseClassifier::Centroid, 4, 4);
        let probe = d.series(0);
        let mut cursor = e.cursor(SessionNorm::PerPrefix);
        for &x in probe {
            if let Some(ci) = cursor.push(x) {
                let l = e.lengths()[ci];
                let window = etsc_core::znorm::znormalize(&probe[..l]);
                let (_, proba) = cursor.latest().unwrap();
                assert_eq!(proba.to_vec(), e.models[ci].predict_proba(&window));
            }
        }
    }

    #[test]
    fn cross_val_returns_none_for_degenerate_folds() {
        // One exemplar per class: a fold misses a class.
        let d = UcrDataset::new(vec![vec![0.0; 8], vec![1.0; 8]], vec![0, 1]).unwrap();
        assert!(
            CheckpointEnsemble::cross_val_posteriors(&d, BaseClassifier::Centroid, 2, 2).is_none()
        );
    }
}
