//! ECTS — Early Classification on Time Series (Xing, Pei & Yu, KAIS 2012) —
//! and its relaxed variant.
//!
//! ECTS asks: for each training exemplar, what is the smallest prefix length
//! at which its 1NN neighborhood structure already looks exactly like it
//! does at full length? That length is the exemplar's **Minimum Prediction
//! Length (MPL)**, computed from **reverse nearest neighbor (RNN)**
//! stability. At classification time, a prefix is matched to its 1NN among
//! training prefixes; if the neighbor's MPL has been reached, its label is
//! emitted — otherwise the classifier waits.
//!
//! * **Strict ECTS**: `MPL(e)` = smallest `l` such that for every
//!   `l' ∈ [l, L]`, `RNN_l'(e) = RNN_L(e)` (set equality). Exemplars with an
//!   empty full-length RNN never support early prediction (`MPL = L`).
//! * **RelaxedECTS**: set equality is relaxed to *class purity* — every
//!   member of `RNN_l'(e)` must share `e`'s label. Earlier MPLs, same
//!   worst-case safety argument.
//! * **Minimum support**: an exemplar's MPL is only trusted if its
//!   full-length RNN support (`|RNN_L(e)|` relative to its class size)
//!   reaches `min_support`; weaker exemplars fall back to their
//!   single-linkage same-class cluster, whose MPL is the most conservative
//!   of its members. Table 1 of the paper uses `min_support = 0`, which
//!   trusts every exemplar directly.

use etsc_core::distance::squared_euclidean_early_abandon;
use etsc_core::parallel;
use etsc_core::stats::RunningStats;
use etsc_core::znorm::CONSTANT_EPS;
use etsc_core::{ClassLabel, UcrDataset};
use etsc_persist::{Decoder, Encoder, Persist, PersistError};

use crate::{
    expect_norm, expect_session_tag, get_decision, put_decision, put_norm, session_tags, Decision,
    DecisionSession, EarlyClassifier, SessionNorm,
};

/// Minimum total fit work (`n² × L` incremental updates) before the ECTS
/// fit fans out to worker threads. The parallel sweep spawns once per fit
/// but duplicates the symmetric half of the distance matrix, so it must
/// clear both the ~10µs spawn cost and the 2× arithmetic before it pays.
const PAR_MIN_FIT_WORK: usize = 1 << 20;

/// ECTS hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct EctsConfig {
    /// Minimum RNN support in `[0, 1]`; 0 trusts per-exemplar MPLs
    /// (the Table 1 setting).
    pub min_support: f64,
    /// Use the relaxed (class-purity) MPL rule.
    pub relaxed: bool,
    /// Smallest prefix length considered at prediction time.
    pub min_prefix: usize,
}

impl Default for EctsConfig {
    fn default() -> Self {
        Self {
            min_support: 0.0,
            relaxed: false,
            min_prefix: 3,
        }
    }
}

/// A fitted ECTS model.
#[derive(Debug, Clone)]
pub struct Ects {
    train: UcrDataset,
    /// Per-exemplar minimum prediction length.
    mpl: Vec<usize>,
    min_prefix: usize,
    /// `cum_y[i][l]` = Σ of exemplar `i`'s first `l` values; `cum_y2` the
    /// same for squares. Precomputed so per-prefix-normalized sessions can
    /// evaluate z-normalized 1NN distances from running sums.
    cum_y: Vec<Vec<f64>>,
    cum_y2: Vec<Vec<f64>>,
}

impl Ects {
    /// Fit on `train` (conventionally z-normalized, as in the UCR archive).
    pub fn fit(train: &UcrDataset, cfg: &EctsConfig) -> Self {
        let n = train.len();
        let len = train.series_len();
        assert!(n >= 2, "ECTS needs at least two training exemplars");

        // 1NN index of every exemplar at every prefix length, by incremental
        // squared-distance accumulation: O(n^2 L) total.
        //
        // The serial path keeps one accumulator per unordered pair (the
        // symmetric half-matrix, n²/2 work). The parallel path cannot spawn
        // per prefix length — the length loop is a chain of barriers, and a
        // scoped spawn costs ~10µs against microseconds of per-length work —
        // so it slices *rows* across workers instead: each worker owns a
        // contiguous block of exemplars and maintains its rows' distances to
        // every other exemplar across the whole length sweep. That doubles
        // the arithmetic (both (i,j) and (j,i) are computed) but needs ONE
        // spawn round per fit and no synchronization, so it engages only
        // when total work clears `PAR_MIN_FIT_WORK`. Per-(i,j) additions
        // happen in the same order on both paths, so results are
        // bit-identical at any thread count.
        let rows: Vec<&[f64]> = (0..n).map(|i| train.series(i)).collect();
        let threads = parallel::gate(n * n * len, PAR_MIN_FIT_WORK);
        // `nn_per_len[l][i]` plus, for the support filter below, the
        // full-length distance of every pair.
        let (nn_per_len, d2_full) = if threads <= 1 {
            Self::nn_sweep_serial(&rows, n, len)
        } else {
            Self::nn_sweep_rows(&rows, n, len, threads)
        };
        let d2_of = |a: usize, b: usize| -> f64 { d2_full[a * n + b] };

        let rnn_of = |l: usize, i: usize| -> Vec<usize> {
            nn_per_len[l]
                .iter()
                .enumerate()
                .filter(|&(_, &nn)| nn as usize == i)
                .map(|(j, _)| j)
                .collect()
        };

        // Per-exemplar MPL by scanning down from full length. Each
        // exemplar's scan is independent (read-only over `nn_per_len`), so
        // the sweep parallelizes cleanly in one spawn round.
        let full = len - 1;
        let t = parallel::gate(n * n * len, PAR_MIN_FIT_WORK);
        let mut mpl: Vec<usize> = parallel::map_range_with(t, n, |i| {
            let rnn_full = rnn_of(full, i);
            if rnn_full.is_empty() {
                return len; // nobody points at e: no early support
            }
            let stable_at = |l: usize| -> bool {
                let r = rnn_of(l, i);
                if cfg.relaxed {
                    // Relaxed rule: the RNN set need not be *identical* to
                    // the full-length one, only contained in it — members may
                    // drop out early, but no stranger may point at e. A
                    // strict weakening of set equality, and still demanding
                    // in regions where neighbors churn randomly.
                    r.iter().all(|j| rnn_full.contains(j))
                } else {
                    r == rnn_full
                }
            };
            let mut first_stable = len; // 1-based length
            for l in (0..len).rev() {
                if stable_at(l) {
                    first_stable = l + 1;
                } else {
                    break;
                }
            }
            first_stable
        });

        // Support filter + single-linkage same-class cluster fallback.
        if cfg.min_support > 0.0 {
            let counts = train.class_counts();
            let supported: Vec<bool> = (0..n)
                .map(|i| {
                    let class_size = counts[train.label(i)].max(2) - 1;
                    let support = rnn_of(full, i).len() as f64 / class_size as f64;
                    support >= cfg.min_support
                })
                .collect();
            // Unsupported exemplars inherit the most conservative MPL of
            // their same-class cluster grown until it reaches support.
            let mut adjusted = mpl.clone();
            for i in 0..n {
                if supported[i] {
                    continue;
                }
                // Grow a cluster around i by repeatedly adding the nearest
                // same-class exemplar (full-length single linkage).
                let mut cluster = vec![i];
                let class_size = counts[train.label(i)].max(2) - 1;
                loop {
                    let mut rnn_union: Vec<usize> = cluster
                        .iter()
                        .flat_map(|&m| rnn_of(full, m))
                        .filter(|j| !cluster.contains(j))
                        .collect();
                    rnn_union.sort_unstable();
                    rnn_union.dedup();
                    let support = rnn_union.len() as f64 / class_size as f64;
                    if support >= cfg.min_support || cluster.len() == counts[train.label(i)] {
                        break;
                    }
                    // Nearest same-class exemplar not yet in the cluster.
                    let next = (0..n)
                        .filter(|&j| train.label(j) == train.label(i) && !cluster.contains(&j))
                        .min_by(|&a, &b| {
                            let da = cluster
                                .iter()
                                .map(|&m| d2_of(m, a))
                                .fold(f64::MAX, f64::min);
                            let db = cluster
                                .iter()
                                .map(|&m| d2_of(m, b))
                                .fold(f64::MAX, f64::min);
                            // total_cmp: distances are non-NaN for validated
                            // data, but a degenerate (restored) training set
                            // must not abort the fit on a poisoned compare.
                            da.total_cmp(&db)
                        });
                    match next {
                        Some(j) => cluster.push(j),
                        None => break,
                    }
                }
                adjusted[i] = cluster.iter().map(|&m| mpl[m]).max().unwrap_or(len);
            }
            mpl = adjusted;
        }

        let (cum_y, cum_y2) = cumulative_sums(train);
        Self {
            train: train.clone(),
            mpl,
            min_prefix: cfg.min_prefix.max(1),
            cum_y,
            cum_y2,
        }
    }

    /// The fitted minimum prediction lengths, indexed like the training set.
    pub fn mpls(&self) -> &[usize] {
        &self.mpl
    }

    /// Serial prefix-NN sweep: one accumulator per unordered pair (the
    /// symmetric half-matrix). Returns `nn_per_len[l][i]` and the flattened
    /// full-length distance matrix `d2[i·n + j]`.
    fn nn_sweep_serial(rows: &[&[f64]], n: usize, len: usize) -> (Vec<Vec<u32>>, Vec<f64>) {
        let n_pairs = n * (n - 1) / 2;
        // Index of unordered pair (i, j), i < j, in lexicographic order.
        let pair_idx = |i: usize, j: usize| -> usize { i * (2 * n - i - 1) / 2 + (j - i - 1) };
        let mut d2p = vec![0.0f64; n_pairs];
        let mut nn_per_len: Vec<Vec<u32>> = Vec::with_capacity(len);
        for l in 0..len {
            let mut p = 0usize;
            for i in 0..n {
                let xi = rows[i][l];
                for j in (i + 1)..n {
                    let d = xi - rows[j][l];
                    d2p[p] += d * d;
                    p += 1;
                }
            }
            let nn: Vec<u32> = (0..n)
                .map(|i| {
                    let mut best = usize::MAX;
                    let mut best_d = f64::INFINITY;
                    for j in 0..n {
                        if j != i {
                            let d = d2p[pair_idx(i.min(j), i.max(j))];
                            if d < best_d {
                                best_d = d;
                                best = j;
                            }
                        }
                    }
                    best as u32
                })
                .collect();
            nn_per_len.push(nn);
        }
        let mut d2_full = vec![0.0f64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = d2p[pair_idx(i, j)];
                d2_full[i * n + j] = d;
                d2_full[j * n + i] = d;
            }
        }
        (nn_per_len, d2_full)
    }

    /// Parallel prefix-NN sweep: rows sliced across workers. Each worker
    /// owns a contiguous block of exemplars and maintains its rows'
    /// distances to *every* exemplar across the whole length sweep — the
    /// symmetric half is computed twice, but the fit needs exactly one
    /// spawn round and no per-length barrier. `(a−b)²` and `(b−a)²` are
    /// bit-equal in IEEE 754 and the 1NN scan order is unchanged, so the
    /// result is identical to [`Self::nn_sweep_serial`].
    fn nn_sweep_rows(
        rows: &[&[f64]],
        n: usize,
        len: usize,
        threads: usize,
    ) -> (Vec<Vec<u32>>, Vec<f64>) {
        let ranges = parallel::chunk_ranges(n, threads);
        let results = parallel::map_with(threads, &ranges, |r| {
            let rn = r.len();
            let mut d2 = vec![0.0f64; rn * n];
            let mut nn_rows: Vec<Vec<u32>> = Vec::with_capacity(len);
            for l in 0..len {
                for (li, i) in r.clone().enumerate() {
                    let xi = rows[i][l];
                    let row = &mut d2[li * n..(li + 1) * n];
                    for (j, acc) in row.iter_mut().enumerate() {
                        let d = xi - rows[j][l];
                        *acc += d * d;
                    }
                }
                let nn: Vec<u32> = r
                    .clone()
                    .enumerate()
                    .map(|(li, i)| {
                        let row = &d2[li * n..(li + 1) * n];
                        let mut best = usize::MAX;
                        let mut best_d = f64::INFINITY;
                        for (j, &d) in row.iter().enumerate() {
                            if j != i && d < best_d {
                                best_d = d;
                                best = j;
                            }
                        }
                        best as u32
                    })
                    .collect();
                nn_rows.push(nn);
            }
            (d2, nn_rows)
        });
        let mut nn_per_len: Vec<Vec<u32>> = (0..len).map(|_| Vec::with_capacity(n)).collect();
        let mut d2_full = vec![0.0f64; n * n];
        for (range, (d2, nn_rows)) in ranges.iter().zip(results) {
            for (l, nn) in nn_rows.into_iter().enumerate() {
                nn_per_len[l].extend(nn);
            }
            let rn = range.len();
            d2_full[range.start * n..range.start * n + rn * n].copy_from_slice(&d2);
        }
        (nn_per_len, d2_full)
    }

    /// 1NN among training prefixes of the query's length.
    fn nearest_train(&self, prefix: &[f64]) -> (usize, f64) {
        let l = prefix.len().min(self.train.series_len());
        let mut best = (0usize, f64::INFINITY);
        for i in 0..self.train.len() {
            if let Some(d) =
                squared_euclidean_early_abandon(&prefix[..l], &self.train.series(i)[..l], best.1)
            {
                if d < best.1 {
                    best = (i, d);
                }
            }
        }
        best
    }
}

impl EarlyClassifier for Ects {
    fn n_classes(&self) -> usize {
        self.train.n_classes()
    }

    fn series_len(&self) -> usize {
        self.train.series_len()
    }

    fn min_prefix(&self) -> usize {
        self.min_prefix
    }

    fn decide(&self, prefix: &[f64]) -> Decision {
        let l = prefix.len().min(self.series_len());
        if l < self.min_prefix {
            return Decision::Wait;
        }
        let (nn, d) = self.nearest_train(&prefix[..l]);
        if self.mpl[nn] <= l {
            Decision::Predict {
                label: self.train.label(nn),
                confidence: 1.0 / (1.0 + d.sqrt()),
            }
        } else {
            Decision::Wait
        }
    }

    fn session(&self, norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
        Box::new(EctsSession {
            model: self,
            norm,
            d2: vec![0.0; self.train.len()],
            dot: match norm {
                SessionNorm::Raw => Vec::new(),
                SessionNorm::PerPrefix => vec![0.0; self.train.len()],
            },
            stats: RunningStats::new(),
            len: 0,
            decision: Decision::Wait,
        })
    }

    fn predict_full(&self, series: &[f64]) -> ClassLabel {
        let (nn, _) = self.nearest_train(series);
        self.train.label(nn)
    }

    fn resume_session(
        &self,
        norm: SessionNorm,
        dec: &mut Decoder<'_>,
    ) -> Result<Box<dyn DecisionSession + '_>, PersistError> {
        expect_session_tag(dec, session_tags::ECTS)?;
        expect_norm(dec, norm)?;
        let d2 = dec.get_f64_vec("ects d2")?;
        let dot = dec.get_f64_vec("ects dot")?;
        let n = self.train.len();
        let expect_dot = match norm {
            SessionNorm::Raw => 0,
            SessionNorm::PerPrefix => n,
        };
        if d2.len() != n || dot.len() != expect_dot {
            return Err(PersistError::Corrupt(format!(
                "ects session: {} distances / {} dots for {n} exemplars",
                d2.len(),
                dot.len()
            )));
        }
        let count = dec.get_u64("ects stats count")?;
        let mean = dec.get_f64("ects stats mean")?;
        let m2 = dec.get_f64("ects stats m2")?;
        let len = dec.get_usize("ects len")?;
        let decision = get_decision(dec, self.n_classes())?;
        Ok(Box::new(EctsSession {
            model: self,
            norm,
            d2,
            dot,
            stats: RunningStats::from_state(count, mean, m2),
            len,
            decision,
        }))
    }
}

impl Persist for Ects {
    const KIND: &'static str = "Ects";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.section(|e| self.train.encode_body(e));
        enc.put_usize_slice(&self.mpl);
        enc.put_usize(self.min_prefix);
    }

    /// The stored exemplars and fitted MPLs travel; the per-exemplar
    /// cumulative sums are recomputed at decode by the same deterministic
    /// code fit time ran — bit-identical, and half the bytes.
    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let mut sub = dec.section("ects train")?;
        let train = UcrDataset::decode_body(&mut sub)?;
        sub.finish()?;
        let mpl = dec.get_usize_vec("ects mpl")?;
        if mpl.len() != train.len() {
            return Err(PersistError::Corrupt(format!(
                "ects: {} MPLs for {} exemplars",
                mpl.len(),
                train.len()
            )));
        }
        if mpl.iter().any(|&m| m == 0 || m > train.series_len()) {
            return Err(PersistError::Corrupt(
                "ects: MPL outside 1..=series_len".into(),
            ));
        }
        let min_prefix = dec.get_usize("ects min_prefix")?.max(1);
        let (cum_y, cum_y2) = cumulative_sums(&train);
        Ok(Self {
            train,
            mpl,
            min_prefix,
            cum_y,
            cum_y2,
        })
    }
}

/// Per-exemplar cumulative sums of values and squares (lengths `0..=L`).
fn cumulative_sums(train: &UcrDataset) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mut cum_y = Vec::with_capacity(train.len());
    let mut cum_y2 = Vec::with_capacity(train.len());
    for i in 0..train.len() {
        let (y, y2) = etsc_core::stats::prefix_value_and_square_sums(train.series(i));
        cum_y.push(y);
        cum_y2.push(y2);
    }
    (cum_y, cum_y2)
}

/// Incremental ECTS session.
///
/// Maintains the running squared Euclidean distance from the growing prefix
/// to every training exemplar — one add per exemplar per sample — so a push
/// costs O(n_train) regardless of prefix length, where stateless
/// [`Ects::decide`] costs O(n_train × prefix).
///
/// * [`SessionNorm::Raw`]: the partial sums accumulate in the same order as
///   the batch distance, so decisions reproduce `decide` exactly.
/// * [`SessionNorm::PerPrefix`]: the prefix is z-normalized online (Welford
///   statistics) and distances to the stored training prefixes are
///   recovered from running dot products:
///   `‖ẑ(p) − y‖² = l + Σy² − 2·(Σpy − μ_p·Σy)/σ_p`,
///   using the model's precomputed per-exemplar cumulative sums — the honest
///   deployment normalization at the same O(n_train) per sample.
struct EctsSession<'a> {
    model: &'a Ects,
    norm: SessionNorm,
    /// Raw mode: running ‖p − y_i‖². PerPrefix mode: scratch for the
    /// reconstructed z-normalized distances.
    d2: Vec<f64>,
    /// PerPrefix only: running Σ p_j·y_ij.
    dot: Vec<f64>,
    /// PerPrefix only: Welford statistics of the raw prefix.
    stats: RunningStats,
    len: usize,
    decision: Decision,
}

impl EctsSession<'_> {
    /// Argmin over the current distances (ascending index, strict `<` —
    /// the same tie-breaking as the batch 1NN scan).
    fn nearest(&self) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for (i, &d) in self.d2.iter().enumerate() {
            if d < best.1 {
                best = (i, d);
            }
        }
        best
    }
}

impl DecisionSession for EctsSession<'_> {
    fn push(&mut self, x: f64) -> Decision {
        if self.decision.is_predict() {
            // Latched: count the sample, skip the O(n_train) accumulation.
            self.len += 1;
            return self.decision;
        }
        let model = self.model;
        let series_len = model.train.series_len();
        if self.len < series_len {
            let j = self.len;
            match self.norm {
                SessionNorm::Raw => {
                    for (i, acc) in self.d2.iter_mut().enumerate() {
                        let d = x - model.train.series(i)[j];
                        *acc += d * d;
                    }
                }
                SessionNorm::PerPrefix => {
                    self.stats.push(x);
                    for (i, acc) in self.dot.iter_mut().enumerate() {
                        *acc += x * model.train.series(i)[j];
                    }
                }
            }
        }
        self.len += 1;
        let l = self.len.min(series_len);
        if l < model.min_prefix {
            return Decision::Wait;
        }
        if self.norm == SessionNorm::PerPrefix {
            // Reconstruct ‖ẑ(prefix) − train_i[..l]‖² from running sums.
            let mean = self.stats.mean();
            let sd = self.stats.std_dev();
            for i in 0..self.dot.len() {
                let y1 = model.cum_y[i][l];
                let y2 = model.cum_y2[i][l];
                self.d2[i] = if sd <= CONSTANT_EPS {
                    // Constant prefix z-normalizes to zeros.
                    y2
                } else {
                    (l as f64 + y2 - 2.0 * (self.dot[i] - mean * y1) / sd).max(0.0)
                };
            }
        }
        let (nn, d) = self.nearest();
        self.decision = if model.mpl[nn] <= l {
            Decision::Predict {
                label: model.train.label(nn),
                confidence: 1.0 / (1.0 + d.sqrt()),
            }
        } else {
            Decision::Wait
        };
        self.decision
    }

    fn decision(&self) -> Decision {
        self.decision
    }

    fn len(&self) -> usize {
        self.len
    }

    fn reset(&mut self) {
        self.d2.fill(0.0);
        self.dot.fill(0.0);
        self.stats = RunningStats::new();
        self.len = 0;
        self.decision = Decision::Wait;
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u8(session_tags::ECTS);
        put_norm(enc, self.norm);
        enc.put_f64_slice(&self.d2);
        enc.put_f64_slice(&self.dot);
        let (count, mean, m2) = self.stats.state();
        enc.put_u64(count);
        enc.put_f64(mean);
        enc.put_f64(m2);
        enc.put_usize(self.len);
        put_decision(enc, self.decision);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate, PrefixPolicy};

    /// Two classes that differ from the very first points. Exemplars come in
    /// tight same-class pairs so nearest-neighbor structure stabilizes
    /// immediately (strict RNN stability needs unambiguous neighbors).
    fn early_separable(n: usize, len: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n {
                let base = c as f64 * 3.0 + (i / 2) as f64 * 0.4;
                let wiggle = 0.01 * (i % 2) as f64;
                data.push(
                    (0..len)
                        .map(|j| base + wiggle * ((j as f64) * 0.7).sin())
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    /// Two classes identical until the last quarter of the series.
    fn late_separable(n: usize, len: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        let split = 3 * len / 4;
        for c in 0..2usize {
            for i in 0..n {
                data.push(
                    (0..len)
                        .map(|j| {
                            let noise = 0.01 * (((i * 31 + j * 17 + c * 5) % 7) as f64 - 3.0);
                            if j < split {
                                noise
                            } else {
                                c as f64 * 2.0 + noise
                            }
                        })
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    #[test]
    fn mpl_is_small_when_classes_separate_early() {
        let d = early_separable(8, 30);
        let ects = Ects::fit(&d, &EctsConfig::default());
        let mean_mpl: f64 = ects.mpls().iter().map(|&m| m as f64).sum::<f64>() / d.len() as f64;
        assert!(
            mean_mpl < 10.0,
            "early-separable data should give small MPLs, mean {mean_mpl}"
        );
    }

    #[test]
    fn mpl_is_large_when_classes_separate_late() {
        let d = late_separable(8, 40);
        let ects = Ects::fit(&d, &EctsConfig::default());
        let mean_mpl: f64 = ects.mpls().iter().map(|&m| m as f64).sum::<f64>() / d.len() as f64;
        assert!(
            mean_mpl > 20.0,
            "late-separable data should delay MPLs, mean {mean_mpl}"
        );
    }

    #[test]
    fn relaxed_mpls_are_never_later() {
        let d = late_separable(6, 32);
        let strict = Ects::fit(&d, &EctsConfig::default());
        let relaxed = Ects::fit(
            &d,
            &EctsConfig {
                relaxed: true,
                ..EctsConfig::default()
            },
        );
        for (s, r) in strict.mpls().iter().zip(relaxed.mpls()) {
            assert!(r <= s, "relaxed {r} must be <= strict {s}");
        }
    }

    #[test]
    fn decide_waits_below_mpl_and_commits_after() {
        let d = late_separable(6, 40);
        let ects = Ects::fit(&d, &EctsConfig::default());
        let probe = d.series(0);
        // Early prefix: identical across classes, RNNs unstable ⇒ wait.
        assert_eq!(ects.decide(&probe[..5]), Decision::Wait);
        // Full prefix: must commit (MPL ≤ L for its own nearest neighbor).
        let full = ects.decide(probe);
        assert!(full.is_predict());
        assert_eq!(full.label(), Some(0));
    }

    #[test]
    fn evaluation_is_accurate_and_early_on_easy_data() {
        let train = early_separable(8, 30);
        let test = early_separable(4, 30);
        let ects = Ects::fit(&train, &EctsConfig::default());
        let ev = evaluate(&ects, &test, PrefixPolicy::Oracle);
        assert!(ev.accuracy() >= 0.9, "accuracy {}", ev.accuracy());
        assert!(ev.earliness() < 0.5, "earliness {}", ev.earliness());
    }

    #[test]
    fn min_support_delays_or_keeps_mpls() {
        let d = late_separable(8, 32);
        let loose = Ects::fit(&d, &EctsConfig::default());
        let tight = Ects::fit(
            &d,
            &EctsConfig {
                min_support: 0.5,
                ..EctsConfig::default()
            },
        );
        for (a, b) in loose.mpls().iter().zip(tight.mpls()) {
            assert!(b >= a, "support can only delay MPLs ({b} < {a})");
        }
    }

    #[test]
    fn predict_full_matches_one_nn() {
        let d = early_separable(5, 20);
        let ects = Ects::fit(&d, &EctsConfig::default());
        assert_eq!(ects.predict_full(&[0.0; 20]), 0);
        assert_eq!(ects.predict_full(&[3.0; 20]), 1);
    }

    #[test]
    fn raw_session_reproduces_decide_exactly() {
        use crate::SessionNorm;
        let d = late_separable(6, 40);
        let ects = Ects::fit(&d, &EctsConfig::default());
        for probe_idx in 0..d.len() {
            let probe = d.series(probe_idx);
            let mut s = ects.session(SessionNorm::Raw);
            for t in 0..probe.len() {
                let inc = s.push(probe[t]);
                let batch = ects.decide(&probe[..t + 1]);
                assert_eq!(inc, batch, "probe {probe_idx} prefix {}", t + 1);
                if inc.is_predict() {
                    break; // sessions latch; the first commit is the decision
                }
            }
        }
    }

    #[test]
    fn per_prefix_session_matches_znormalized_decide() {
        use crate::SessionNorm;
        use etsc_core::znorm::znormalize;
        let d = late_separable(6, 40);
        let ects = Ects::fit(&d, &EctsConfig::default());
        let probe = d.series(2);
        let mut s = ects.session(SessionNorm::PerPrefix);
        for t in 0..probe.len() {
            let inc = s.push(probe[t]);
            let batch = ects.decide(&znormalize(&probe[..t + 1]));
            assert_eq!(inc.is_predict(), batch.is_predict(), "prefix {}", t + 1);
            if let (Some((li, ci)), Some((lb, cb))) =
                (inc.label_confidence(), batch.label_confidence())
            {
                assert_eq!(li, lb);
                assert!((ci - cb).abs() < 1e-6, "confidence {ci} vs {cb}");
                break;
            }
        }
    }

    #[test]
    fn session_reset_reuses_cleanly() {
        use crate::SessionNorm;
        let d = early_separable(5, 20);
        let ects = Ects::fit(&d, &EctsConfig::default());
        let probe = d.series(0);
        let mut s = ects.session(SessionNorm::Raw);
        let first: Vec<Decision> = probe.iter().map(|&x| s.push(x)).collect();
        s.reset();
        assert!(s.is_empty());
        let second: Vec<Decision> = probe.iter().map(|&x| s.push(x)).collect();
        assert_eq!(first, second);
    }
}
