//! Cost-aware early classification (after Tavenard & Malinowski, ECML 2016,
//! and the economy criterion of Achenchabe et al., 2021 — references \[12\]
//! and \[19\] of the paper).
//!
//! These methods make the accuracy/earliness trade-off *monetary*: waiting
//! costs `time_cost` per sample, a misclassification costs
//! `misclassification_cost`. The simplest member of the family (Tavenard &
//! Malinowski's baseline, which their clustering variants refine) commits at
//! a single **fixed trigger length** `τ*` chosen to minimize the expected
//! total cost on training data:
//!
//! ```text
//! τ* = argmin_τ  misclassification_cost · err(τ) + time_cost · τ
//! ```
//!
//! where `err(τ)` is cross-validated error at prefix length τ. The paper's
//! Appendix B notes such cost-aware methods exist "but they only test on
//! UCR datasets and never estimate costs for any real-world applications" —
//! this implementation at least makes the costs explicit inputs.

use etsc_core::{ClassLabel, UcrDataset};
use etsc_persist::{Decoder, Encoder, Persist, PersistError};

use crate::checkpoints::{BaseClassifier, CheckpointEnsemble};
use crate::{
    expect_norm, expect_session_tag, get_decision, put_decision, put_norm, session_tags, Decision,
    DecisionSession, EarlyClassifier, SessionNorm,
};

/// Cost-aware trigger configuration.
#[derive(Debug, Clone, Copy)]
pub struct CostAwareConfig {
    /// Number of candidate trigger lengths.
    pub n_checkpoints: usize,
    /// Cost of one misclassified exemplar.
    pub misclassification_cost: f64,
    /// Cost per sample of waiting.
    pub time_cost: f64,
    /// Base classifier per checkpoint.
    pub base: BaseClassifier,
    /// Smallest usable prefix length.
    pub min_len: usize,
}

impl Default for CostAwareConfig {
    fn default() -> Self {
        Self {
            n_checkpoints: 20,
            misclassification_cost: 100.0,
            time_cost: 1.0,
            base: BaseClassifier::Centroid,
            min_len: 4,
        }
    }
}

/// A fitted cost-aware fixed-trigger classifier.
#[derive(Debug, Clone)]
pub struct CostAware {
    ensemble: CheckpointEnsemble,
    /// Index of the chosen trigger checkpoint.
    trigger: usize,
    /// The training-time expected cost at the trigger.
    expected_cost: f64,
}

impl CostAware {
    /// Choose the trigger length minimizing expected cost on `train`.
    pub fn fit(train: &UcrDataset, cfg: &CostAwareConfig) -> Self {
        assert!(cfg.misclassification_cost >= 0.0 && cfg.time_cost >= 0.0);
        let ensemble = CheckpointEnsemble::fit(train, cfg.base, cfg.n_checkpoints, cfg.min_len);
        let cv = CheckpointEnsemble::cross_val_posteriors(
            train,
            cfg.base,
            cfg.n_checkpoints,
            cfg.min_len,
        );

        let n_ckpt = ensemble.lengths().len();
        let err_at = |ci: usize| -> f64 {
            match &cv {
                Some(cv) => {
                    let pairs = &cv[ci];
                    let wrong = pairs
                        .iter()
                        .filter(|(p, actual)| etsc_classifiers::argmax(p) != *actual)
                        .count();
                    wrong as f64 / pairs.len().max(1) as f64
                }
                None => {
                    let wrong = train
                        .iter()
                        .filter(|&(s, actual)| {
                            etsc_classifiers::argmax(&ensemble.proba_at(ci, s)) != actual
                        })
                        .count();
                    wrong as f64 / train.len() as f64
                }
            }
        };

        let mut best = (n_ckpt - 1, f64::INFINITY);
        for ci in 0..n_ckpt {
            let cost = cfg.misclassification_cost * err_at(ci)
                + cfg.time_cost * ensemble.lengths()[ci] as f64;
            if cost < best.1 {
                best = (ci, cost);
            }
        }

        Self {
            ensemble,
            trigger: best.0,
            expected_cost: best.1,
        }
    }

    /// The chosen trigger length in samples.
    pub fn trigger_len(&self) -> usize {
        self.ensemble.lengths()[self.trigger]
    }

    /// The training-time expected cost of the chosen trigger.
    pub fn expected_cost(&self) -> f64 {
        self.expected_cost
    }
}

impl EarlyClassifier for CostAware {
    fn n_classes(&self) -> usize {
        self.ensemble.n_classes()
    }

    fn series_len(&self) -> usize {
        self.ensemble.series_len()
    }

    fn min_prefix(&self) -> usize {
        self.trigger_len()
    }

    fn decide(&self, prefix: &[f64]) -> Decision {
        if prefix.len() < self.trigger_len() {
            return Decision::Wait;
        }
        let p = self.ensemble.proba_at(self.trigger, prefix);
        let label = etsc_classifiers::argmax(&p);
        Decision::Predict {
            label,
            confidence: p[label],
        }
    }

    fn session(&self, norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
        Box::new(CostAwareSession {
            model: self,
            norm,
            buf: Vec::with_capacity(self.trigger_len()),
            scratch: Vec::new(),
            len: 0,
            decision: Decision::Wait,
        })
    }

    fn predict_full(&self, series: &[f64]) -> ClassLabel {
        let last = self.ensemble.lengths().len() - 1;
        etsc_classifiers::argmax(&self.ensemble.proba_at(last, series))
    }

    fn resume_session(
        &self,
        norm: SessionNorm,
        dec: &mut Decoder<'_>,
    ) -> Result<Box<dyn DecisionSession + '_>, PersistError> {
        expect_session_tag(dec, session_tags::COST_AWARE)?;
        expect_norm(dec, norm)?;
        let buf = dec.get_f64_vec("cost-aware buf")?;
        if buf.len() > self.trigger_len() {
            return Err(PersistError::Corrupt(format!(
                "cost-aware session: buffer of {} for trigger {}",
                buf.len(),
                self.trigger_len()
            )));
        }
        let len = dec.get_usize("cost-aware len")?;
        let decision = get_decision(dec, self.n_classes())?;
        Ok(Box::new(CostAwareSession {
            model: self,
            norm,
            buf,
            scratch: Vec::new(),
            len,
            decision,
        }))
    }
}

impl Persist for CostAware {
    const KIND: &'static str = "CostAware";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.section(|e| self.ensemble.encode_body(e));
        enc.put_usize(self.trigger);
        enc.put_f64(self.expected_cost);
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let mut sub = dec.section("cost-aware ensemble")?;
        let ensemble = CheckpointEnsemble::decode_body(&mut sub)?;
        sub.finish()?;
        let trigger = dec.get_usize("cost-aware trigger")?;
        if trigger >= ensemble.lengths().len() {
            return Err(PersistError::Corrupt(format!(
                "cost-aware: trigger {trigger} of {} checkpoints",
                ensemble.lengths().len()
            )));
        }
        let expected_cost = dec.get_f64("cost-aware expected cost")?;
        Ok(Self {
            ensemble,
            trigger,
            expected_cost,
        })
    }
}

/// Incremental cost-aware session: buffers samples until the fixed trigger
/// length, classifies the trigger window exactly once, then stays latched.
/// Pushes before and after the trigger are O(1).
struct CostAwareSession<'a> {
    model: &'a CostAware,
    norm: SessionNorm,
    buf: Vec<f64>,
    scratch: Vec<f64>,
    len: usize,
    decision: Decision,
}

impl DecisionSession for CostAwareSession<'_> {
    fn push(&mut self, x: f64) -> Decision {
        if self.decision.is_predict() {
            self.len += 1;
            return self.decision; // latched: count the sample, skip the work
        }
        let trigger_len = self.model.trigger_len();
        if self.buf.len() < trigger_len {
            self.buf.push(x);
        }
        self.len += 1;
        if self.buf.len() == trigger_len {
            let p = match self.norm {
                SessionNorm::Raw => self.model.ensemble.proba_at(self.model.trigger, &self.buf),
                SessionNorm::PerPrefix => {
                    self.scratch.clear();
                    self.scratch.extend_from_slice(&self.buf);
                    etsc_core::znorm::znormalize_in_place(&mut self.scratch);
                    self.model
                        .ensemble
                        .proba_at(self.model.trigger, &self.scratch)
                }
            };
            let label = etsc_classifiers::argmax(&p);
            self.decision = Decision::Predict {
                label,
                confidence: p[label],
            };
        }
        self.decision
    }

    fn decision(&self) -> Decision {
        self.decision
    }

    fn len(&self) -> usize {
        self.len
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.scratch.clear();
        self.len = 0;
        self.decision = Decision::Wait;
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u8(session_tags::COST_AWARE);
        put_norm(enc, self.norm);
        enc.put_f64_slice(&self.buf);
        enc.put_usize(self.len);
        put_decision(enc, self.decision);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate, PrefixPolicy};

    fn toy(n: usize, len: usize, split: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n {
                data.push(
                    (0..len)
                        .map(|j| {
                            let noise = 0.05 * (((i * 5 + j) % 8) as f64 - 3.5);
                            if j < split {
                                noise
                            } else {
                                c as f64 * 2.0 + noise
                            }
                        })
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    #[test]
    fn trigger_commits_exactly_once_at_trigger_length() {
        let train = toy(10, 40, 0);
        let m = CostAware::fit(&train, &CostAwareConfig::default());
        let probe = train.series(0);
        let t = m.trigger_len();
        assert_eq!(m.decide(&probe[..t - 1]), Decision::Wait);
        assert!(m.decide(&probe[..t]).is_predict());
    }

    #[test]
    fn expensive_time_pushes_trigger_earlier() {
        let train = toy(10, 40, 10);
        let cheap_time = CostAware::fit(
            &train,
            &CostAwareConfig {
                time_cost: 0.01,
                ..Default::default()
            },
        );
        let dear_time = CostAware::fit(
            &train,
            &CostAwareConfig {
                time_cost: 10.0,
                ..Default::default()
            },
        );
        assert!(
            dear_time.trigger_len() <= cheap_time.trigger_len(),
            "costly waiting must not delay the trigger: {} vs {}",
            dear_time.trigger_len(),
            cheap_time.trigger_len()
        );
    }

    #[test]
    fn expensive_errors_push_trigger_later_on_late_data() {
        let train = toy(10, 40, 20);
        let cheap_err = CostAware::fit(
            &train,
            &CostAwareConfig {
                misclassification_cost: 1.0,
                time_cost: 1.0,
                ..Default::default()
            },
        );
        let dear_err = CostAware::fit(
            &train,
            &CostAwareConfig {
                misclassification_cost: 10_000.0,
                time_cost: 1.0,
                ..Default::default()
            },
        );
        assert!(dear_err.trigger_len() >= cheap_err.trigger_len());
        // With errors this expensive, the trigger must be in the separable
        // second half.
        assert!(dear_err.trigger_len() > 20);
    }

    #[test]
    fn accurate_when_errors_dominate() {
        let train = toy(10, 40, 10);
        let test = toy(5, 40, 10);
        let m = CostAware::fit(
            &train,
            &CostAwareConfig {
                misclassification_cost: 10_000.0,
                ..Default::default()
            },
        );
        let ev = evaluate(&m, &test, PrefixPolicy::Oracle);
        assert!(ev.accuracy() >= 0.9, "accuracy {}", ev.accuracy());
    }

    #[test]
    fn expected_cost_is_reported() {
        let train = toy(8, 32, 0);
        let m = CostAware::fit(&train, &CostAwareConfig::default());
        assert!(m.expected_cost().is_finite());
        assert!(m.expected_cost() >= 0.0);
    }
}
