//! ECDIRE — Early Classification based on DIscriminativeness and REliability
//! (Mori et al., DMKD 2017; reference \[7\] of the paper).
//!
//! ECDIRE's idea: classes become distinguishable at different times. Using
//! cross-validation it finds, for each class, the earliest checkpoint at
//! which the classifier's recall for that class reaches a fraction
//! `alpha` of its full-length recall — predictions for that class are only
//! *allowed* from then on ("safe timestamps"). On top of that, a
//! reliability threshold per checkpoint — the smallest posterior margin seen
//! among correct cross-validation predictions — gates individual decisions.

use etsc_core::{ClassLabel, UcrDataset};
use etsc_persist::{Decoder, Encoder, Persist, PersistError};

use crate::checkpoints::{BaseClassifier, CheckpointCursor, CheckpointEnsemble};
use crate::{
    expect_norm, expect_session_tag, get_decision, put_decision, put_norm, session_tags, Decision,
    DecisionSession, EarlyClassifier, SessionNorm,
};

/// ECDIRE hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct EcdireConfig {
    /// Number of checkpoints (the paper uses 5% steps → 20).
    pub n_checkpoints: usize,
    /// Fraction of full-length per-class recall a checkpoint must reach to
    /// become "safe" for that class (the paper uses 1.0).
    pub alpha: f64,
    /// Base classifier per checkpoint.
    pub base: BaseClassifier,
    /// Smallest usable prefix length.
    pub min_len: usize,
}

impl Default for EcdireConfig {
    fn default() -> Self {
        Self {
            n_checkpoints: 20,
            alpha: 1.0,
            base: BaseClassifier::Centroid,
            min_len: 4,
        }
    }
}

/// A fitted ECDIRE model.
#[derive(Debug, Clone)]
pub struct Ecdire {
    ensemble: CheckpointEnsemble,
    /// Earliest safe checkpoint index per class (`None` = never safe early;
    /// only the final checkpoint may predict it).
    safe_from: Vec<Option<usize>>,
    /// Per-checkpoint reliability threshold (minimum margin among correct
    /// CV predictions; +inf disables a checkpoint entirely).
    margin_threshold: Vec<f64>,
}

fn margin(p: &[f64]) -> f64 {
    let (best, second) = crate::top_two(p);
    best - second
}

impl Ecdire {
    /// Fit the checkpoint ensemble, safe timestamps, and reliability
    /// thresholds on `train`.
    pub fn fit(train: &UcrDataset, cfg: &EcdireConfig) -> Self {
        assert!((0.0..=1.0).contains(&cfg.alpha), "alpha must be in [0, 1]");
        let ensemble = CheckpointEnsemble::fit(train, cfg.base, cfg.n_checkpoints, cfg.min_len);
        let n_classes = ensemble.n_classes();
        let n_ckpt = ensemble.lengths().len();

        let cv = CheckpointEnsemble::cross_val_posteriors(
            train,
            cfg.base,
            cfg.n_checkpoints,
            cfg.min_len,
        );

        let (safe_from, margin_threshold) = match cv {
            None => {
                // Degenerate training set: never predict early.
                (vec![None; n_classes], vec![f64::INFINITY; n_ckpt])
            }
            Some(cv) => {
                // Per-class recall at each checkpoint.
                let mut recall = vec![vec![0.0f64; n_classes]; n_ckpt];
                for (ci, pairs) in cv.iter().enumerate() {
                    let mut hit = vec![0usize; n_classes];
                    let mut tot = vec![0usize; n_classes];
                    for (p, actual) in pairs {
                        tot[*actual] += 1;
                        if etsc_classifiers::argmax(p) == *actual {
                            hit[*actual] += 1;
                        }
                    }
                    for c in 0..n_classes {
                        recall[ci][c] = if tot[c] == 0 {
                            0.0
                        } else {
                            hit[c] as f64 / tot[c] as f64
                        };
                    }
                }
                let full = &recall[n_ckpt - 1];
                let safe_from: Vec<Option<usize>> = (0..n_classes)
                    .map(|c| {
                        let target = cfg.alpha * full[c];
                        // "Safe" must be sustained: the first checkpoint from
                        // which recall never drops back below the target.
                        (0..n_ckpt).find(|&start| {
                            (start..n_ckpt).all(|ci| recall[ci][c] + 1e-12 >= target)
                        })
                    })
                    .collect();
                // Reliability threshold: minimum margin among correct CV
                // predictions at each checkpoint.
                let margin_threshold: Vec<f64> = cv
                    .iter()
                    .map(|pairs| {
                        pairs
                            .iter()
                            .filter(|(p, actual)| etsc_classifiers::argmax(p) == *actual)
                            .map(|(p, _)| margin(p))
                            .fold(f64::INFINITY, f64::min)
                    })
                    .collect();
                (safe_from, margin_threshold)
            }
        };

        Self {
            ensemble,
            safe_from,
            margin_threshold,
        }
    }

    /// The earliest safe checkpoint length for each class (`None` = only at
    /// full length).
    pub fn safe_lengths(&self) -> Vec<Option<usize>> {
        self.safe_from
            .iter()
            .map(|s| s.map(|ci| self.ensemble.lengths()[ci]))
            .collect()
    }
}

impl EarlyClassifier for Ecdire {
    fn n_classes(&self) -> usize {
        self.ensemble.n_classes()
    }

    fn series_len(&self) -> usize {
        self.ensemble.series_len()
    }

    fn min_prefix(&self) -> usize {
        self.ensemble.lengths()[0]
    }

    fn decide(&self, prefix: &[f64]) -> Decision {
        let Some(ci) = self.ensemble.latest_checkpoint(prefix.len()) else {
            return Decision::Wait;
        };
        let p = self.ensemble.proba_at(ci, prefix);
        self.gate(ci, &p)
    }

    fn session(&self, norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
        Box::new(EcdireSession {
            model: self,
            cursor: self.ensemble.cursor(norm),
            len: 0,
            decision: Decision::Wait,
        })
    }

    fn predict_full(&self, series: &[f64]) -> ClassLabel {
        let last = self.ensemble.lengths().len() - 1;
        etsc_classifiers::argmax(&self.ensemble.proba_at(last, series))
    }

    fn resume_session(
        &self,
        norm: SessionNorm,
        dec: &mut Decoder<'_>,
    ) -> Result<Box<dyn DecisionSession + '_>, PersistError> {
        expect_session_tag(dec, session_tags::ECDIRE)?;
        expect_norm(dec, norm)?;
        let mut cursor = self.ensemble.cursor(norm);
        {
            let mut sub = dec.section("ecdire cursor")?;
            cursor.load_state(&mut sub)?;
            sub.finish()?;
        }
        let len = dec.get_usize("ecdire len")?;
        let decision = get_decision(dec, self.n_classes())?;
        Ok(Box::new(EcdireSession {
            model: self,
            cursor,
            len,
            decision,
        }))
    }
}

impl Persist for Ecdire {
    const KIND: &'static str = "Ecdire";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.section(|e| self.ensemble.encode_body(e));
        enc.put_usize(self.safe_from.len());
        for s in &self.safe_from {
            enc.put_opt_usize(*s);
        }
        enc.put_f64_slice(&self.margin_threshold);
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let mut sub = dec.section("ecdire ensemble")?;
        let ensemble = CheckpointEnsemble::decode_body(&mut sub)?;
        sub.finish()?;
        let n_classes = dec.get_usize("ecdire safe count")?;
        if n_classes != ensemble.n_classes() {
            return Err(PersistError::Corrupt(format!(
                "ecdire: {n_classes} safe timestamps for {} classes",
                ensemble.n_classes()
            )));
        }
        let n_ckpt = ensemble.lengths().len();
        let mut safe_from = Vec::with_capacity(n_classes);
        for _ in 0..n_classes {
            let s = dec.get_opt_usize("ecdire safe timestamp")?;
            if s.is_some_and(|ci| ci >= n_ckpt) {
                return Err(PersistError::Corrupt(
                    "ecdire: safe timestamp beyond the ladder".into(),
                ));
            }
            safe_from.push(s);
        }
        let margin_threshold = dec.get_f64_vec("ecdire margins")?;
        if margin_threshold.len() != n_ckpt {
            return Err(PersistError::Corrupt(format!(
                "ecdire: {} margin thresholds for {n_ckpt} checkpoints",
                margin_threshold.len()
            )));
        }
        Ok(Self {
            ensemble,
            safe_from,
            margin_threshold,
        })
    }
}

impl Ecdire {
    /// Safe-timestamp + reliability gate on one checkpoint's posterior.
    fn gate(&self, ci: usize, p: &[f64]) -> Decision {
        let label = etsc_classifiers::argmax(p);
        let safe = self.safe_from[label].is_some_and(|s| ci >= s);
        let reliable = margin(p) + 1e-12 >= self.margin_threshold[ci];
        if safe && reliable {
            Decision::Predict {
                label,
                confidence: p[label],
            }
        } else {
            Decision::Wait
        }
    }
}

/// Incremental ECDIRE session: the decision only changes at checkpoint
/// boundaries, so a [`CheckpointCursor`] evaluates each checkpoint's
/// classifier exactly once and every other push is O(1).
struct EcdireSession<'a> {
    model: &'a Ecdire,
    cursor: CheckpointCursor<'a>,
    /// Samples consumed, counted independently of the cursor so latched
    /// pushes stay O(1).
    len: usize,
    decision: Decision,
}

impl DecisionSession for EcdireSession<'_> {
    fn push(&mut self, x: f64) -> Decision {
        self.len += 1;
        if self.decision.is_predict() {
            return self.decision; // latched: count the sample, skip the work
        }
        if let Some(ci) = self.cursor.push(x) {
            let (_, p) = self.cursor.latest().expect("just completed");
            self.decision = self.model.gate(ci, p);
        }
        self.decision
    }

    fn decision(&self) -> Decision {
        self.decision
    }

    fn len(&self) -> usize {
        self.len
    }

    fn reset(&mut self) {
        self.cursor.reset();
        self.len = 0;
        self.decision = Decision::Wait;
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u8(session_tags::ECDIRE);
        put_norm(enc, self.cursor.norm());
        enc.section(|e| self.cursor.save_state(e));
        enc.put_usize(self.len);
        put_decision(enc, self.decision);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate, PrefixPolicy};

    /// Class 1 separates from class 0 only in the second half. The noise
    /// pattern is class-dependent so the indistinguishable first halves are
    /// not *bitwise identical* (which would let degenerate tie-breaking give
    /// one class perfect recall for free).
    fn late_split(n: usize, len: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n {
                data.push(
                    (0..len)
                        .map(|j| {
                            let noise = 0.05 * (((i * 7 + j * 3 + c * 11) % 9) as f64 - 4.0);
                            if j < len / 2 {
                                noise
                            } else {
                                c as f64 * 2.0 + noise
                            }
                        })
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    /// Classes separated from the first sample.
    fn early_split(n: usize, len: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n {
                data.push(
                    (0..len)
                        .map(|j| c as f64 * 2.0 + 0.05 * (((i + j) % 5) as f64 - 2.0))
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    #[test]
    fn accurate_and_early_on_early_separable_data() {
        let train = early_split(10, 40);
        let test = early_split(5, 40);
        let m = Ecdire::fit(&train, &EcdireConfig::default());
        let ev = evaluate(&m, &test, PrefixPolicy::Oracle);
        assert!(ev.accuracy() >= 0.9, "accuracy {}", ev.accuracy());
        assert!(ev.earliness() < 0.5, "earliness {}", ev.earliness());
    }

    #[test]
    fn safe_timestamps_respect_late_separation() {
        let train = late_split(10, 40);
        let m = Ecdire::fit(&train, &EcdireConfig::default());
        for (c, safe) in m.safe_lengths().into_iter().enumerate() {
            let s = safe.expect("classes are eventually separable");
            assert!(
                s > 40 / 4,
                "class {c} must not be safe in the identical first half (safe at {s})"
            );
        }
    }

    #[test]
    fn late_data_commits_late_but_correctly() {
        let train = late_split(10, 40);
        let test = late_split(5, 40);
        let m = Ecdire::fit(&train, &EcdireConfig::default());
        let ev = evaluate(&m, &test, PrefixPolicy::Oracle);
        assert!(ev.accuracy() >= 0.9, "accuracy {}", ev.accuracy());
        assert!(
            ev.earliness() > 0.4,
            "cannot honestly commit in the identical half: {}",
            ev.earliness()
        );
    }

    #[test]
    fn alpha_zero_is_most_permissive() {
        let train = late_split(8, 32);
        let strict = Ecdire::fit(&train, &EcdireConfig::default());
        let lax = Ecdire::fit(
            &train,
            &EcdireConfig {
                alpha: 0.0,
                ..EcdireConfig::default()
            },
        );
        for (s, l) in strict.safe_lengths().iter().zip(lax.safe_lengths()) {
            if let (Some(s), Some(l)) = (s, l) {
                assert!(l <= *s, "alpha=0 can only be earlier");
            }
        }
    }

    #[test]
    fn waits_below_first_checkpoint() {
        let train = early_split(6, 40);
        let m = Ecdire::fit(&train, &EcdireConfig::default());
        assert_eq!(m.decide(&[0.0]), Decision::Wait);
    }
}
