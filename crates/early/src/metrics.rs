//! Evaluation of early classifiers: accuracy, earliness, and the harmonic
//! mean used across the ETSC literature — under an explicit prefix
//! normalization policy.
//!
//! The policy is the crux of Section 4 of the paper. UCR-style evaluation
//! slices prefixes from *already z-normalized* exemplars, which implicitly
//! standardizes each prefix with statistics of points that have not arrived
//! yet ("peeking into the future"). A deployable system can only normalize
//! the prefix it has actually seen — or not normalize at all.

use etsc_core::znorm::znormalize;
use etsc_core::{ClassLabel, UcrDataset};

use crate::{Decision, EarlyClassifier, SessionNorm};

/// How prefixes handed to the classifier are normalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefixPolicy {
    /// Slice prefixes from the full z-normalized series (requires the test
    /// set to be z-normalized). This is the UCR-evaluation convention — and
    /// it peeks into the future.
    Oracle,
    /// Z-normalize each prefix independently using only its own points —
    /// what an honest deployment can do (TEASER's convention, footnote 2).
    PerPrefix,
    /// Feed raw prefixes unchanged.
    Raw,
}

/// Outcome for a single test exemplar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceResult {
    /// Predicted class.
    pub predicted: ClassLabel,
    /// True class.
    pub actual: ClassLabel,
    /// Prefix length at which the classifier committed (series length if it
    /// never did and the fallback fired).
    pub length_used: usize,
    /// Whether `decide` committed before the fallback.
    pub committed_early: bool,
}

/// Aggregate evaluation of an early classifier on a test set.
#[derive(Debug, Clone)]
pub struct EarlyEvaluation {
    /// Per-exemplar outcomes, in test order.
    pub instances: Vec<InstanceResult>,
    /// Full series length (denominator of earliness).
    pub series_len: usize,
}

impl EarlyEvaluation {
    /// Fraction of correct predictions.
    pub fn accuracy(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        self.instances
            .iter()
            .filter(|r| r.predicted == r.actual)
            .count() as f64
            / self.instances.len() as f64
    }

    /// Mean fraction of the series consumed before committing (lower is
    /// earlier).
    pub fn earliness(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .instances
            .iter()
            .map(|r| r.length_used as f64 / self.series_len as f64)
            .sum();
        sum / self.instances.len() as f64
    }

    /// Harmonic mean of accuracy and (1 - earliness), the combined score
    /// used by TEASER and successors.
    ///
    /// Defined as **0.0** when accuracy and (1 − earliness) are both 0 —
    /// the worst-possible corner (every prediction wrong, every commitment
    /// at full length), where the raw formula is 0/0. This matches the
    /// ETSC-literature convention (the harmonic mean is 0 whenever either
    /// component is 0) instead of propagating NaN into score tables. The
    /// guard keys on the numerator, so a denominator driven to 0.0 by
    /// floating-point cancellation can never produce NaN or ±∞ either.
    pub fn harmonic_mean(&self) -> f64 {
        let a = self.accuracy();
        let e = 1.0 - self.earliness();
        let num = 2.0 * a * e;
        if num <= 0.0 {
            0.0
        } else {
            num / (a + e)
        }
    }

    /// Fraction of exemplars where the classifier committed before the
    /// full-length fallback.
    pub fn commit_rate(&self) -> f64 {
        if self.instances.is_empty() {
            return 0.0;
        }
        self.instances.iter().filter(|r| r.committed_early).count() as f64
            / self.instances.len() as f64
    }
}

/// Run `clf` over one series, growing the prefix one point at a time, and
/// return the first commitment (or the full-length fallback).
///
/// Under `Oracle`/`Raw` the series is streamed through an incremental
/// [`DecisionSession`](crate::DecisionSession) — O(series) total for
/// classifiers with incremental sessions, where the old grow-the-prefix
/// `decide` loop was O(series²). Session/decide equivalence (asserted per
/// algorithm by property tests) makes this a pure speedup. `PerPrefix`
/// keeps the explicit re-normalize-and-decide loop: its published meaning
/// is "decide on the z-normalization of each whole prefix", which is not
/// incrementally computable in general.
pub fn classify_stream<C: EarlyClassifier + ?Sized>(
    clf: &C,
    series: &[f64],
    policy: PrefixPolicy,
) -> (ClassLabel, usize, bool) {
    let n = series.len();
    match policy {
        PrefixPolicy::Oracle | PrefixPolicy::Raw => {
            let mut session = clf.session(SessionNorm::Raw);
            for (i, &x) in series.iter().enumerate() {
                if let Decision::Predict { label, .. } = session.push(x) {
                    return (label, i + 1, true);
                }
            }
            (clf.predict_full(series), n, false)
        }
        PrefixPolicy::PerPrefix => {
            let start = clf.min_prefix().clamp(1, n);
            for len in start..=n {
                let decision = clf.decide(&znormalize(&series[..len]));
                if let Decision::Predict { label, .. } = decision {
                    return (label, len, true);
                }
            }
            (clf.predict_full(&znormalize(series)), n, false)
        }
    }
}

/// Evaluate an early classifier over a test set.
///
/// Under `PrefixPolicy::Oracle` the caller should pass a z-normalized test
/// set (the UCR convention); under `PerPrefix`/`Raw` pass raw data.
pub fn evaluate<C: EarlyClassifier + ?Sized>(
    clf: &C,
    test: &UcrDataset,
    policy: PrefixPolicy,
) -> EarlyEvaluation {
    let instances = test
        .iter()
        .map(|(s, actual)| {
            let (predicted, length_used, committed_early) = classify_stream(clf, s, policy);
            InstanceResult {
                predicted,
                actual,
                length_used,
                committed_early,
            }
        })
        .collect();
    EarlyEvaluation {
        instances,
        series_len: test.series_len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Predicts class 0 as soon as the prefix reaches `commit_at` points;
    /// mis-predicts class 1 at full length otherwise.
    struct FixedCommit {
        commit_at: usize,
        len: usize,
    }

    impl EarlyClassifier for FixedCommit {
        fn n_classes(&self) -> usize {
            2
        }
        fn series_len(&self) -> usize {
            self.len
        }
        fn decide(&self, prefix: &[f64]) -> Decision {
            if prefix.len() >= self.commit_at {
                Decision::Predict {
                    label: 0,
                    confidence: 1.0,
                }
            } else {
                Decision::Wait
            }
        }
        fn predict_full(&self, _series: &[f64]) -> usize {
            1
        }
    }

    fn toy_test() -> UcrDataset {
        UcrDataset::new(
            vec![vec![0.0; 10], vec![1.0; 10], vec![2.0; 10], vec![3.0; 10]],
            vec![0, 0, 0, 1],
        )
        .unwrap()
    }

    #[test]
    fn committing_classifier_uses_commit_length() {
        let clf = FixedCommit {
            commit_at: 4,
            len: 10,
        };
        let ev = evaluate(&clf, &toy_test(), PrefixPolicy::Raw);
        assert_eq!(ev.instances.len(), 4);
        for r in &ev.instances {
            assert_eq!(r.length_used, 4);
            assert!(r.committed_early);
            assert_eq!(r.predicted, 0);
        }
        assert!((ev.accuracy() - 0.75).abs() < 1e-12);
        assert!((ev.earliness() - 0.4).abs() < 1e-12);
        assert!((ev.commit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn never_committing_classifier_falls_back() {
        let clf = FixedCommit {
            commit_at: 99,
            len: 10,
        };
        let ev = evaluate(&clf, &toy_test(), PrefixPolicy::Raw);
        for r in &ev.instances {
            assert_eq!(r.length_used, 10);
            assert!(!r.committed_early);
            assert_eq!(r.predicted, 1);
        }
        assert!((ev.accuracy() - 0.25).abs() < 1e-12);
        assert!((ev.earliness() - 1.0).abs() < 1e-12);
        assert_eq!(ev.commit_rate(), 0.0);
    }

    #[test]
    fn harmonic_mean_matches_formula() {
        let clf = FixedCommit {
            commit_at: 5,
            len: 10,
        };
        let ev = evaluate(&clf, &toy_test(), PrefixPolicy::Raw);
        let a = ev.accuracy();
        let e = 1.0 - ev.earliness();
        assert!((ev.harmonic_mean() - 2.0 * a * e / (a + e)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_is_zero_not_nan_at_worst_corner() {
        // Every prediction wrong, every commitment at full length:
        // accuracy = 0 and (1 − earliness) = 0, the 0/0 corner.
        let ev = EarlyEvaluation {
            instances: vec![
                InstanceResult {
                    predicted: 1,
                    actual: 0,
                    length_used: 10,
                    committed_early: false,
                },
                InstanceResult {
                    predicted: 0,
                    actual: 1,
                    length_used: 10,
                    committed_early: false,
                },
            ],
            series_len: 10,
        };
        assert_eq!(ev.accuracy(), 0.0);
        assert_eq!(ev.earliness(), 1.0);
        let h = ev.harmonic_mean();
        assert!(!h.is_nan(), "harmonic mean must not be NaN");
        assert_eq!(h, 0.0, "0/0 corner is defined as 0 (ETSC convention)");
    }

    #[test]
    fn per_prefix_policy_normalizes() {
        /// Records whether incoming prefixes are z-normalized.
        struct NormProbe;
        impl EarlyClassifier for NormProbe {
            fn n_classes(&self) -> usize {
                2
            }
            fn series_len(&self) -> usize {
                8
            }
            fn min_prefix(&self) -> usize {
                4
            }
            fn decide(&self, prefix: &[f64]) -> Decision {
                // Commit with confidence 1 only if prefix is z-normalized.
                if etsc_core::znorm::is_znormalized(prefix, 1e-6) {
                    Decision::Predict {
                        label: 0,
                        confidence: 1.0,
                    }
                } else {
                    Decision::Wait
                }
            }
            fn predict_full(&self, _s: &[f64]) -> usize {
                1
            }
        }
        let test = UcrDataset::new(vec![vec![5.0, 7.0, 9.0, 11.0, 13.0]], vec![0]).unwrap();
        let raw = evaluate(&NormProbe, &test, PrefixPolicy::Raw);
        assert_eq!(
            raw.instances[0].predicted, 1,
            "raw prefixes are not normalized"
        );
        let pp = evaluate(&NormProbe, &test, PrefixPolicy::PerPrefix);
        assert_eq!(pp.instances[0].predicted, 0);
        assert_eq!(pp.instances[0].length_used, 4, "commits at min_prefix");
    }

    #[test]
    fn empty_evaluation_is_zeroes() {
        let ev = EarlyEvaluation {
            instances: vec![],
            series_len: 10,
        };
        assert_eq!(ev.accuracy(), 0.0);
        assert_eq!(ev.earliness(), 0.0);
        assert_eq!(ev.harmonic_mean(), 0.0);
        assert_eq!(ev.commit_rate(), 0.0);
    }
}
