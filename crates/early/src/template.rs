//! Template matching with an absolute distance threshold — early
//! classification the way Section 5 of the paper actually does it.
//!
//! "Any subsequence that is within 2.3 of z-normalized Euclidean distance of
//! this template is essentially guaranteed to be dustbathing." Unlike the
//! probabilistic framings, a template matcher is *open-world*: a prefix
//! resembling no class produces no prediction, which is the only sane
//! behavior in a stream where target patterns are rare.
//!
//! The matcher compares the z-normalized prefix against the z-normalized
//! equal-length head of each class template, with distances length-
//! normalized (divided by √len) so one threshold works at every prefix
//! length.

use etsc_core::distance::euclidean;
use etsc_core::znorm::{znormalize, CONSTANT_EPS};
use etsc_core::{ClassLabel, UcrDataset};
use etsc_persist::{Decoder, Encoder, Persist, PersistError};

use crate::{
    expect_session_tag, get_decision, put_decision, session_tags, Decision, DecisionSession,
    EarlyClassifier, SessionNorm,
};

/// An early classifier matching prefixes against per-class templates under
/// an absolute distance threshold.
#[derive(Debug, Clone)]
pub struct TemplateMatcher {
    /// One full-length template per class (stored raw; normalization is per
    /// comparison).
    templates: Vec<Vec<f64>>,
    /// Maximum accepted length-normalized z-distance.
    threshold: f64,
    min_prefix: usize,
    /// Per-class cumulative sums of template values (`cum_t[c][l]` = sum of
    /// the first `l` points) and squares — lets sessions evaluate the
    /// z-normalized head distance from running sums.
    cum_t: Vec<Vec<f64>>,
    cum_t2: Vec<Vec<f64>>,
}

impl TemplateMatcher {
    /// Build from explicit per-class templates (index = class label).
    pub fn from_templates(templates: Vec<Vec<f64>>, threshold: f64, min_prefix: usize) -> Self {
        assert!(!templates.is_empty(), "need at least one template");
        let len = templates[0].len();
        assert!(
            templates.iter().all(|t| t.len() == len && !t.is_empty()),
            "templates must share a non-empty length"
        );
        assert!(threshold > 0.0, "threshold must be positive");
        let mut cum_t = Vec::with_capacity(templates.len());
        let mut cum_t2 = Vec::with_capacity(templates.len());
        for t in &templates {
            let (c1, c2) = etsc_core::stats::prefix_value_and_square_sums(t);
            cum_t.push(c1);
            cum_t2.push(c2);
        }
        Self {
            templates,
            threshold,
            min_prefix: min_prefix.max(2),
            cum_t,
            cum_t2,
        }
    }

    /// Build templates as per-class centroids of a training set.
    pub fn from_centroids(train: &UcrDataset, threshold: f64, min_prefix: usize) -> Self {
        let n_classes = train.n_classes();
        let len = train.series_len();
        let mut sums = vec![vec![0.0; len]; n_classes];
        let mut counts = vec![0usize; n_classes];
        for (s, label) in train.iter() {
            for (acc, &v) in sums[label].iter_mut().zip(s) {
                *acc += v;
            }
            counts[label] += 1;
        }
        for (sum, &c) in sums.iter_mut().zip(&counts) {
            if c > 0 {
                sum.iter_mut().for_each(|v| *v /= c as f64);
            }
        }
        Self::from_templates(sums, threshold, min_prefix)
    }

    /// A data-driven threshold: the `quantile` of same-class full-length
    /// distances between training exemplars and their class centroid. A
    /// quantile of 0.95 accepts ~95% of genuine exemplars.
    pub fn calibrate_threshold(train: &UcrDataset, quantile: f64) -> f64 {
        let proto = Self::from_centroids(train, 1.0, 2);
        let mut dists: Vec<f64> = train
            .iter()
            .map(|(s, label)| proto.distance(label, s))
            .collect();
        // total_cmp: degenerate training data can produce NaN distances;
        // calibration must not panic on a poisoned compare.
        dists.sort_by(f64::total_cmp);
        let idx = ((quantile.clamp(0.0, 1.0)) * (dists.len() - 1) as f64).round() as usize;
        dists[idx].max(1e-6)
    }

    /// Length-normalized z-distance between a prefix and the head of class
    /// `c`'s template.
    pub fn distance(&self, c: ClassLabel, prefix: &[f64]) -> f64 {
        let len = prefix.len().min(self.templates[c].len());
        let t = znormalize(&self.templates[c][..len]);
        let p = znormalize(&prefix[..len]);
        euclidean(&t, &p) / (len as f64).sqrt()
    }

    /// The per-class templates.
    pub fn templates(&self) -> &[Vec<f64>] {
        &self.templates
    }

    /// The acceptance threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Persist for TemplateMatcher {
    const KIND: &'static str = "TemplateMatcher";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.put_f64(self.threshold);
        enc.put_usize(self.min_prefix);
        enc.put_usize(self.templates.len());
        for t in &self.templates {
            enc.put_f64_slice(t);
        }
    }

    /// Templates and threshold travel; the per-class cumulative sums are
    /// recomputed at decode (`from_templates` runs the same deterministic
    /// code as the original construction).
    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let threshold = dec.get_f64("template threshold")?;
        if !(threshold.is_finite() && threshold > 0.0) {
            return Err(PersistError::Corrupt(format!(
                "template: threshold {threshold}"
            )));
        }
        let min_prefix = dec.get_usize("template min_prefix")?;
        let n = dec.get_usize("template count")?;
        if n == 0 {
            return Err(PersistError::Corrupt("template: zero templates".into()));
        }
        let mut templates = Vec::with_capacity(n);
        for _ in 0..n {
            templates.push(dec.get_f64_vec("template pattern")?);
        }
        let len = templates[0].len();
        if len == 0 || templates.iter().any(|t| t.len() != len) {
            return Err(PersistError::Corrupt(
                "template: templates must share a non-empty length".into(),
            ));
        }
        Ok(Self::from_templates(templates, threshold, min_prefix))
    }
}

impl EarlyClassifier for TemplateMatcher {
    fn n_classes(&self) -> usize {
        self.templates.len()
    }

    fn series_len(&self) -> usize {
        self.templates[0].len()
    }

    fn min_prefix(&self) -> usize {
        self.min_prefix
    }

    fn decide(&self, prefix: &[f64]) -> Decision {
        if prefix.len() < self.min_prefix {
            return Decision::Wait;
        }
        let mut best: Option<(ClassLabel, f64)> = None;
        for c in 0..self.templates.len() {
            let d = self.distance(c, prefix);
            if d <= self.threshold && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((c, d));
            }
        }
        match best {
            Some((label, d)) => Decision::Predict {
                label,
                confidence: (1.0 - d / self.threshold).clamp(0.0, 1.0),
            },
            None => Decision::Wait,
        }
    }

    fn session(&self, _norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
        // The z-normalized distance is invariant to affine transforms of the
        // prefix, so honest per-prefix normalization and raw input coincide:
        // one session serves both `SessionNorm` variants.
        Box::new(TemplateSession {
            model: self,
            dot: vec![0.0; self.templates.len()],
            sum: 0.0,
            sumsq: 0.0,
            len: 0,
            decision: Decision::Wait,
        })
    }

    fn predict_full(&self, series: &[f64]) -> ClassLabel {
        (0..self.templates.len())
            .min_by(|&a, &b| {
                // total_cmp: NaN distances (degenerate inputs) must order
                // deterministically, not panic the fallback prediction.
                self.distance(a, series)
                    .total_cmp(&self.distance(b, series))
            })
            .unwrap_or(0)
    }

    fn resume_session(
        &self,
        _norm: SessionNorm,
        dec: &mut Decoder<'_>,
    ) -> Result<Box<dyn DecisionSession + '_>, PersistError> {
        // One session type serves both norms (the z-normalized distance is
        // affine-invariant), so the norm does not enter the state.
        expect_session_tag(dec, session_tags::TEMPLATE)?;
        let dot = dec.get_f64_vec("template dot")?;
        if dot.len() != self.templates.len() {
            return Err(PersistError::Corrupt(format!(
                "template session: {} dots for {} templates",
                dot.len(),
                self.templates.len()
            )));
        }
        let sum = dec.get_f64("template sum")?;
        let sumsq = dec.get_f64("template sumsq")?;
        let len = dec.get_usize("template len")?;
        let decision = get_decision(dec, self.templates.len())?;
        Ok(Box::new(TemplateSession {
            model: self,
            dot,
            sum,
            sumsq,
            len,
            decision,
        }))
    }
}

/// Incremental template-matching session.
///
/// Maintains running `Σp`, `Σp²`, and per-class `Σp·t` over the pushed
/// prefix; the length-normalized z-distance to each template head follows
/// from the correlation identity
/// `‖ẑ(t) − ẑ(p)‖² = 2·(l − Σẑ(t)·ẑ(p))`, so a push costs O(classes)
/// instead of the O(classes × prefix) of re-normalizing both sides in
/// [`TemplateMatcher::decide`]. Results agree with `decide` to floating-
/// point reassociation (the identity sums in a different order).
struct TemplateSession<'a> {
    model: &'a TemplateMatcher,
    /// Running Σ p_j·t_cj per class.
    dot: Vec<f64>,
    sum: f64,
    sumsq: f64,
    len: usize,
    decision: Decision,
}

impl TemplateSession<'_> {
    /// Length-normalized z-distance to class `c`'s template head at prefix
    /// length `l` (`l ≥ 1`), from the running sums.
    fn distance_at(&self, c: usize, l: usize) -> f64 {
        let lf = l as f64;
        let mu_p = self.sum / lf;
        let sd_p = (self.sumsq / lf - mu_p * mu_p).max(0.0).sqrt();
        let mu_t = self.model.cum_t[c][l] / lf;
        let sd_t = (self.model.cum_t2[c][l] / lf - mu_t * mu_t).max(0.0).sqrt();
        let p_const = sd_p <= CONSTANT_EPS;
        let t_const = sd_t <= CONSTANT_EPS;
        let d2 = match (p_const, t_const) {
            // Both z-normalize to zero vectors.
            (true, true) => 0.0,
            // One side is the zero vector; the other has ‖ẑ‖² = l.
            (true, false) | (false, true) => lf,
            (false, false) => {
                let corr = (self.dot[c] - lf * mu_t * mu_p) / (sd_t * sd_p);
                (2.0 * (lf - corr)).max(0.0)
            }
        };
        d2.sqrt() / lf.sqrt()
    }
}

impl DecisionSession for TemplateSession<'_> {
    fn push(&mut self, x: f64) -> Decision {
        if self.decision.is_predict() {
            self.len += 1;
            return self.decision; // latched: count the sample, skip the work
        }
        let model = self.model;
        let series_len = model.templates[0].len();
        if self.len < series_len {
            let j = self.len;
            self.sum += x;
            self.sumsq += x * x;
            for (acc, t) in self.dot.iter_mut().zip(&model.templates) {
                *acc += x * t[j];
            }
        }
        self.len += 1;
        let l = self.len.min(series_len);
        if self.len < model.min_prefix {
            return Decision::Wait;
        }
        let mut best: Option<(ClassLabel, f64)> = None;
        for c in 0..model.templates.len() {
            let d = self.distance_at(c, l);
            if d <= model.threshold && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((c, d));
            }
        }
        self.decision = match best {
            Some((label, d)) => Decision::Predict {
                label,
                confidence: (1.0 - d / model.threshold).clamp(0.0, 1.0),
            },
            None => Decision::Wait,
        };
        self.decision
    }

    fn decision(&self) -> Decision {
        self.decision
    }

    fn len(&self) -> usize {
        self.len
    }

    fn reset(&mut self) {
        self.dot.fill(0.0);
        self.sum = 0.0;
        self.sumsq = 0.0;
        self.len = 0;
        self.decision = Decision::Wait;
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u8(session_tags::TEMPLATE);
        enc.put_f64_slice(&self.dot);
        enc.put_f64(self.sum);
        enc.put_f64(self.sumsq);
        enc.put_usize(self.len);
        put_decision(enc, self.decision);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..5 {
                let jitter = 0.02 * i as f64;
                data.push(
                    (0..40)
                        .map(|j| {
                            let t = j as f64 / 40.0;
                            if c == 0 {
                                (std::f64::consts::TAU * t).sin() + jitter
                            } else {
                                t * 2.0 - 1.0 + jitter
                            }
                        })
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    #[test]
    fn matches_own_class_and_rejects_noise() {
        let train = toy();
        let m = TemplateMatcher::from_centroids(&train, 0.3, 10);
        // A class-0 exemplar commits correctly.
        let d = m.decide(train.series(0));
        assert_eq!(d.label(), Some(0));
        // Structureless noise is rejected (open world).
        let noise: Vec<f64> = (0..40)
            .map(|i| ((i * 2654435761_usize) % 97) as f64)
            .collect();
        assert_eq!(m.decide(&noise), Decision::Wait);
    }

    #[test]
    fn prefix_matching_is_early() {
        let train = toy();
        let m = TemplateMatcher::from_centroids(&train, 0.3, 10);
        // Half a class-1 exemplar already matches.
        let d = m.decide(&train.series(5)[..20]);
        assert_eq!(d.label(), Some(1));
    }

    #[test]
    fn calibrated_threshold_accepts_training_data() {
        let train = toy();
        let thr = TemplateMatcher::calibrate_threshold(&train, 0.95);
        let m = TemplateMatcher::from_centroids(&train, thr, 10);
        let accepted = train
            .iter()
            .filter(|(s, label)| m.decide(s).label() == Some(*label))
            .count();
        assert!(accepted >= 9, "accepted only {accepted}/10");
    }

    #[test]
    fn matcher_is_shift_and_scale_invariant() {
        let train = toy();
        let m = TemplateMatcher::from_centroids(&train, 0.3, 10);
        let moved: Vec<f64> = train.series(0).iter().map(|&v| 100.0 + 5.0 * v).collect();
        assert_eq!(m.decide(&moved).label(), Some(0));
    }

    #[test]
    fn predict_full_picks_nearest_template() {
        let train = toy();
        let m = TemplateMatcher::from_centroids(&train, 0.3, 10);
        assert_eq!(m.predict_full(train.series(1)), 0);
        assert_eq!(m.predict_full(train.series(6)), 1);
    }

    #[test]
    #[should_panic(expected = "share a non-empty length")]
    fn rejects_ragged_templates() {
        let _ = TemplateMatcher::from_templates(vec![vec![1.0, 2.0], vec![1.0]], 0.5, 2);
    }

    #[test]
    fn session_tracks_decide_within_tolerance() {
        let train = toy();
        let m = TemplateMatcher::from_centroids(&train, 0.3, 10);
        for (probe, _) in train.iter() {
            let mut s = m.session(SessionNorm::Raw);
            for t in 0..probe.len() {
                let inc = s.push(probe[t]);
                let batch = m.decide(&probe[..t + 1]);
                assert_eq!(inc.is_predict(), batch.is_predict(), "prefix {}", t + 1);
                if let (Some((li, ci)), Some((lb, cb))) =
                    (inc.label_confidence(), batch.label_confidence())
                {
                    assert_eq!(li, lb, "prefix {}", t + 1);
                    assert!((ci - cb).abs() < 1e-6, "confidence {ci} vs {cb}");
                    break; // sessions latch at the first commit
                }
            }
        }
    }

    #[test]
    fn session_is_shift_scale_invariant_like_decide() {
        let train = toy();
        let m = TemplateMatcher::from_centroids(&train, 0.3, 10);
        let probe = train.series(0);
        let moved: Vec<f64> = probe.iter().map(|&v| 100.0 + 5.0 * v).collect();
        let run = |xs: &[f64]| {
            let mut s = m.session(SessionNorm::PerPrefix);
            let mut committed = None;
            for (t, &x) in xs.iter().enumerate() {
                if let Some(lc) = s.push(x).label_confidence() {
                    committed = Some((t, lc.0));
                    break;
                }
            }
            committed
        };
        let a = run(probe);
        let b = run(&moved);
        assert_eq!(a, b, "affine-transformed stream must match identically");
        assert!(a.is_some());
    }

    #[test]
    fn session_rejects_noise_like_decide() {
        let train = toy();
        let m = TemplateMatcher::from_centroids(&train, 0.3, 10);
        let noise: Vec<f64> = (0..40)
            .map(|i| ((i * 2654435761_usize) % 97) as f64)
            .collect();
        let mut s = m.session(SessionNorm::Raw);
        for &x in &noise {
            assert_eq!(s.push(x), Decision::Wait);
        }
    }
}
