//! Instrumentation snapshots for the serving runtime, and their
//! Prometheus text exposition.

use std::fmt::Write as _;

use etsc_core::metrics::{push_scalar, HistogramSnapshot};

pub use etsc_core::metrics::{push_histogram, push_histogram_series};

/// Append one counter metric (`# HELP`/`# TYPE` preamble plus an
/// unlabelled sample) in Prometheus text exposition format. Shared by
/// every layer that exports counters — the serving runtime here, retry
/// and failover counters in the wire crate — so all exposition text stays
/// format-identical: this, [`push_gauge`], and the re-exported
/// [`push_histogram`] family all delegate to the single formatting path
/// in [`etsc_core::metrics`].
pub fn push_counter(out: &mut String, name: &str, help: &str, value: u64) {
    push_scalar(out, name, help, "counter", value);
}

/// Append one gauge metric in Prometheus text exposition format. See
/// [`push_counter`].
pub fn push_gauge(out: &mut String, name: &str, help: &str, value: u64) {
    push_scalar(out, name, help, "gauge", value);
}

/// Counters for one shard, as of a [`stats`](crate::Runtime::stats) call.
///
/// Per-shard counters describe the **current topology**: they start at zero
/// when the shard is created (at construction, after a
/// [`rebalance`](crate::Runtime::rebalance), or at recovery) — the work done
/// by previous topologies is folded into the runtime-level totals on
/// [`ServeStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index (0-based).
    pub shard: usize,
    /// Streams currently owned by this shard.
    pub streams: usize,
    /// Records waiting in this shard's queue right now.
    pub queued: usize,
    /// Largest queue depth this shard has seen — the number to compare with
    /// the configured capacity when sizing backpressure.
    pub queue_high_water: usize,
    /// Samples pushed into this shard's monitors.
    pub pushes: u64,
    /// Alarms produced by this shard's monitors.
    pub alarms: u64,
}

/// A whole-runtime metrics snapshot from [`stats`](crate::Runtime::stats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Per-shard breakdown for the current topology, by shard index.
    pub shards: Vec<ShardStats>,
    /// Streams currently live across all shards.
    pub streams: usize,
    /// Total samples pushed into monitors over the runtime's life
    /// (rebalances and recoveries included).
    pub pushes: u64,
    /// Total alarms produced over the runtime's life.
    pub alarms: u64,
    /// Records accepted by [`ingest`](crate::Runtime::ingest) over the
    /// runtime's life (`pushes` lags this by whatever is still queued).
    pub ingested: u64,
    /// Alarms produced but not yet returned by a
    /// [`drain`](crate::Runtime::drain) call.
    pub pending_alarms: usize,
    /// Batches rejected under [`OverflowPolicy::Reject`](crate::OverflowPolicy::Reject).
    pub rejected_batches: u64,
    /// Tagged batches skipped by [`ingest_tagged`](crate::Runtime::ingest_tagged)
    /// because the client's cursor showed them already applied — each one is
    /// a retry duplicate that exactly-once delivery absorbed.
    pub duplicate_batches: u64,
    /// Live total queue depth across all shards, maintained continuously at
    /// every ingest, reject, and drain — between drains this reflects the
    /// actual backlog (unlike the per-shard snapshots, it needs no
    /// [`stats`](crate::Runtime::stats) walk to stay fresh).
    pub queue_depth: u64,
    /// Runtime-lifetime high-water mark of [`queue_depth`](Self::queue_depth)
    /// (per-shard marks reset with the topology; this one never does).
    pub queue_depth_high_water: u64,
    /// Completed [`rebalance`](crate::Runtime::rebalance) calls.
    pub rebalances: u64,
    /// Streams that crossed shards via the snapshot/resume byte path.
    pub migrated_streams: u64,
    /// Checkpoints written (explicit and periodic).
    pub checkpoints: u64,
    /// Size in bytes of the most recent runtime-state checkpoint envelope
    /// (0 before the first checkpoint).
    pub last_checkpoint_bytes: usize,
    /// Latency distribution of whole drain cycles (one observation per
    /// [`drain`](crate::Runtime::drain)/flush that found queued work),
    /// in nanoseconds. Empty when the runtime's clock is disabled.
    pub drain_cycle_ns: HistogramSnapshot,
    /// Latency distribution of individual monitor pushes, sampled 1-in-8
    /// per shard (see [`crate::Runtime::set_clock`]), in nanoseconds.
    pub push_ns: HistogramSnapshot,
    /// Distribution of checkpoint pause times (the stop-the-world span of
    /// [`checkpoint_state`](crate::Runtime::checkpoint_state)), in
    /// nanoseconds.
    pub checkpoint_pause_ns: HistogramSnapshot,
    /// Distribution of checkpoint envelope sizes, in bytes (recorded for
    /// every checkpoint regardless of clock mode).
    pub checkpoint_bytes: HistogramSnapshot,
    /// Latency distribution of stream-migration operations (rebalances,
    /// exports, imports), in nanoseconds.
    pub migration_ns: HistogramSnapshot,
}

impl ServeStats {
    /// Render this snapshot in the Prometheus text exposition format
    /// (version 0.0.4): one `# HELP`/`# TYPE` preamble per metric, runtime
    /// totals as unlabelled samples, per-shard values labelled
    /// `{shard="<index>"}`.
    ///
    /// Counter metrics carry the conventional `_total` suffix; queue
    /// high-water marks and live-stream counts are gauges. The serving
    /// node (`etsc-net`) answers its `Stats` request with exactly this
    /// text, so any Prometheus-compatible scraper can consume a node
    /// without a translation layer.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter =
            |name: &str, help: &str, value: u64| push_counter(&mut out, name, help, value);
        counter(
            "etsc_serve_ingested_total",
            "Records accepted by ingest over the runtime's life.",
            self.ingested,
        );
        counter(
            "etsc_serve_pushes_total",
            "Samples pushed into stream monitors over the runtime's life.",
            self.pushes,
        );
        counter(
            "etsc_serve_alarms_total",
            "Alarms produced over the runtime's life.",
            self.alarms,
        );
        counter(
            "etsc_serve_rejected_batches_total",
            "Batches rejected under the Reject overflow policy.",
            self.rejected_batches,
        );
        counter(
            "etsc_serve_duplicate_batches_total",
            "Tagged ingest batches skipped as already-applied retry duplicates.",
            self.duplicate_batches,
        );
        counter(
            "etsc_serve_rebalances_total",
            "Completed rebalance calls.",
            self.rebalances,
        );
        counter(
            "etsc_serve_migrated_streams_total",
            "Streams that crossed shards or nodes via the snapshot byte path.",
            self.migrated_streams,
        );
        counter(
            "etsc_serve_checkpoints_total",
            "Checkpoints written (explicit and periodic).",
            self.checkpoints,
        );
        let mut gauge =
            |name: &str, help: &str, value: u64| push_gauge(&mut out, name, help, value);
        gauge(
            "etsc_serve_streams",
            "Streams currently live across all shards.",
            self.streams as u64,
        );
        gauge(
            "etsc_serve_pending_alarms",
            "Alarms produced but not yet returned by a drain.",
            self.pending_alarms as u64,
        );
        gauge(
            "etsc_serve_queue_depth",
            "Live total queue depth across all shards (updated at ingest/reject/drain).",
            self.queue_depth,
        );
        gauge(
            "etsc_serve_queue_depth_high_water",
            "Runtime-lifetime high-water mark of the live queue depth.",
            self.queue_depth_high_water,
        );
        gauge(
            "etsc_serve_last_checkpoint_bytes",
            "Size of the most recent runtime-state checkpoint envelope.",
            self.last_checkpoint_bytes as u64,
        );
        gauge(
            "etsc_serve_shards",
            "Shards in the current topology.",
            self.shards.len() as u64,
        );
        let mut histogram = |name: &str, help: &str, snap: &HistogramSnapshot| {
            push_histogram(&mut out, name, help, snap)
        };
        histogram(
            "etsc_serve_drain_cycle_ns",
            "Drain-cycle latency in nanoseconds (one observation per flush with queued work).",
            &self.drain_cycle_ns,
        );
        histogram(
            "etsc_serve_push_ns",
            "Per-push monitor latency in nanoseconds, sampled 1-in-8 pushes per shard.",
            &self.push_ns,
        );
        histogram(
            "etsc_serve_checkpoint_pause_ns",
            "Checkpoint pause (stop-the-world span of a state checkpoint) in nanoseconds.",
            &self.checkpoint_pause_ns,
        );
        histogram(
            "etsc_serve_checkpoint_bytes",
            "Checkpoint envelope sizes in bytes.",
            &self.checkpoint_bytes,
        );
        histogram(
            "etsc_serve_migration_ns",
            "Stream-migration latency (rebalance/export/import) in nanoseconds.",
            &self.migration_ns,
        );
        let mut labelled =
            |name: &str, help: &str, kind: &str, value: &dyn Fn(&ShardStats) -> u64| {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} {kind}");
                for s in &self.shards {
                    let _ = writeln!(out, "{name}{{shard=\"{}\"}} {}", s.shard, value(s));
                }
            };
        labelled(
            "etsc_serve_shard_streams",
            "Streams currently owned by the shard.",
            "gauge",
            &|s| s.streams as u64,
        );
        labelled(
            "etsc_serve_shard_queued",
            "Records waiting in the shard's queue right now.",
            "gauge",
            &|s| s.queued as u64,
        );
        labelled(
            "etsc_serve_shard_queue_high_water",
            "Largest queue depth the shard has seen in the current topology.",
            "gauge",
            &|s| s.queue_high_water as u64,
        );
        labelled(
            "etsc_serve_shard_pushes_total",
            "Samples pushed into the shard's monitors in the current topology.",
            "counter",
            &|s| s.pushes,
        );
        labelled(
            "etsc_serve_shard_alarms_total",
            "Alarms produced by the shard's monitors in the current topology.",
            "counter",
            &|s| s.alarms,
        );
        out
    }
}
