//! Instrumentation snapshots for the serving runtime.

/// Counters for one shard, as of a [`stats`](crate::Runtime::stats) call.
///
/// Per-shard counters describe the **current topology**: they start at zero
/// when the shard is created (at construction, after a
/// [`rebalance`](crate::Runtime::rebalance), or at recovery) — the work done
/// by previous topologies is folded into the runtime-level totals on
/// [`ServeStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index (0-based).
    pub shard: usize,
    /// Streams currently owned by this shard.
    pub streams: usize,
    /// Records waiting in this shard's queue right now.
    pub queued: usize,
    /// Largest queue depth this shard has seen — the number to compare with
    /// the configured capacity when sizing backpressure.
    pub queue_high_water: usize,
    /// Samples pushed into this shard's monitors.
    pub pushes: u64,
    /// Alarms produced by this shard's monitors.
    pub alarms: u64,
}

/// A whole-runtime metrics snapshot from [`stats`](crate::Runtime::stats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Per-shard breakdown for the current topology, by shard index.
    pub shards: Vec<ShardStats>,
    /// Streams currently live across all shards.
    pub streams: usize,
    /// Total samples pushed into monitors over the runtime's life
    /// (rebalances and recoveries included).
    pub pushes: u64,
    /// Total alarms produced over the runtime's life.
    pub alarms: u64,
    /// Records accepted by [`ingest`](crate::Runtime::ingest) over the
    /// runtime's life (`pushes` lags this by whatever is still queued).
    pub ingested: u64,
    /// Alarms produced but not yet returned by a
    /// [`drain`](crate::Runtime::drain) call.
    pub pending_alarms: usize,
    /// Batches rejected under [`OverflowPolicy::Reject`](crate::OverflowPolicy::Reject).
    pub rejected_batches: u64,
    /// Completed [`rebalance`](crate::Runtime::rebalance) calls.
    pub rebalances: u64,
    /// Streams that crossed shards via the snapshot/resume byte path.
    pub migrated_streams: u64,
    /// Checkpoints written (explicit and periodic).
    pub checkpoints: u64,
    /// Size in bytes of the most recent runtime-state checkpoint envelope
    /// (0 before the first checkpoint).
    pub last_checkpoint_bytes: usize,
}
