//! The serving runtime's typed error surface.
//!
//! The runtime's contract is that nothing in the ingestion or migration
//! path panics and nothing is silently dropped: a full queue under the
//! reject policy, a misconfiguration, a missing model during recovery — all
//! surface as a [`ServeError`] variant precise enough for the caller to act
//! on (retry the batch, fix the config, re-seed the registry).

use std::fmt;

use etsc_persist::PersistError;

/// Errors produced by the serving runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A configuration value is unusable (zero shards, zero queue capacity,
    /// zero anchor stride, zero checkpoint interval, …).
    BadConfig(String),
    /// Under [`OverflowPolicy::Reject`](crate::OverflowPolicy::Reject), the
    /// batch would overflow a shard's bounded queue. **No record of the
    /// batch was enqueued** — the rejection is atomic, so the caller can
    /// retry the whole batch after draining.
    QueueFull {
        /// Shard whose queue would overflow.
        shard: usize,
        /// Stream id of the first record that did not fit.
        stream: u64,
        /// The configured per-shard queue capacity.
        capacity: usize,
    },
    /// During [`Runtime::recover`](crate::Runtime::recover), a stream's
    /// anchor snapshot names a model that the registry no longer holds. The
    /// stream id pinpoints which in-flight stream is stranded.
    ModelMissing {
        /// Stream whose snapshot references the missing model.
        stream: u64,
        /// The registry entry name the snapshot expects.
        model: String,
    },
    /// A per-stream operation (export, migration) named a stream that is
    /// not live in this runtime.
    UnknownStream {
        /// The stream id that has no monitor.
        stream: u64,
    },
    /// An import ([`Runtime::import_streams`](crate::Runtime::import_streams))
    /// would overwrite a stream that is already live in this runtime. The
    /// import is refused atomically — no stream of the batch was added.
    DuplicateStream {
        /// The stream id that already exists.
        stream: u64,
    },
    /// A snapshot/restore or registry operation failed.
    Persist(PersistError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadConfig(msg) => write!(f, "invalid serve configuration: {msg}"),
            ServeError::QueueFull {
                shard,
                stream,
                capacity,
            } => write!(
                f,
                "shard {shard} queue is full (capacity {capacity}); batch rejected at stream \
                 {stream} with no records enqueued"
            ),
            ServeError::ModelMissing { stream, model } => write!(
                f,
                "cannot recover stream {stream}: model {model:?} is absent from the registry"
            ),
            ServeError::UnknownStream { stream } => {
                write!(f, "stream {stream} is not live in this runtime")
            }
            ServeError::DuplicateStream { stream } => write!(
                f,
                "stream {stream} is already live in this runtime; import refused with no \
                 streams added"
            ),
            ServeError::Persist(e) => write!(f, "persistence error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for ServeError {
    fn from(e: PersistError) -> Self {
        ServeError::Persist(e)
    }
}
