#![warn(missing_docs)]

//! # etsc-serve
//!
//! An in-process, sharded serving runtime for early-classification
//! monitors: the layer that turns "one
//! [`StreamMonitor`](etsc_stream::StreamMonitor) driven from test code"
//! into "many thousands of concurrent streams behind one API".
//!
//! The stack below this crate already provides everything a serving layer
//! needs per stream — incremental
//! [`DecisionSession`](etsc_early::DecisionSession)s (amortized O(1) per
//! sample), anchor-based monitors, and byte-exact checkpoint/restore of
//! in-flight state (`etsc-persist`). What it lacked was ownership and
//! routing: who holds a million monitors, how does a sample find its
//! monitor, and how does stream state move when the worker topology
//! changes. [`Runtime`] answers all three:
//!
//! * **Routing** — [`ShardRouter`] hashes stream ids
//!   ([`etsc_core::hash`]) onto N shards; each shard owns its streams'
//!   monitors and a bounded record queue.
//! * **Batched ingestion** — [`Runtime::ingest`] routes record batches into
//!   the queues with an explicit [`OverflowPolicy`] (apply backpressure by
//!   draining in place, or reject the batch atomically with a typed error —
//!   never panic, never drop); [`Runtime::drain`] services every shard's
//!   queue on its own worker thread (`etsc_core::parallel`, honoring
//!   `ETSC_THREADS` with an explicit override for tests) and returns alarms
//!   in a deterministic total order.
//! * **Live rebalancing** — [`Runtime::rebalance`] re-shards on the fly,
//!   shipping each re-routed stream between workers as a `(model name,
//!   anchor snapshot)` pair via
//!   [`snapshot_anchors`](etsc_stream::StreamMonitor::snapshot_anchors) /
//!   [`resume_anchors`](etsc_stream::StreamMonitor::resume_anchors).
//!   Refractory clocks travel too, so
//!   per-stream alarm sequences are unchanged across a migration —
//!   bit-exact under the raw norm.
//! * **Crash recovery** — [`Runtime::checkpoint`] persists the model plus
//!   every stream's anchors (and undelivered alarms) to a
//!   [`ModelRegistry`](etsc_persist::ModelRegistry);
//!   [`Runtime::recover`] rebuilds the runtime in a fresh process and
//!   continues every alarm sequence exactly. Periodic checkpoints hang off
//!   ingest via [`Runtime::enable_checkpoints`].
//! * **Metrics** — [`Runtime::stats`] snapshots per-shard and
//!   runtime-lifetime counters into a [`ServeStats`] report, and
//!   [`ServeStats::render_prometheus`] emits it in the Prometheus text
//!   exposition format.
//! * **Cross-runtime migration** — [`Runtime::export_streams`] /
//!   [`Runtime::import_streams`] move live streams between runtimes (and,
//!   via `etsc-net`, between machines) as two-phase batches of `(stream
//!   id, anchor snapshot)` bytes, and the [`StreamService`] trait abstracts
//!   the ingest/drain surface so drivers run unchanged against a local
//!   [`Runtime`], a remote node, or a whole cluster.
//!
//! See the [`runtime`] module docs for the execution model and the
//! determinism contract (per-stream alarm sequences are invariant under
//! shard count, worker count, and mid-run rebalancing).
//!
//! ```
//! use etsc_serve::{OverflowPolicy, Record, Runtime, RuntimeConfig};
//! use etsc_stream::{StreamMonitorConfig, StreamNorm};
//! # use etsc_early::{Decision, EarlyClassifier};
//! # struct Edge;
//! # impl EarlyClassifier for Edge {
//! #     fn n_classes(&self) -> usize { 1 }
//! #     fn series_len(&self) -> usize { 16 }
//! #     fn decide(&self, p: &[f64]) -> Decision {
//! #         if p.len() >= 4 && p.last().is_some_and(|&x| x > 0.5) {
//! #             Decision::Predict { label: 0, confidence: 1.0 }
//! #         } else { Decision::Wait }
//! #     }
//! #     fn predict_full(&self, _s: &[f64]) -> usize { 0 }
//! # }
//! # let model = Edge;
//! let mut rt = Runtime::new(
//!     &model,
//!     RuntimeConfig {
//!         shards: 4,
//!         monitor: StreamMonitorConfig {
//!             anchor_stride: 1,
//!             norm: StreamNorm::Raw,
//!             refractory: 100,
//!         },
//!         ..RuntimeConfig::default()
//!     },
//! )
//! .unwrap();
//! // Interleaved traffic from 8 streams: stream 3 carries a pulse.
//! for t in 0..32 {
//!     let batch: Vec<Record> = (0..8)
//!         .map(|id| Record::new(id, if id == 3 && t >= 20 { 1.0 } else { 0.0 }))
//!         .collect();
//!     rt.ingest(&batch).unwrap();
//! }
//! let alarms = rt.drain();
//! assert!(alarms.iter().all(|a| a.stream == 3));
//! assert!(!alarms.is_empty());
//! ```

pub mod dedup;
pub mod error;
pub mod router;
pub mod runtime;
pub mod service;
pub mod stats;

pub use dedup::DedupCursor;
pub use error::ServeError;
pub use router::ShardRouter;
pub use runtime::{OverflowPolicy, Record, Runtime, RuntimeConfig, StreamAlarm, SERVE_STATE_KIND};
pub use service::StreamService;
pub use stats::{ServeStats, ShardStats};
