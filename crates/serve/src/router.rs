//! Deterministic stream → shard routing.

use etsc_core::hash;

/// Routes stream ids to shards by hashing the id
/// ([`etsc_core::hash::fnv1a_u64`]) and reducing modulo the shard count.
///
/// The route is a pure function of `(stream, shard_count)` — stable across
/// processes, platforms, and releases — so any host (an ingester, a
/// rebalancer, a recovery process) computes the same assignment without
/// coordination. Changing the shard count changes most routes; the runtime's
/// [`rebalance`](crate::Runtime::rebalance) handles that by migrating the
/// affected streams' anchor state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` workers.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`; [`Runtime`](crate::Runtime) validates its
    /// shard count before constructing one.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "shard count must be positive");
        Self { shards }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `stream` (in `0..shards()`).
    pub fn route(&self, stream: u64) -> usize {
        hash::shard_of(stream, self.shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_deterministic_and_in_range() {
        for shards in [1usize, 2, 7, 16] {
            let r = ShardRouter::new(shards);
            assert_eq!(r.shards(), shards);
            for id in [0u64, 1, 42, 1 << 40, u64::MAX] {
                let s = r.route(id);
                assert!(s < shards);
                assert_eq!(s, ShardRouter::new(shards).route(id));
            }
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        for id in 0..100u64 {
            assert_eq!(r.route(id), 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shards_panics() {
        ShardRouter::new(0);
    }
}
