//! The sharded serving runtime: many streams, per-shard workers, batched
//! ingestion, live rebalancing, and crash recovery.
//!
//! # Execution model
//!
//! A [`Runtime`] owns N **shards**; each shard owns the
//! [`StreamMonitor`]s of the streams routed to it (see
//! [`ShardRouter`]) plus a bounded queue of not-yet-processed records.
//! [`ingest`](Runtime::ingest) only *routes* — it appends each record to
//! its shard's queue (auto-opening unknown streams) and applies the
//! configured [`OverflowPolicy`] when a queue is full.
//! [`drain`](Runtime::drain) does the work: every shard's queue is
//! processed by a worker thread (scoped fan-out via [`etsc_core::parallel`],
//! worker count from `ETSC_THREADS` or the explicit
//! [`RuntimeConfig::threads`] override), in queue order, and the produced
//! alarms are returned sorted by the global ingest sequence number.
//!
//! Batching is what amortizes the fan-out: a scoped spawn costs ~10µs per
//! worker, so the intended shape is "ingest a few thousand records, drain
//! once", not "drain after every sample". Correctness never depends on the
//! batching: records of one stream are processed in ingest order regardless
//! of batch boundaries, shard count, or worker count.
//!
//! # Determinism
//!
//! Each stream's monitor sees exactly the samples ingested for that stream,
//! in order — no matter which shard owns it or how many worker threads
//! service the shards. Per-stream alarm sequences are therefore **invariant
//! under the shard count, the worker count, and mid-run rebalancing**
//! (bit-exact for [`StreamNorm::Raw`](etsc_stream::StreamNorm::Raw); the
//! per-prefix norm is equally deterministic, its documented fp tolerance
//! applies only to comparisons against offline batch renormalization).
//! The tagged global sequence numbers make even the *interleaving*
//! reproducible: [`drain`](Runtime::drain) output is sorted by the sequence
//! number of the triggering sample.
//!
//! # Migration and recovery
//!
//! Both reuse the persistence substrate rather than inventing a second
//! serialization: a stream moves between shards — or across a process
//! boundary — as a `(model name, anchor snapshot)` pair, exactly the
//! follow-on the checkpoint layer was built for.
//! [`rebalance`](Runtime::rebalance) drains, then ships every re-routed
//! stream through [`StreamMonitor::snapshot_anchors`] /
//! [`StreamMonitor::resume_anchors`] (refractory clocks included), so alarm
//! sequences are unchanged across a migration.
//! [`checkpoint`](Runtime::checkpoint) persists the fitted model plus every
//! stream's anchor snapshot (and any undelivered alarms) into a
//! [`ModelRegistry`]; [`recover`](Runtime::recover) rebuilds the whole
//! runtime from those bytes in a fresh process.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use etsc_core::metrics::{Clock, Gauge, Histogram};
use etsc_core::parallel;
use etsc_core::trace::{self, EventKind, Severity, SpanKind, TraceContext, Tracer};
use etsc_early::EarlyClassifier;
use etsc_persist::{Encoder, ModelRegistry, Persist, PersistError};
use etsc_stream::{Alarm, StreamMonitor, StreamMonitorConfig, StreamNorm};

use crate::error::ServeError;
use crate::router::ShardRouter;
use crate::stats::{ServeStats, ShardStats};

/// Envelope kind tag for [`Runtime::checkpoint`] state.
pub const SERVE_STATE_KIND: &str = "ServeRuntimeState";

/// Registry entry name holding the runtime state for model `name` (the
/// model itself lives under `name`).
fn state_entry_name(model_name: &str) -> String {
    format!("{model_name}.serve")
}

/// What [`Runtime::ingest`] does when a record's shard queue is full.
///
/// Neither policy panics and neither drops data silently — the explicit
/// backpressure contract of the ingestion path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Apply backpressure by doing the work: the runtime drains every
    /// shard's queue in place (alarms are buffered for the next
    /// [`drain`](Runtime::drain)) and then enqueues the record. Ingestion
    /// never fails for capacity reasons; the queue bound caps memory, not
    /// throughput.
    Block,
    /// Reject the batch with [`ServeError::QueueFull`]. The rejection is
    /// **atomic** — no record of the offending batch is enqueued — so the
    /// caller can drain and retry the whole batch.
    Reject,
}

/// Serving runtime configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Number of shards (each serviced by one worker during a drain).
    pub shards: usize,
    /// Bounded per-shard queue capacity, in records.
    pub queue_capacity: usize,
    /// Policy when a shard queue is full at ingest time.
    pub overflow: OverflowPolicy,
    /// Monitor configuration applied to every stream.
    pub monitor: StreamMonitorConfig,
    /// Registry name the fitted model is checkpointed under; each stream's
    /// snapshot references it, and recovery demands it be present.
    pub model_name: String,
    /// Explicit worker-thread count for drains (tests pin 1/2/7 here);
    /// `None` resolves via [`etsc_core::parallel::num_threads`]
    /// (`ETSC_THREADS`, default all cores). Worker count never changes
    /// results, only wall-clock.
    pub threads: Option<usize>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 1024,
            overflow: OverflowPolicy::Block,
            monitor: StreamMonitorConfig::default(),
            model_name: "model".to_string(),
            threads: None,
        }
    }
}

/// One ingested sample: a stream id and its next value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Stream the sample belongs to.
    pub stream: u64,
    /// The sample.
    pub value: f64,
}

impl Record {
    /// Convenience constructor.
    pub fn new(stream: u64, value: f64) -> Self {
        Self { stream, value }
    }
}

/// An alarm attributed to a stream, tagged with the global ingest sequence
/// number of the sample that triggered it.
///
/// `seq` makes drained output totally ordered and reproducible: the same
/// traffic yields the same sorted alarm list at any shard/worker count.
/// `alarm.time` remains the *per-stream* sample index (each stream has its
/// own clock).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamAlarm {
    /// Stream that alarmed.
    pub stream: u64,
    /// Global ingest sequence number of the triggering sample.
    pub seq: u64,
    /// The monitor alarm (per-stream time/anchor/label/confidence).
    pub alarm: Alarm,
}

/// A routed-but-unprocessed record in a shard queue.
struct Queued {
    seq: u64,
    stream: u64,
    value: f64,
}

/// One shard: the monitors it owns (deterministically ordered by stream
/// id) and its bounded record queue.
struct Shard<'a, C: EarlyClassifier + ?Sized> {
    monitors: BTreeMap<u64, StreamMonitor<'a, C>>,
    queue: Vec<Queued>,
    pushes: u64,
    alarms: u64,
    queue_high_water: usize,
    /// Trace state: (trace id, enqueue span id) of the most recent traced
    /// ingest that routed into this shard, consumed by the next queue
    /// processing, which parents its `ShardDrain`/`AlarmEmit` spans to the
    /// enqueue span. One slot per shard — when several traced batches land
    /// between drains the latest wins, a deliberate coarsening that keeps
    /// the hot ingest path at one word-sized store per record (the
    /// tracing-overhead A/B in bench_serve holds the whole path under
    /// 5%). Only populated while a tracer is installed and enabled.
    trace: Option<(u64, u64)>,
}

impl<'a, C: EarlyClassifier + ?Sized> Shard<'a, C> {
    fn new() -> Self {
        Self {
            monitors: BTreeMap::new(),
            queue: Vec::new(),
            pushes: 0,
            alarms: 0,
            queue_high_water: 0,
            trace: None,
        }
    }

    /// Process every queued record in ingest order. Runs on one worker
    /// thread during a drain; shards are independent, so servicing them
    /// concurrently cannot change any stream's sample order. `clock` and
    /// `push_ns` come from the owning runtime: push latency is sampled
    /// every [`PUSH_SAMPLE_EVERY`]-th push per shard (the sampling
    /// decision depends only on the shard's push counter, never on the
    /// clock, so instrumentation cannot perturb what any monitor sees).
    fn process_queue(
        &mut self,
        clock: &Clock,
        push_ns: &Histogram,
        tracer: Option<&Tracer>,
    ) -> Vec<StreamAlarm> {
        let timing = !clock.is_disabled();
        // Trace state exists only if a traced ingest routed into this
        // shard; with none, the drain does zero tracing work (not even a
        // clock read).
        let tracer = tracer.filter(|t| t.enabled() && self.trace.is_some());
        let trace_start = tracer.map_or(0, |t| t.start());
        let drained = self.queue.len() as u64;
        let mut out = Vec::new();
        for q in self.queue.drain(..) {
            // Ingest creates the monitor when it routes the record, and
            // `close_stream` drains queues before removing one, so a queued
            // record always finds its monitor; a third-party bug upstream
            // degrades to skipping the orphan record rather than panicking
            // a worker (which would poison the whole drain).
            let Some(monitor) = self.monitors.get_mut(&q.stream) else {
                debug_assert!(false, "queued record for unknown stream {}", q.stream);
                continue;
            };
            self.pushes += 1;
            let sampled = timing && self.pushes.is_multiple_of(PUSH_SAMPLE_EVERY);
            let started = if sampled { clock.now_ns() } else { 0 };
            let alarm = monitor.push(q.value);
            if sampled {
                push_ns.record(clock.now_ns().saturating_sub(started));
            }
            if let Some(alarm) = alarm {
                self.alarms += 1;
                out.push(StreamAlarm {
                    stream: q.stream,
                    seq: q.seq,
                    alarm,
                });
            }
        }
        if let (Some(tracer), Some((trace_id, enq_span))) = (tracer, self.trace.take()) {
            // One ShardDrain span for the whole pass, parented to the
            // enqueue span of the shard's latest traced ingest; each alarm
            // the drain produced becomes an instant AlarmEmit span under
            // the drain span — which is how one trace id connects
            // client → shard → alarm.
            let drain_span = tracer.span(
                SpanKind::ShardDrain,
                trace_id,
                enq_span,
                trace_start,
                drained,
            );
            for a in &out {
                let at = tracer.start();
                tracer.span_at(SpanKind::AlarmEmit, trace_id, drain_span, at, at, a.seq);
            }
        }
        out
    }
}

/// Per-push latency is sampled once every this many pushes per shard: two
/// clock reads cost ~40-60 ns against a ~500 ns push, so sampling 1-in-8
/// keeps the measured instrumentation overhead around 1% (bench_serve
/// asserts < 5%) while a busy shard still collects thousands of samples
/// per second.
const PUSH_SAMPLE_EVERY: u64 = 8;

/// The runtime's latency/size histograms. Lock-free (`&self` recording),
/// shared by reference with the shard workers during a parallel drain.
struct RuntimeMetrics {
    drain_cycle_ns: Histogram,
    push_ns: Histogram,
    checkpoint_pause_ns: Histogram,
    checkpoint_bytes: Histogram,
    migration_ns: Histogram,
    /// Live total queue depth across all shards, updated at every ingest,
    /// reject, and drain — a scraper between drains sees the actual
    /// backlog, not a stale drain-time value.
    queue_depth: Gauge,
    /// High-water mark of the live depth over the runtime's life (survives
    /// rebalances, unlike the per-shard topology-scoped marks).
    queue_depth_high_water: Gauge,
}

impl RuntimeMetrics {
    fn new() -> Self {
        Self {
            drain_cycle_ns: Histogram::new(),
            push_ns: Histogram::new(),
            checkpoint_pause_ns: Histogram::new(),
            checkpoint_bytes: Histogram::new(),
            migration_ns: Histogram::new(),
            queue_depth: Gauge::new(),
            queue_depth_high_water: Gauge::new(),
        }
    }
}

/// Periodic-checkpoint schedule installed by
/// [`Runtime::enable_checkpoints`].
struct AutoCheckpoint {
    registry: ModelRegistry,
    every: u64,
    last_at: u64,
}

/// The sharded multi-stream serving runtime (see the [module docs](self)).
pub struct Runtime<'a, C: EarlyClassifier + ?Sized> {
    clf: &'a C,
    cfg: RuntimeConfig,
    router: ShardRouter,
    shards: Vec<Shard<'a, C>>,
    /// Global ingest sequence number of the next record.
    seq: u64,
    /// Alarms produced by implicit flushes (backpressure, rebalance,
    /// checkpoint), awaiting the next [`drain`](Self::drain).
    pending: Vec<StreamAlarm>,
    auto: Option<AutoCheckpoint>,
    /// Per-client ingest cursors: the highest batch sequence number applied
    /// for each tagged client (see [`ingest_tagged`](Self::ingest_tagged)).
    /// Checkpointed, so dedup survives crash + recovery.
    clients: BTreeMap<u64, u64>,
    // Runtime-lifetime counters (per-shard counters reset with topology).
    ingested: u64,
    rejected_batches: u64,
    duplicate_batches: u64,
    rebalances: u64,
    migrated_streams: u64,
    checkpoints: u64,
    last_checkpoint_bytes: usize,
    retired_pushes: u64,
    retired_alarms: u64,
    /// Timing source for the latency histograms below. Monotonic by
    /// default; swap in a manual clock for deterministic tests or a
    /// disabled one to measure the uninstrumented baseline
    /// ([`set_clock`](Self::set_clock)). Alarm content never reads it.
    clock: Clock,
    metrics: RuntimeMetrics,
    /// Optional distributed-tracing handle ([`set_tracer`](Self::set_tracer)).
    /// Like the clock, it only feeds telemetry — alarm content never
    /// depends on whether (or how) the runtime is traced.
    tracer: Option<Tracer>,
    /// The most recent wire trace context a traced ingest carried; the
    /// parent for checkpoint/migration spans, so maintenance work triggered
    /// by a traced record stays connected to its trace.
    last_ctx: Option<TraceContext>,
}

impl<'a, C: EarlyClassifier + ?Sized> Runtime<'a, C> {
    /// Build an empty runtime over a fitted classifier.
    pub fn new(clf: &'a C, cfg: RuntimeConfig) -> Result<Self, ServeError> {
        if cfg.shards == 0 {
            return Err(ServeError::BadConfig("shard count must be ≥ 1".into()));
        }
        if cfg.queue_capacity == 0 {
            return Err(ServeError::BadConfig("queue capacity must be ≥ 1".into()));
        }
        if cfg.monitor.anchor_stride == 0 {
            return Err(ServeError::BadConfig("anchor stride must be ≥ 1".into()));
        }
        if cfg.threads == Some(0) {
            return Err(ServeError::BadConfig(
                "thread override must be ≥ 1 (use None for the ETSC_THREADS default)".into(),
            ));
        }
        let router = ShardRouter::new(cfg.shards);
        let shards = (0..cfg.shards).map(|_| Shard::new()).collect();
        Ok(Self {
            clf,
            cfg,
            router,
            shards,
            seq: 0,
            pending: Vec::new(),
            auto: None,
            clients: BTreeMap::new(),
            ingested: 0,
            rejected_batches: 0,
            duplicate_batches: 0,
            rebalances: 0,
            migrated_streams: 0,
            checkpoints: 0,
            last_checkpoint_bytes: 0,
            retired_pushes: 0,
            retired_alarms: 0,
            clock: Clock::monotonic(),
            metrics: RuntimeMetrics::new(),
            tracer: None,
            last_ctx: None,
        })
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Replace the timing source behind the latency histograms (see
    /// [`ServeStats`] for what is measured). The default is
    /// [`Clock::monotonic`]; hand in [`Clock::manual`] for deterministic
    /// timing in tests, or [`Clock::disabled`] to skip every timing read
    /// (the baseline half of the instrumentation-overhead A/B in
    /// `bench_serve`). The clock only feeds telemetry — alarm sequences
    /// are identical under every clock mode.
    pub fn set_clock(&mut self, clock: Clock) {
        self.clock = clock;
    }

    /// The clock currently feeding the latency histograms (clones share
    /// the time source, so a test can step a manual clock it installed).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Install a distributed-tracing handle. Clones share buffers, so
    /// handing the same tracer to this runtime and its node collects one
    /// process-wide span set. A tracer over a [`Clock::disabled`] clock
    /// (or no tracer at all — the default) records nothing and costs
    /// nothing; either way alarm sequences are bit-identical.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// The installed tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Render this runtime's retained spans as Chrome `trace_event` JSON
    /// stamped with `process`. Without a tracer, a complete empty trace
    /// document (so callers can always hand the result to a viewer).
    pub fn export_trace(&self, process: &str) -> String {
        match &self.tracer {
            Some(t) => t.export_chrome(process),
            None => trace::export::chrome_trace_json(process, &[], 0),
        }
    }

    /// Current shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Streams currently live across all shards.
    pub fn stream_count(&self) -> usize {
        self.shards.iter().map(|s| s.monitors.len()).sum()
    }

    /// Records routed but not yet processed, across all shard queues.
    pub fn queued(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// True if a monitor exists for `stream`.
    pub fn contains_stream(&self, stream: u64) -> bool {
        self.shards
            .get(self.router.route(stream))
            .is_some_and(|s| s.monitors.contains_key(&stream))
    }

    /// Worker count for the next drain.
    fn worker_threads(&self) -> usize {
        self.cfg
            .threads
            .unwrap_or_else(parallel::num_threads)
            .max(1)
    }

    /// Open a monitor for `stream` without ingesting anything; returns
    /// `false` if the stream was already live. (Ingest auto-opens unknown
    /// streams, so this is only needed to pre-warm assignments.)
    pub fn open_stream(&mut self, stream: u64) -> bool {
        // `route` always lands below `shards.len()` (router and shard vec
        // change together); the `else` arm is unreachable but panic-free.
        let Some(shard) = self.shards.get_mut(self.router.route(stream)) else {
            return false;
        };
        match shard.monitors.entry(stream) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(StreamMonitor::new(self.clf, self.cfg.monitor));
                true
            }
        }
    }

    /// Retire `stream` and discard its in-flight anchors; returns `false`
    /// if no such stream was live. Pending queues are drained first (the
    /// produced alarms are buffered for the next [`drain`](Self::drain)),
    /// so no already-ingested sample of the stream is silently dropped.
    pub fn close_stream(&mut self, stream: u64) -> bool {
        self.flush_all();
        self.shards
            .get_mut(self.router.route(stream))
            .is_some_and(|s| s.monitors.remove(&stream).is_some())
    }

    /// Route a batch of records into the shard queues.
    ///
    /// Unknown stream ids auto-open a monitor. Records are *not* processed
    /// here (see [`drain`](Self::drain)) unless a queue fills under
    /// [`OverflowPolicy::Block`], which flushes in place. Under
    /// [`OverflowPolicy::Reject`] an overflowing batch is refused atomically
    /// with [`ServeError::QueueFull`]. Samples of one stream are processed
    /// in ingest order, across any batching, sharding, or threading.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] means **no record was enqueued** — drain
    /// and retry the whole batch. Any other error can only come from a due
    /// periodic checkpoint (see
    /// [`enable_checkpoints`](Self::enable_checkpoints)) failing to write;
    /// the batch **was fully accepted** — do not re-ingest it. The failed
    /// checkpoint is not retried until the next interval elapses.
    pub fn ingest(&mut self, batch: &[Record]) -> Result<(), ServeError> {
        self.ingest_ctx(batch, None)
    }

    /// [`ingest`](Self::ingest) carrying an optional wire
    /// [`TraceContext`]: with a context and an enabled tracer, the batch's
    /// routing is recorded as one `ShardEnqueue` span per touched shard
    /// (parented to the context's parent span), and the next drain of
    /// those shards parents its `ShardDrain`/`AlarmEmit` spans under them.
    /// With `None` (or no tracer) this is exactly [`ingest`](Self::ingest).
    pub fn ingest_ctx(
        &mut self,
        batch: &[Record],
        ctx: Option<TraceContext>,
    ) -> Result<(), ServeError> {
        self.enqueue_batch(batch, ctx)?;
        self.maybe_auto_checkpoint()
    }

    /// [`ingest`](Self::ingest) with an idempotency tag: `(client, seq)`
    /// identifies the batch, and the runtime remembers the highest `seq`
    /// applied per client. A batch at or below the client's cursor is
    /// skipped without touching any queue and reported as `Ok(false)` —
    /// which is how a client retrying a batch whose acknowledgement was
    /// lost learns the original attempt landed, upgrading retried delivery
    /// from at-least-once to exactly-once. `(0, _)` is the untagged client;
    /// its batches always apply.
    ///
    /// The cursor advances *before* any due periodic checkpoint is cut, so
    /// a checkpoint covering the batch also covers its dedup state.
    ///
    /// # Errors
    ///
    /// Same contract as [`ingest`](Self::ingest): a
    /// [`QueueFull`](ServeError::QueueFull) rejection is atomic and does
    /// **not** advance the client's cursor, so the same tag can (and
    /// should) be resent.
    pub fn ingest_tagged(
        &mut self,
        client: u64,
        seq: u64,
        batch: &[Record],
    ) -> Result<bool, ServeError> {
        self.ingest_tagged_ctx(client, seq, batch, None)
    }

    /// [`ingest_tagged`](Self::ingest_tagged) carrying an optional
    /// [`TraceContext`] (see [`ingest_ctx`](Self::ingest_ctx) for what a
    /// context adds). A deduplicated batch records no spans — it touched
    /// no queue.
    pub fn ingest_tagged_ctx(
        &mut self,
        client: u64,
        seq: u64,
        batch: &[Record],
        ctx: Option<TraceContext>,
    ) -> Result<bool, ServeError> {
        let tagged = client != 0;
        if tagged && self.clients.get(&client).is_some_and(|&cur| seq <= cur) {
            self.duplicate_batches += 1;
            return Ok(false);
        }
        self.enqueue_batch(batch, ctx)?;
        if tagged {
            self.clients.insert(client, seq);
        }
        self.maybe_auto_checkpoint()?;
        Ok(true)
    }

    /// The per-client ingest cursors (client id → highest applied batch
    /// seq). A supervisor reads these off a recovered runtime to decide
    /// which in-flight batches the checkpoint already covers.
    pub fn ingest_cursors(&self) -> &BTreeMap<u64, u64> {
        &self.clients
    }

    /// The shared body of [`ingest`](Self::ingest) and
    /// [`ingest_tagged`](Self::ingest_tagged): route the batch into the
    /// shard queues without consulting the checkpoint schedule.
    fn enqueue_batch(
        &mut self,
        batch: &[Record],
        ctx: Option<TraceContext>,
    ) -> Result<(), ServeError> {
        if batch.is_empty() {
            return Ok(());
        }
        if self.cfg.overflow == OverflowPolicy::Reject {
            // Pre-scan so the rejection is atomic: either every record fits
            // in its queue, or none is enqueued.
            let mut incoming = vec![0usize; self.shards.len()];
            for r in batch {
                let s = self.router.route(r.stream);
                // route() < shards.len() == incoming.len() by construction
                // (router and shard vec change together), so the entry
                // exists; the fallback merely skips counting.
                let pending = incoming
                    .get_mut(s)
                    .map(|c| {
                        *c += 1;
                        *c
                    })
                    .unwrap_or(1);
                // lint: allow(panic-freedom, route() < shards.len() by construction — router and shard vec change together)
                let queued_here = self.shards[s].queue.len();
                if queued_here + pending > self.cfg.queue_capacity {
                    self.rejected_batches += 1;
                    if let Some(t) = self.tracer.as_ref() {
                        t.event(
                            Severity::Warn,
                            EventKind::QueueFull,
                            s as u64,
                            queued_here as u64,
                        );
                    }
                    // The depth did not change, but a rejection is one of
                    // the moments a scraper most wants a fresh gauge.
                    self.metrics.queue_depth.set(self.queued() as u64);
                    return Err(ServeError::QueueFull {
                        shard: s,
                        stream: r.stream,
                        capacity: self.cfg.queue_capacity,
                    });
                }
            }
        }
        let trace = match (&self.tracer, ctx) {
            (Some(t), Some(ctx)) if t.enabled() => Some((t.clone(), ctx, t.start())),
            _ => None,
        };
        let clf = self.clf;
        let monitor_cfg = self.cfg.monitor;
        let mut depth = self.queued() as u64;
        for r in batch {
            let s = self.router.route(r.stream);
            // lint: allow(panic-freedom, route() < shards.len() by construction — router and shard vec change together)
            if self.shards[s].queue.len() >= self.cfg.queue_capacity {
                // Block policy: backpressure by doing the work now.
                self.flush_all();
                depth = 0;
            }
            // lint: allow(panic-freedom, route() < shards.len() by construction; a borrow-precise direct index keeps `self.seq` readable below)
            let shard = &mut self.shards[s];
            shard
                .monitors
                .entry(r.stream)
                .or_insert_with(|| StreamMonitor::new(clf, monitor_cfg));
            shard.queue.push(Queued {
                seq: self.seq,
                stream: r.stream,
                value: r.value,
            });
            shard.queue_high_water = shard.queue_high_water.max(shard.queue.len());
            depth += 1;
            self.metrics.queue_depth.set(depth);
            self.metrics.queue_depth_high_water.record_max(depth);
            self.seq += 1;
            self.ingested += 1;
        }
        if let Some((tracer, ctx, started)) = trace {
            self.last_ctx = Some(ctx);
            // One ShardEnqueue span per shard the batch touched, all under
            // the wire context's parent; each shard's trace slot (latest
            // traced ingest wins) lets its next drain continue the chain.
            // The span is recorded lazily on first touch, so the extra
            // per-record work is one route and one slot store.
            let mut spans: Vec<Option<u64>> = vec![None; self.shards.len()];
            for r in batch {
                let s = self.router.route(r.stream);
                if let (Some(slot), Some(shard)) = (spans.get_mut(s), self.shards.get_mut(s)) {
                    let span = *slot.get_or_insert_with(|| {
                        tracer.span(
                            SpanKind::ShardEnqueue,
                            ctx.trace_id,
                            ctx.parent_span,
                            started,
                            s as u64,
                        )
                    });
                    shard.trace = Some((ctx.trace_id, span));
                }
            }
        }
        Ok(())
    }

    /// Process every queued record (all shards in parallel) and return all
    /// produced alarms — including any buffered by implicit flushes — sorted
    /// by global ingest sequence number.
    pub fn drain(&mut self) -> Vec<StreamAlarm> {
        self.flush_all();
        self.pending.sort_by_key(|a| a.seq);
        std::mem::take(&mut self.pending)
    }

    /// Process all shard queues, buffering alarms into `self.pending`.
    ///
    /// One worker per shard (bounded by the configured thread count); each
    /// shard's queue is processed serially in ingest order, so worker count
    /// cannot change what any monitor sees.
    fn flush_all(&mut self) {
        if self.queued() == 0 {
            // A drain right after a rebalance/checkpoint (which flush
            // internally) must not pay the scoped-spawn round for nothing.
            return;
        }
        let timing = !self.clock.is_disabled();
        let started = if timing { self.clock.now_ns() } else { 0 };
        let threads = self.worker_threads().min(self.shards.len());
        // Field-precise borrows: the workers mutate the shards while
        // recording into the (lock-free, `&self`) histograms.
        let clock = &self.clock;
        let push_ns = &self.metrics.push_ns;
        let tracer = self.tracer.as_ref();
        let batches = parallel::map_mut_with(threads, &mut self.shards, |shard| {
            shard.process_queue(clock, push_ns, tracer)
        });
        for batch in batches {
            self.pending.extend(batch);
        }
        // Every queue is empty after a flush — the live gauge says so
        // immediately, not at the next stats() call.
        self.metrics.queue_depth.set(0);
        if timing {
            self.metrics
                .drain_cycle_ns
                .record(self.clock.now_ns().saturating_sub(started));
        }
    }

    /// Re-shard the runtime to `new_shards` workers, migrating every
    /// re-routed stream by shipping its anchor snapshot bytes to the target
    /// shard ([`StreamMonitor::snapshot_anchors`] →
    /// [`StreamMonitor::resume_anchors`], refractory clocks included) — the
    /// same byte path a cross-process migration takes, so alarm sequences
    /// are unchanged across the move.
    ///
    /// Pending queues are drained first (alarms buffered for the next
    /// [`drain`](Self::drain)); the rebalance itself is atomic — on error
    /// (e.g. a third-party session type without checkpoint support) the
    /// topology is left exactly as it was.
    pub fn rebalance(&mut self, new_shards: usize) -> Result<(), ServeError> {
        if new_shards == 0 {
            return Err(ServeError::BadConfig("shard count must be ≥ 1".into()));
        }
        self.flush_all();
        let timing = !self.clock.is_disabled();
        let started = if timing { self.clock.now_ns() } else { 0 };
        let tracer = self.tracer.clone().filter(|t| t.enabled());
        let trace_start = tracer.as_ref().map_or(0, |t| t.start());
        let new_router = ShardRouter::new(new_shards);
        // Phase 1 (fallible, read-only): rehydrate a fresh monitor from
        // snapshot bytes for every stream whose shard index changes. Streams
        // keeping their index move by value below — no byte round-trip.
        let mut migrated: BTreeMap<u64, StreamMonitor<'a, C>> = BTreeMap::new();
        for (idx, shard) in self.shards.iter().enumerate() {
            for (&id, monitor) in &shard.monitors {
                if new_router.route(id) != idx {
                    let bytes = monitor.snapshot_anchors()?;
                    let mut fresh = StreamMonitor::new(self.clf, self.cfg.monitor);
                    fresh.resume_anchors(&bytes)?;
                    migrated.insert(id, fresh);
                }
            }
        }
        // Phase 2 (infallible): swap in the new topology.
        let n_migrated = migrated.len() as u64;
        let old = std::mem::replace(
            &mut self.shards,
            (0..new_shards).map(|_| Shard::new()).collect(),
        );
        for shard in old {
            self.retired_pushes += shard.pushes;
            self.retired_alarms += shard.alarms;
            for (id, monitor) in shard.monitors {
                let target = new_router.route(id);
                let moved = migrated.remove(&id).unwrap_or(monitor);
                // lint: allow(panic-freedom, target < new_shards == shards.len() by construction; silently dropping a monitor would be worse than the impossible panic)
                self.shards[target].monitors.insert(id, moved);
            }
        }
        self.router = new_router;
        self.cfg.shards = new_shards;
        self.rebalances += 1;
        self.migrated_streams += n_migrated;
        if let Some(t) = &tracer {
            t.event(
                Severity::Info,
                EventKind::Migration,
                n_migrated,
                new_shards as u64,
            );
            if let Some(ctx) = self.last_ctx {
                t.span(
                    SpanKind::Migration,
                    ctx.trace_id,
                    ctx.parent_span,
                    trace_start,
                    n_migrated,
                );
            }
        }
        if timing {
            self.metrics
                .migration_ns
                .record(self.clock.now_ns().saturating_sub(started));
        }
        Ok(())
    }

    /// Export streams for a cross-runtime (typically cross-node) migration:
    /// each returned entry is the stream id and its anchor-snapshot bytes
    /// (the exact [`StreamMonitor::snapshot_anchors`] envelope that
    /// [`import_streams`](Self::import_streams) — or a rebalance target —
    /// resumes from). Pending queues are drained first, so the snapshot
    /// reflects every already-ingested sample; the produced alarms stay
    /// buffered for the next [`drain`](Self::drain).
    ///
    /// The export is **two-phase**: all requested streams are snapshotted
    /// before any is removed, so an error (an unknown stream id, a
    /// third-party session without checkpoint support) leaves the runtime
    /// exactly as it was. On success the exported streams are retired here —
    /// their monitors are gone and subsequent records for those ids would
    /// auto-open fresh monitors, so callers move the bytes to their new
    /// owner before resuming ingestion.
    pub fn export_streams(&mut self, streams: &[u64]) -> Result<Vec<(u64, Vec<u8>)>, ServeError> {
        self.flush_all();
        let timing = !self.clock.is_disabled();
        let started = if timing { self.clock.now_ns() } else { 0 };
        let tracer = self.tracer.clone().filter(|t| t.enabled());
        let trace_start = tracer.as_ref().map_or(0, |t| t.start());
        // Phase 1 (fallible, read-only): snapshot every requested stream.
        let mut out = Vec::with_capacity(streams.len());
        for &id in streams {
            let monitor = self
                .shards
                .get(self.router.route(id))
                .and_then(|s| s.monitors.get(&id))
                .ok_or(ServeError::UnknownStream { stream: id })?;
            out.push((id, monitor.snapshot_anchors()?));
        }
        // Phase 2 (infallible): retire the exported monitors.
        for &id in streams {
            if let Some(shard) = self.shards.get_mut(self.router.route(id)) {
                shard.monitors.remove(&id);
            }
        }
        self.migrated_streams += streams.len() as u64;
        if let Some(t) = &tracer {
            t.event(
                Severity::Info,
                EventKind::Migration,
                streams.len() as u64,
                0,
            );
            if let Some(ctx) = self.last_ctx {
                t.span(
                    SpanKind::Migration,
                    ctx.trace_id,
                    ctx.parent_span,
                    trace_start,
                    streams.len() as u64,
                );
            }
        }
        if timing {
            self.metrics
                .migration_ns
                .record(self.clock.now_ns().saturating_sub(started));
        }
        Ok(out)
    }

    /// Import streams exported by another runtime's
    /// [`export_streams`](Self::export_streams): rehydrate each `(stream
    /// id, anchor snapshot)` pair into a fresh monitor and route it to its
    /// shard. The other half of a cross-node migration.
    ///
    /// Two-phase like the export: every snapshot is resumed into a fresh
    /// monitor before any stream is inserted, so an error (corrupt bytes, a
    /// duplicate id) leaves the runtime untouched — in particular, a
    /// failed import never half-applies a migration batch.
    pub fn import_streams(&mut self, streams: &[(u64, Vec<u8>)]) -> Result<(), ServeError> {
        let timing = !self.clock.is_disabled();
        let started = if timing { self.clock.now_ns() } else { 0 };
        // Phase 1 (fallible): validate ids and rehydrate monitors.
        let mut fresh: BTreeMap<u64, StreamMonitor<'a, C>> = BTreeMap::new();
        for (id, bytes) in streams {
            if fresh.contains_key(id)
                || self
                    .shards
                    .get(self.router.route(*id))
                    .is_some_and(|s| s.monitors.contains_key(id))
            {
                return Err(ServeError::DuplicateStream { stream: *id });
            }
            let mut monitor = StreamMonitor::new(self.clf, self.cfg.monitor);
            monitor.resume_anchors(bytes)?;
            fresh.insert(*id, monitor);
        }
        // Phase 2 (infallible): adopt them.
        let n = fresh.len() as u64;
        for (id, monitor) in fresh {
            // lint: allow(panic-freedom, route() < shards.len() by construction; silently dropping an imported monitor would be worse than the impossible panic)
            self.shards[self.router.route(id)]
                .monitors
                .insert(id, monitor);
        }
        self.migrated_streams += n;
        if let Some(t) = self.tracer.as_ref().filter(|t| t.enabled()) {
            t.event(Severity::Info, EventKind::Migration, n, 0);
        }
        if timing {
            self.metrics
                .migration_ns
                .record(self.clock.now_ns().saturating_sub(started));
        }
        Ok(())
    }

    /// The stream ids currently live in this runtime, ascending.
    pub fn stream_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.monitors.keys().copied())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// A metrics snapshot: per-shard counters for the current topology plus
    /// runtime-lifetime totals.
    pub fn stats(&self) -> ServeStats {
        let shards: Vec<ShardStats> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardStats {
                shard: i,
                streams: s.monitors.len(),
                queued: s.queue.len(),
                queue_high_water: s.queue_high_water,
                pushes: s.pushes,
                alarms: s.alarms,
            })
            .collect();
        ServeStats {
            streams: shards.iter().map(|s| s.streams).sum(),
            pushes: self.retired_pushes + shards.iter().map(|s| s.pushes).sum::<u64>(),
            alarms: self.retired_alarms + shards.iter().map(|s| s.alarms).sum::<u64>(),
            ingested: self.ingested,
            pending_alarms: self.pending.len(),
            rejected_batches: self.rejected_batches,
            duplicate_batches: self.duplicate_batches,
            queue_depth: self.metrics.queue_depth.get(),
            queue_depth_high_water: self.metrics.queue_depth_high_water.get(),
            rebalances: self.rebalances,
            migrated_streams: self.migrated_streams,
            checkpoints: self.checkpoints,
            last_checkpoint_bytes: self.last_checkpoint_bytes,
            drain_cycle_ns: self.metrics.drain_cycle_ns.snapshot(),
            push_ns: self.metrics.push_ns.snapshot(),
            checkpoint_pause_ns: self.metrics.checkpoint_pause_ns.snapshot(),
            checkpoint_bytes: self.metrics.checkpoint_bytes.snapshot(),
            migration_ns: self.metrics.migration_ns.snapshot(),
            shards,
        }
    }

    /// Write a whole-runtime state checkpoint — configuration, clocks,
    /// undelivered alarms, and every stream's `(model name, anchor
    /// snapshot)` pair — into the registry under `"<model_name>.serve"`.
    ///
    /// The fitted model itself must already be in the registry (use
    /// [`checkpoint`](Self::checkpoint) to save both, or
    /// [`enable_checkpoints`](Self::enable_checkpoints) which saves the
    /// model once up front); recovery verifies its presence per stream and
    /// fails with [`ServeError::ModelMissing`] otherwise.
    ///
    /// Queues are drained first (a checkpoint captures processed state, not
    /// raw queue contents), with the produced alarms buffered — and,
    /// being undelivered, written into the checkpoint. After a crash those
    /// alarms are re-delivered by the recovered runtime's first
    /// [`drain`](Self::drain): delivery is at-least-once across a
    /// checkpoint/recover cycle, never lossy.
    ///
    /// Returns the checkpoint envelope size in bytes.
    pub fn checkpoint_state(&mut self, registry: &ModelRegistry) -> Result<usize, ServeError> {
        self.flush_all();
        let timing = !self.clock.is_disabled();
        let started = if timing { self.clock.now_ns() } else { 0 };
        let tracer = self.tracer.clone().filter(|t| t.enabled());
        let trace_start = tracer.as_ref().map_or(0, |t| t.start());
        if let Some(t) = &tracer {
            t.event(
                Severity::Info,
                EventKind::CheckpointBegin,
                self.stream_count() as u64,
                0,
            );
        }
        let mut enc = Encoder::new();
        enc.put_usize(self.shards.len());
        enc.put_usize(self.cfg.queue_capacity);
        enc.put_u8(match self.cfg.overflow {
            OverflowPolicy::Block => 0,
            OverflowPolicy::Reject => 1,
        });
        enc.put_usize(self.cfg.monitor.anchor_stride);
        enc.put_u8(match self.cfg.monitor.norm {
            StreamNorm::Raw => 0,
            StreamNorm::PerPrefix => 1,
        });
        enc.put_usize(self.cfg.monitor.refractory);
        enc.put_str(&self.cfg.model_name);
        enc.put_u64(self.seq);
        enc.put_u64(self.ingested);
        enc.put_u64(self.rejected_batches);
        enc.put_u64(self.rebalances);
        enc.put_u64(self.migrated_streams);
        // Count the checkpoint being cut, so a runtime recovered from these
        // bytes reports the same total the live runtime does after the save.
        enc.put_u64(self.checkpoints + 1);
        let stats = self.stats();
        enc.put_u64(stats.pushes);
        enc.put_u64(stats.alarms);
        enc.put_usize(self.pending.len());
        for a in &self.pending {
            enc.put_u64(a.stream);
            enc.put_u64(a.seq);
            a.alarm.encode(&mut enc);
        }
        enc.put_usize(self.stream_count());
        for shard in &self.shards {
            for (&id, monitor) in &shard.monitors {
                enc.put_u64(id);
                enc.put_str(&self.cfg.model_name);
                enc.put_bytes(&monitor.snapshot_anchors()?);
            }
        }
        // Trailing section (readers treat it as optional for checkpoints
        // cut before it existed): retry-dedup state, so exactly-once ingest
        // survives crash + recovery.
        enc.put_u64(self.duplicate_batches);
        enc.put_usize(self.clients.len());
        for (&client, &seq) in &self.clients {
            enc.put_u64(client);
            enc.put_u64(seq);
        }
        let bytes = etsc_persist::envelope(SERVE_STATE_KIND, &enc.into_bytes());
        registry.save_bytes(&state_entry_name(&self.cfg.model_name), &bytes)?;
        self.checkpoints += 1;
        self.last_checkpoint_bytes = bytes.len();
        self.metrics.checkpoint_bytes.record(bytes.len() as u64);
        if let Some(t) = &tracer {
            t.event(
                Severity::Info,
                EventKind::CheckpointEnd,
                bytes.len() as u64,
                0,
            );
            if let Some(ctx) = self.last_ctx {
                t.span(
                    SpanKind::Checkpoint,
                    ctx.trace_id,
                    ctx.parent_span,
                    trace_start,
                    bytes.len() as u64,
                );
            }
        }
        if timing {
            self.metrics
                .checkpoint_pause_ns
                .record(self.clock.now_ns().saturating_sub(started));
        }
        Ok(bytes.len())
    }

    /// Stop periodic checkpointing (see
    /// [`enable_checkpoints`](Self::enable_checkpoints)).
    pub fn disable_checkpoints(&mut self) {
        self.auto = None;
    }

    /// Cut a state checkpoint if the periodic schedule says one is due.
    fn maybe_auto_checkpoint(&mut self) -> Result<(), ServeError> {
        let Some(auto) = &mut self.auto else {
            return Ok(());
        };
        if self.seq - auto.last_at < auto.every {
            return Ok(());
        }
        // Advance the schedule *before* attempting the write: a failing
        // registry surfaces once per interval as a typed error, instead of
        // re-flushing and re-snapshotting every stream on every subsequent
        // ingest while the disk stays broken.
        auto.last_at = self.seq;
        let registry = auto.registry.clone();
        self.checkpoint_state(&registry)?;
        Ok(())
    }
}

impl<'a, C: EarlyClassifier + Persist> Runtime<'a, C> {
    /// Checkpoint the fitted model **and** the runtime state into the
    /// registry (entries `model_name` and `"<model_name>.serve"`). Returns
    /// the state envelope size in bytes. See
    /// [`checkpoint_state`](Self::checkpoint_state) for the delivery
    /// semantics of undelivered alarms.
    pub fn checkpoint(&mut self, registry: &ModelRegistry) -> Result<usize, ServeError> {
        registry.save(&self.cfg.model_name, self.clf)?;
        self.checkpoint_state(registry)
    }

    /// Turn on periodic checkpointing: after roughly every
    /// `every_records` ingested records, [`ingest`](Self::ingest) cuts a
    /// state checkpoint into `registry`. The fitted model is saved once,
    /// now; subsequent periodic writes persist only the (much smaller)
    /// runtime state.
    pub fn enable_checkpoints(
        &mut self,
        registry: ModelRegistry,
        every_records: u64,
    ) -> Result<(), ServeError> {
        if every_records == 0 {
            return Err(ServeError::BadConfig(
                "checkpoint interval must be ≥ 1 record".into(),
            ));
        }
        registry.save(&self.cfg.model_name, self.clf)?;
        self.auto = Some(AutoCheckpoint {
            registry,
            every: every_records,
            last_at: self.seq,
        });
        Ok(())
    }

    /// Rebuild a runtime from the checkpoint saved under `model_name` in
    /// the registry directory `dir` (see [`checkpoint`](Self::checkpoint)).
    ///
    /// `clf` is the fitted model to serve with — typically just loaded from
    /// the same registry (`registry.load::<C>(model_name)`), which is
    /// behavior-bit-identical to the instance that was checkpointed. Every
    /// recovered stream's snapshot names its model; if the registry no
    /// longer holds that entry the recovery fails with
    /// [`ServeError::ModelMissing`] carrying the stream id (and a snapshot
    /// whose model entry is of a different type fails with a
    /// [`PersistError::KindMismatch`]). The recovered runtime continues
    /// every stream's alarm sequence exactly where the checkpoint left it.
    pub fn recover(
        clf: &'a C,
        dir: impl AsRef<Path>,
        model_name: &str,
    ) -> Result<Self, ServeError> {
        let registry = ModelRegistry::open(dir)?;
        Self::recover_from(clf, &registry, model_name)
    }

    /// [`recover`](Self::recover) against an already-open registry.
    pub fn recover_from(
        clf: &'a C,
        registry: &ModelRegistry,
        model_name: &str,
    ) -> Result<Self, ServeError> {
        let bytes = registry.load_bytes(&state_entry_name(model_name))?;
        let mut dec = etsc_persist::open_envelope(&bytes, SERVE_STATE_KIND)?;
        let shards = dec.get_usize("serve shards")?;
        let queue_capacity = dec.get_usize("serve queue capacity")?;
        let overflow = match dec.get_u8("serve overflow policy")? {
            0 => OverflowPolicy::Block,
            1 => OverflowPolicy::Reject,
            t => {
                return Err(PersistError::Corrupt(format!("serve: overflow tag {t}")).into());
            }
        };
        let anchor_stride = dec.get_usize("serve anchor stride")?;
        let norm = match dec.get_u8("serve monitor norm")? {
            0 => StreamNorm::Raw,
            1 => StreamNorm::PerPrefix,
            t => {
                return Err(PersistError::Corrupt(format!("serve: norm tag {t}")).into());
            }
        };
        let refractory = dec.get_usize("serve refractory")?;
        let stored_name = dec.get_str("serve model name")?;
        if stored_name != model_name {
            return Err(PersistError::Corrupt(format!(
                "serve: checkpoint was cut for model {stored_name:?}, recovered as {model_name:?}"
            ))
            .into());
        }
        let cfg = RuntimeConfig {
            shards,
            queue_capacity,
            overflow,
            monitor: StreamMonitorConfig {
                anchor_stride,
                norm,
                refractory,
            },
            model_name: stored_name,
            threads: None,
        };
        let mut rt = Runtime::new(clf, cfg)?;
        rt.seq = dec.get_u64("serve seq")?;
        rt.ingested = dec.get_u64("serve ingested")?;
        rt.rejected_batches = dec.get_u64("serve rejected")?;
        rt.rebalances = dec.get_u64("serve rebalances")?;
        rt.migrated_streams = dec.get_u64("serve migrated")?;
        rt.checkpoints = dec.get_u64("serve checkpoints")?;
        rt.retired_pushes = dec.get_u64("serve pushes")?;
        rt.retired_alarms = dec.get_u64("serve alarms")?;
        rt.last_checkpoint_bytes = bytes.len();
        let n_pending = dec.get_usize("serve pending alarms")?;
        // A pending alarm is 2×u64 + a 4×8-byte alarm body; a checkpoint
        // (which may arrive over a network boundary) declaring more alarms
        // than its bytes can hold is corrupt — fail before looping.
        dec.check_claim(n_pending, 48, "serve pending alarms")?;
        for _ in 0..n_pending {
            let stream = dec.get_u64("serve pending stream")?;
            let seq = dec.get_u64("serve pending seq")?;
            let alarm = Alarm::decode(&mut dec)?;
            rt.pending.push(StreamAlarm { stream, seq, alarm });
        }
        let n_streams = dec.get_usize("serve stream count")?;
        // Each stream record holds an id, a model-name prefix, and an
        // anchor-blob length prefix: ≥ 20 bytes.
        dec.check_claim(n_streams, 20, "serve streams")?;
        let mut verified: BTreeSet<String> = BTreeSet::new();
        for _ in 0..n_streams {
            let id = dec.get_u64("serve stream id")?;
            let name = dec.get_str("serve stream model")?;
            let anchors = dec.get_bytes("serve stream anchors")?;
            if !verified.contains(&name) {
                // The (model name, anchor snapshot) pair is only usable if
                // the registry still holds a model of the right type under
                // that name — fail with the stranded stream's id, not a
                // panic deep inside resume.
                if !registry.contains(&name) {
                    return Err(ServeError::ModelMissing {
                        stream: id,
                        model: name,
                    });
                }
                let info = etsc_persist::inspect(&registry.load_bytes(&name)?)?;
                if info.kind != C::KIND {
                    return Err(PersistError::KindMismatch {
                        expected: C::KIND.to_string(),
                        found: info.kind,
                    }
                    .into());
                }
                verified.insert(name);
            }
            let mut monitor = StreamMonitor::new(clf, rt.cfg.monitor);
            monitor.resume_anchors(&anchors)?;
            // lint: allow(panic-freedom, route() < shards.len() by construction; silently dropping a recovered stream would be worse than the impossible panic)
            rt.shards[rt.router.route(id)].monitors.insert(id, monitor);
        }
        if dec.remaining() > 0 {
            // Retry-dedup section; absent in checkpoints cut before it
            // existed (those recover with empty cursors).
            rt.duplicate_batches = dec.get_u64("serve duplicate batches")?;
            let n_clients = dec.get_usize("serve client cursors")?;
            dec.check_claim(n_clients, 16, "serve client cursors")?;
            for _ in 0..n_clients {
                let client = dec.get_u64("serve client id")?;
                let seq = dec.get_u64("serve client seq")?;
                rt.clients.insert(client, seq);
            }
        }
        dec.finish()?;
        Ok(rt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_early::{Decision, DecisionSession, Decoder, SessionNorm};
    use etsc_persist::Persist;
    use std::path::PathBuf;

    /// A fully persistable mean-level detector (the serve twin of the
    /// monitor tests' detector): commits to class 0 once `need` samples
    /// have arrived and their running mean exceeds 0.5.
    #[derive(Debug, Clone, PartialEq)]
    struct PulseDetector {
        need: usize,
        len: usize,
    }

    struct MeanSession {
        need: usize,
        sum: f64,
        len: usize,
        decision: Decision,
    }

    impl DecisionSession for MeanSession {
        fn push(&mut self, x: f64) -> Decision {
            self.len += 1;
            if self.decision.is_predict() {
                return self.decision;
            }
            self.sum += x;
            if self.len >= self.need && self.sum / self.len as f64 > 0.5 {
                self.decision = Decision::Predict {
                    label: 0,
                    confidence: 1.0,
                };
            }
            self.decision
        }
        fn decision(&self) -> Decision {
            self.decision
        }
        fn len(&self) -> usize {
            self.len
        }
        fn reset(&mut self) {
            self.sum = 0.0;
            self.len = 0;
            self.decision = Decision::Wait;
        }
        fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
            enc.put_f64(self.sum);
            enc.put_usize(self.len);
            enc.put_bool(self.decision.is_predict());
            Ok(())
        }
    }

    impl EarlyClassifier for PulseDetector {
        fn n_classes(&self) -> usize {
            1
        }
        fn series_len(&self) -> usize {
            self.len
        }
        fn min_prefix(&self) -> usize {
            self.need
        }
        fn session(&self, _norm: SessionNorm) -> Box<dyn DecisionSession + '_> {
            Box::new(MeanSession {
                need: self.need,
                sum: 0.0,
                len: 0,
                decision: Decision::Wait,
            })
        }
        fn resume_session(
            &self,
            _norm: SessionNorm,
            dec: &mut Decoder<'_>,
        ) -> Result<Box<dyn DecisionSession + '_>, PersistError> {
            let sum = dec.get_f64("sum")?;
            let len = dec.get_usize("len")?;
            let committed = dec.get_bool("committed")?;
            Ok(Box::new(MeanSession {
                need: self.need,
                sum,
                len,
                decision: if committed {
                    Decision::Predict {
                        label: 0,
                        confidence: 1.0,
                    }
                } else {
                    Decision::Wait
                },
            }))
        }
        fn predict_full(&self, _s: &[f64]) -> ClassLabel {
            0
        }
    }

    use etsc_core::ClassLabel;

    impl Persist for PulseDetector {
        const KIND: &'static str = "PulseDetector";
        fn encode_body(&self, enc: &mut Encoder) {
            enc.put_usize(self.need);
            enc.put_usize(self.len);
        }
        fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
            let need = dec.get_usize("pulse need")?;
            let len = dec.get_usize("pulse len")?;
            if need == 0 || len == 0 || need > len {
                return Err(PersistError::Corrupt(format!(
                    "pulse detector: need {need}, len {len}"
                )));
            }
            Ok(Self { need, len })
        }
    }

    fn detector() -> PulseDetector {
        PulseDetector { need: 4, len: 24 }
    }

    fn config(shards: usize) -> RuntimeConfig {
        RuntimeConfig {
            shards,
            queue_capacity: 4096,
            overflow: OverflowPolicy::Block,
            monitor: StreamMonitorConfig {
                anchor_stride: 2,
                norm: StreamNorm::Raw,
                refractory: 30,
            },
            model_name: "pulse".to_string(),
            threads: Some(2),
        }
    }

    /// Interleaved traffic over `ids`: background zeros with a per-stream
    /// pulse window (offset by the stream's position so alarms differ per
    /// stream), `rounds` samples per stream, one record per stream per
    /// round.
    fn traffic(ids: &[u64], rounds: usize) -> Vec<Vec<Record>> {
        (0..rounds)
            .map(|t| {
                ids.iter()
                    .enumerate()
                    .map(|(k, &id)| {
                        let start = 30 + 7 * k;
                        let hot = t >= start && t < start + 15;
                        Record::new(id, if hot { 1.0 } else { 0.0 })
                    })
                    .collect()
            })
            .collect()
    }

    fn run_all(rt: &mut Runtime<'_, PulseDetector>, batches: &[Vec<Record>]) -> Vec<StreamAlarm> {
        for b in batches {
            rt.ingest(b).unwrap();
        }
        rt.drain()
    }

    fn tmp_root(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("etsc-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    const IDS: [u64; 6] = [1, 2, 3, 500, 8_000_000, u64::MAX - 7];

    #[test]
    fn ingest_auto_opens_and_drain_produces_per_stream_alarms() {
        let clf = detector();
        let mut rt = Runtime::new(&clf, config(3)).unwrap();
        let batches = traffic(&IDS, 90);
        let alarms = run_all(&mut rt, &batches);
        // Every stream got a pulse, so every stream alarms at least once.
        for &id in &IDS {
            assert!(
                alarms.iter().any(|a| a.stream == id),
                "stream {id} must alarm"
            );
        }
        // Output is sorted by the global ingest sequence number.
        assert!(alarms.windows(2).all(|w| w[0].seq < w[1].seq));
        let stats = rt.stats();
        assert_eq!(stats.streams, IDS.len());
        assert_eq!(stats.ingested, 90 * IDS.len() as u64);
        assert_eq!(stats.pushes, stats.ingested, "drained fully");
        assert_eq!(stats.alarms as usize, alarms.len());
        assert_eq!(stats.pending_alarms, 0);
        assert_eq!(stats.shards.len(), 3);
        assert!(stats.shards.iter().any(|s| s.streams > 0));
    }

    #[test]
    fn metrics_populate_under_monotonic_and_stay_empty_when_disabled() {
        use etsc_core::metrics::Clock;
        let clf = detector();
        let batches = traffic(&IDS, 90);

        // Default monotonic clock: drains and sampled pushes land in the
        // histograms; a checkpoint records both pause and size; rebalance
        // is timed as a migration.
        let root = tmp_root("metrics-clock");
        let registry = ModelRegistry::open(&root).unwrap();
        let mut rt = Runtime::new(&clf, config(3)).unwrap();
        let timed = run_all(&mut rt, &batches);
        rt.checkpoint(&registry).unwrap();
        rt.rebalance(4).unwrap();
        let stats = rt.stats();
        assert!(stats.drain_cycle_ns.count() >= 1);
        assert!(
            stats.push_ns.count() >= 1,
            "1-in-8 sampling over {} pushes must observe something",
            stats.pushes
        );
        assert_eq!(stats.checkpoint_pause_ns.count(), 1);
        assert_eq!(stats.checkpoint_bytes.count(), 1);
        assert_eq!(
            stats.checkpoint_bytes.sum,
            stats.last_checkpoint_bytes as u64
        );
        assert!(stats.migration_ns.count() >= 1);
        let _ = std::fs::remove_dir_all(&root);

        // Disabled clock: the latency histograms stay empty, size
        // histograms still fill, and — the invariant everything else rests
        // on — the alarm sequence is bit-identical to the timed run.
        let root = tmp_root("metrics-clock-off");
        let registry = ModelRegistry::open(&root).unwrap();
        let mut off = Runtime::new(&clf, config(3)).unwrap();
        off.set_clock(Clock::disabled());
        assert!(off.clock().is_disabled());
        let silent = run_all(&mut off, &batches);
        assert_eq!(silent, timed, "clock mode must not change alarms");
        off.checkpoint(&registry).unwrap();
        let stats = off.stats();
        assert_eq!(stats.drain_cycle_ns.count(), 0);
        assert_eq!(stats.push_ns.count(), 0);
        assert_eq!(stats.checkpoint_pause_ns.count(), 0);
        assert_eq!(
            stats.checkpoint_bytes.count(),
            1,
            "sizes are clock-independent"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn queue_depth_gauge_tracks_live_backlog_and_high_water_survives_drain() {
        let clf = detector();
        let mut cfg = config(1);
        cfg.queue_capacity = 8;
        let mut rt = Runtime::new(&clf, cfg).unwrap();
        // 20 records into a capacity-8 Block queue: the Block policy
        // flushes mid-batch at 8 and 16, leaving 4 records live.
        let batch: Vec<Record> = (0..20).map(|i| Record::new(1, i as f64)).collect();
        rt.ingest(&batch).unwrap();
        let stats = rt.stats();
        assert_eq!(
            stats.queue_depth, 4,
            "live gauge shows what is queued after the mid-batch flushes"
        );
        assert_eq!(
            stats.queue_depth_high_water, 8,
            "high water caught the pre-flush peaks"
        );
        rt.drain();
        let stats = rt.stats();
        assert_eq!(stats.queue_depth, 0, "drain zeroes the live gauge");
        assert_eq!(
            stats.queue_depth_high_water, 8,
            "the lifetime high-water mark survives the drain"
        );
        let text = stats.render_prometheus();
        assert!(text.contains("etsc_serve_queue_depth 0"));
        assert!(text.contains("etsc_serve_queue_depth_high_water 8"));

        // Reject policy: a refused batch leaves the gauge at the prior
        // backlog (the rejection enqueued nothing).
        let mut cfg = config(1);
        cfg.queue_capacity = 4;
        cfg.overflow = OverflowPolicy::Reject;
        let mut rt = Runtime::new(&clf, cfg).unwrap();
        let three: Vec<Record> = (0..3).map(|i| Record::new(1, i as f64)).collect();
        rt.ingest(&three).unwrap();
        assert_eq!(rt.stats().queue_depth, 3);
        let five: Vec<Record> = (0..5).map(|i| Record::new(1, i as f64)).collect();
        assert!(rt.ingest(&five).is_err());
        let stats = rt.stats();
        assert_eq!(stats.queue_depth, 3, "rejection left the backlog as-is");
        assert_eq!(stats.queue_depth_high_water, 3);
    }

    #[test]
    fn alarm_sequences_are_shard_count_invariant() {
        let clf = detector();
        let batches = traffic(&IDS, 120);
        let reference = run_all(&mut Runtime::new(&clf, config(1)).unwrap(), &batches);
        assert!(!reference.is_empty());
        for shards in [2, 7] {
            let alarms = run_all(&mut Runtime::new(&clf, config(shards)).unwrap(), &batches);
            assert_eq!(alarms, reference, "{shards} shards");
        }
    }

    #[test]
    fn alarm_sequences_are_worker_count_invariant() {
        let clf = detector();
        let batches = traffic(&IDS, 120);
        let reference = run_all(&mut Runtime::new(&clf, config(7)).unwrap(), &batches);
        for threads in [1usize, 7] {
            let mut cfg = config(7);
            cfg.threads = Some(threads);
            let alarms = run_all(&mut Runtime::new(&clf, cfg).unwrap(), &batches);
            assert_eq!(alarms, reference, "{threads} threads");
        }
    }

    #[test]
    fn rebalance_preserves_alarm_sequences_exactly() {
        let clf = detector();
        let batches = traffic(&IDS, 120);
        let reference = run_all(&mut Runtime::new(&clf, config(2)).unwrap(), &batches);

        // Rebalance twice mid-run (grow, then shrink), mid-pulse both times.
        let mut rt = Runtime::new(&clf, config(2)).unwrap();
        let mut alarms = Vec::new();
        for (t, b) in batches.iter().enumerate() {
            rt.ingest(b).unwrap();
            if t == 37 {
                rt.rebalance(5).unwrap();
                assert_eq!(rt.shard_count(), 5);
            }
            if t == 80 {
                rt.rebalance(3).unwrap();
            }
        }
        alarms.extend(rt.drain());
        assert_eq!(alarms, reference, "rebalancing must not change alarms");
        let stats = rt.stats();
        assert_eq!(stats.rebalances, 2);
        assert!(stats.migrated_streams > 0, "some stream must have moved");
        assert_eq!(stats.pushes, stats.ingested);
    }

    #[test]
    fn rebalance_to_zero_shards_is_rejected() {
        let clf = detector();
        let mut rt = Runtime::new(&clf, config(2)).unwrap();
        assert!(matches!(rt.rebalance(0), Err(ServeError::BadConfig(_))));
        assert_eq!(
            rt.shard_count(),
            2,
            "failed rebalance must not touch topology"
        );
    }

    #[test]
    fn reject_policy_is_atomic_and_typed() {
        let clf = detector();
        let mut cfg = config(1);
        cfg.queue_capacity = 4;
        cfg.overflow = OverflowPolicy::Reject;
        let mut rt = Runtime::new(&clf, cfg).unwrap();
        let batch: Vec<Record> = (0..6).map(|i| Record::new(9, i as f64)).collect();
        match rt.ingest(&batch) {
            Err(ServeError::QueueFull {
                shard,
                stream,
                capacity,
            }) => {
                assert_eq!(shard, 0);
                assert_eq!(stream, 9);
                assert_eq!(capacity, 4);
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert_eq!(rt.queued(), 0, "rejection must be atomic");
        assert_eq!(rt.stats().rejected_batches, 1);
        // A fitting batch is accepted; draining makes room for the retry.
        rt.ingest(&batch[..4]).unwrap();
        assert_eq!(rt.queued(), 4);
        rt.drain();
        rt.ingest(&batch[4..]).unwrap();
        assert_eq!(rt.stats().ingested, 6);
    }

    #[test]
    fn block_policy_applies_backpressure_without_loss() {
        let clf = detector();
        let batches = traffic(&IDS[..2], 100);
        let reference = run_all(&mut Runtime::new(&clf, config(1)).unwrap(), &batches);

        let mut cfg = config(1);
        cfg.queue_capacity = 3; // far smaller than the traffic
        let mut rt = Runtime::new(&clf, cfg).unwrap();
        let alarms = run_all(&mut rt, &batches);
        assert_eq!(alarms, reference, "backpressure must not lose records");
        let stats = rt.stats();
        assert!(stats.shards[0].queue_high_water <= 3);
        assert_eq!(stats.pushes, stats.ingested);
    }

    #[test]
    fn open_and_close_stream() {
        let clf = detector();
        let mut rt = Runtime::new(&clf, config(2)).unwrap();
        assert!(rt.open_stream(42));
        assert!(!rt.open_stream(42), "double open reports existing");
        assert!(rt.contains_stream(42));
        assert_eq!(rt.stream_count(), 1);
        // Queued records are processed (not dropped) before the close.
        rt.ingest(&[Record::new(42, 1.0); 10]).unwrap();
        assert!(rt.close_stream(42));
        assert!(!rt.close_stream(42));
        assert!(!rt.contains_stream(42));
        let alarms = rt.drain();
        assert!(
            alarms.iter().any(|a| a.stream == 42),
            "pre-close samples still alarm: {alarms:?}"
        );
        assert_eq!(rt.stats().pushes, 10);
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let clf = detector();
        for (tweak, what) in [
            (
                RuntimeConfig {
                    shards: 0,
                    ..config(1)
                },
                "shards",
            ),
            (
                RuntimeConfig {
                    queue_capacity: 0,
                    ..config(1)
                },
                "capacity",
            ),
            (
                RuntimeConfig {
                    threads: Some(0),
                    ..config(1)
                },
                "threads",
            ),
            (
                RuntimeConfig {
                    monitor: StreamMonitorConfig {
                        anchor_stride: 0,
                        norm: StreamNorm::Raw,
                        refractory: 0,
                    },
                    ..config(1)
                },
                "stride",
            ),
        ] {
            assert!(
                matches!(Runtime::new(&clf, tweak), Err(ServeError::BadConfig(_))),
                "{what} misconfiguration must be rejected"
            );
        }
    }

    #[test]
    fn checkpoint_recover_continues_every_alarm_sequence() {
        let root = tmp_root("recover");
        let clf = detector();
        let batches = traffic(&IDS, 120);
        let reference = run_all(&mut Runtime::new(&clf, config(3)).unwrap(), &batches);
        assert!(!reference.is_empty());

        // Interrupted twin: ingest 50 rounds (some alarms already drained,
        // some still pending at checkpoint time), checkpoint, "crash".
        let registry = ModelRegistry::open(&root).unwrap();
        let mut head = Runtime::new(&clf, config(3)).unwrap();
        let mut alarms = Vec::new();
        for b in &batches[..40] {
            head.ingest(b).unwrap();
        }
        alarms.extend(head.drain());
        for b in &batches[40..50] {
            head.ingest(b).unwrap();
        }
        let bytes_written = head.checkpoint(&registry).unwrap();
        assert!(bytes_written > 0);
        assert_eq!(head.stats().last_checkpoint_bytes, bytes_written);
        drop(head);

        // Fresh process: reload the model from the registry, recover, and
        // finish the traffic. Undelivered alarms from rounds 40..50 come
        // out of the recovered runtime's first drain.
        let restored: PulseDetector = registry.load("pulse").unwrap();
        assert_eq!(restored, clf);
        let mut tail = Runtime::recover(&restored, &root, "pulse").unwrap();
        assert_eq!(tail.stream_count(), IDS.len());
        assert_eq!(tail.shard_count(), 3);
        for b in &batches[50..] {
            tail.ingest(b).unwrap();
        }
        alarms.extend(tail.drain());
        assert_eq!(alarms, reference, "recovery must drop and invent nothing");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn recover_with_missing_model_is_a_typed_error() {
        let root = tmp_root("missing-model");
        let clf = detector();
        let registry = ModelRegistry::open(&root).unwrap();
        let mut rt = Runtime::new(&clf, config(2)).unwrap();
        rt.ingest(&traffic(&IDS, 20).concat()).unwrap();
        rt.checkpoint(&registry).unwrap();
        drop(rt);

        // The model vanishes from the registry (partial restore, pruned
        // disk, wrong deploy bundle) — recovery must name a stranded
        // stream and its model, not panic inside resume.
        assert!(registry.remove("pulse").unwrap());
        let err = Runtime::recover(&clf, &root, "pulse")
            .err()
            .expect("recover without the model must fail");
        match err {
            ServeError::ModelMissing { stream, model } => {
                assert!(IDS.contains(&stream), "stranded stream id: {stream}");
                assert_eq!(model, "pulse");
            }
            other => panic!("expected ModelMissing, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn recover_with_wrong_model_kind_is_rejected() {
        let root = tmp_root("wrong-kind");
        let clf = detector();
        let registry = ModelRegistry::open(&root).unwrap();
        let mut rt = Runtime::new(&clf, config(2)).unwrap();
        rt.ingest(&traffic(&IDS, 20).concat()).unwrap();
        rt.checkpoint(&registry).unwrap();
        drop(rt);

        // Overwrite the model entry with a snapshot of a different type.
        let foreign = etsc_core::UcrDataset::new(vec![vec![0.0, 1.0]], vec![0]).unwrap();
        registry.save("pulse", &foreign).unwrap();
        assert!(matches!(
            Runtime::recover(&clf, &root, "pulse"),
            Err(ServeError::Persist(PersistError::KindMismatch { .. }))
        ));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn periodic_checkpoints_fire_from_ingest() {
        let root = tmp_root("periodic");
        let clf = detector();
        let registry = ModelRegistry::open(&root).unwrap();
        let mut rt = Runtime::new(&clf, config(2)).unwrap();
        assert!(matches!(
            rt.enable_checkpoints(registry.clone(), 0),
            Err(ServeError::BadConfig(_))
        ));
        rt.enable_checkpoints(registry.clone(), 50).unwrap();
        assert!(registry.contains("pulse"), "model saved at enable time");
        for b in traffic(&IDS, 30) {
            rt.ingest(&b).unwrap(); // 6 records per round → ~180 total
        }
        let stats = rt.stats();
        assert!(
            (3..=4).contains(&stats.checkpoints),
            "~180 records / every-50 → 3 periodic checkpoints, got {}",
            stats.checkpoints
        );
        assert!(registry.contains("pulse.serve"));
        // The periodic checkpoint is recoverable like an explicit one.
        let tail = Runtime::recover(&clf, &root, "pulse").unwrap();
        assert_eq!(tail.stream_count(), IDS.len());
        rt.disable_checkpoints();
        let before = rt.stats().checkpoints;
        rt.ingest(&traffic(&IDS, 30).concat()).unwrap();
        assert_eq!(rt.stats().checkpoints, before, "disabled schedule is quiet");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn failing_periodic_checkpoint_accepts_the_batch_and_backs_off() {
        let root = tmp_root("broken-registry");
        let clf = detector();
        let registry = ModelRegistry::open(&root).unwrap();
        let mut rt = Runtime::new(&clf, config(1)).unwrap();
        rt.enable_checkpoints(registry, 10).unwrap();
        // Break the registry out from under the schedule: replace its
        // directory with a plain file so every write fails.
        std::fs::remove_dir_all(&root).unwrap();
        std::fs::write(&root, b"not a directory").unwrap();

        let batch: Vec<Record> = (0..12).map(|i| Record::new(5, i as f64)).collect();
        let err = rt.ingest(&batch).expect_err("due checkpoint cannot write");
        assert!(matches!(err, ServeError::Persist(PersistError::Io(_))));
        // The batch was fully accepted despite the error — re-ingesting it
        // would double the stream's input.
        assert_eq!(rt.stats().ingested, 12);
        assert_eq!(rt.stats().pushes + rt.queued() as u64, 12);
        // The failed write is not re-attempted until another interval
        // elapses: the next small ingest succeeds quietly.
        rt.ingest(&batch[..2]).unwrap();
        assert_eq!(rt.stats().ingested, 14);
        let _ = std::fs::remove_file(&root);
    }

    #[test]
    fn recovered_checkpoint_counter_matches_the_live_runtime() {
        let root = tmp_root("ckpt-counter");
        let clf = detector();
        let registry = ModelRegistry::open(&root).unwrap();
        let mut rt = Runtime::new(&clf, config(2)).unwrap();
        rt.ingest(&traffic(&IDS, 10).concat()).unwrap();
        rt.checkpoint(&registry).unwrap();
        rt.checkpoint(&registry).unwrap();
        assert_eq!(rt.stats().checkpoints, 2);
        let recovered = Runtime::recover(&clf, &root, "pulse").unwrap();
        assert_eq!(
            recovered.stats().checkpoints,
            2,
            "the checkpoint a runtime was recovered from counts"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn checkpoint_bytes_scale_with_stream_count() {
        let root = tmp_root("bytes");
        let clf = detector();
        let registry = ModelRegistry::open(&root).unwrap();
        let mut small = Runtime::new(&clf, config(2)).unwrap();
        small.ingest(&traffic(&IDS[..2], 10).concat()).unwrap();
        let small_bytes = small.checkpoint(&registry).unwrap();
        let mut big = Runtime::new(&clf, config(2)).unwrap();
        big.ingest(&traffic(&IDS, 10).concat()).unwrap();
        let big_bytes = big.checkpoint(&registry).unwrap();
        assert!(
            big_bytes > small_bytes,
            "6 streams ({big_bytes} B) must outweigh 2 ({small_bytes} B)"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
