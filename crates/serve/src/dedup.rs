//! Sink-side exactly-once alarm delivery.
//!
//! Alarm delivery out of a single runtime is at-least-once across a
//! checkpoint/recover cycle: undelivered alarms are written into the
//! checkpoint, and a recovered runtime's first
//! [`drain`](crate::Runtime::drain) re-delivers everything the checkpoint
//! held — including alarms the sink may already have seen before the
//! crash. A failover makes this concrete: the supervisor recovers the dead
//! node's runtime from its last checkpoint and hands the sink that
//! checkpoint's pending alarms, some of which were already delivered.
//!
//! [`DedupCursor`] closes the gap at the sink. It tracks, per stream, the
//! per-stream time of the last alarm delivered and drops anything at or
//! behind it. The cursor is keyed on [`Alarm::time`](etsc_stream::Alarm) —
//! the **per-stream sample clock** — rather than the global ingest `seq`,
//! because `seq` is local to one runtime's lineage: the survivor that
//! adopts a failed-over stream assigns its own sequence numbers, while the
//! stream's sample clock continues exactly where the snapshot left it (the
//! determinism the whole migration path guarantees). Within one stream,
//! alarm times are strictly increasing, so "drop time ≤ cursor" removes
//! precisely the redelivered prefix and nothing legitimate.

use std::collections::BTreeMap;

use etsc_persist::{Decoder, Encoder, PersistError};

use crate::runtime::StreamAlarm;
use crate::stats::{push_counter, push_gauge};

/// A sink-side dedup filter upgrading alarm delivery from at-least-once to
/// exactly-once across crash, recovery, and failover (see the
/// [module docs](self)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DedupCursor {
    /// stream id → per-stream time of the last delivered alarm.
    seen: BTreeMap<u64, usize>,
    delivered: u64,
    dropped: u64,
}

impl DedupCursor {
    /// A fresh cursor that has seen nothing.
    pub fn new() -> DedupCursor {
        DedupCursor::default()
    }

    /// Filter one drained chunk: alarms at or behind a stream's cursor are
    /// dropped as redelivery duplicates, the rest advance the cursor and
    /// pass through in order.
    pub fn filter(&mut self, alarms: Vec<StreamAlarm>) -> Vec<StreamAlarm> {
        let mut out = Vec::with_capacity(alarms.len());
        for a in alarms {
            let fresh = match self.seen.get(&a.stream) {
                Some(&cursor) => a.alarm.time > cursor,
                None => true,
            };
            if fresh {
                self.seen.insert(a.stream, a.alarm.time);
                self.delivered += 1;
                out.push(a);
            } else {
                self.dropped += 1;
            }
        }
        out
    }

    /// Alarms passed through over the cursor's life.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Alarms dropped as duplicates over the cursor's life.
    pub fn duplicates_dropped(&self) -> u64 {
        self.dropped
    }

    /// Streams the cursor has delivered at least one alarm for.
    pub fn streams(&self) -> usize {
        self.seen.len()
    }

    /// Append the cursor to `enc` (codec: `etsc-persist`), so a sink can
    /// checkpoint its delivery frontier alongside whatever it feeds.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.delivered);
        enc.put_u64(self.dropped);
        enc.put_usize(self.seen.len());
        for (&stream, &time) in &self.seen {
            enc.put_u64(stream);
            enc.put_usize(time);
        }
    }

    /// Read a cursor encoded by [`encode`](Self::encode).
    pub fn decode(dec: &mut Decoder<'_>) -> Result<DedupCursor, PersistError> {
        let delivered = dec.get_u64("dedup delivered")?;
        let dropped = dec.get_u64("dedup dropped")?;
        let n = dec.get_usize("dedup stream count")?;
        dec.check_claim(n, 16, "dedup streams")?;
        let mut seen = BTreeMap::new();
        for _ in 0..n {
            let stream = dec.get_u64("dedup stream id")?;
            let time = dec.get_usize("dedup stream time")?;
            seen.insert(stream, time);
        }
        Ok(DedupCursor {
            seen,
            delivered,
            dropped,
        })
    }

    /// Render the cursor's counters in Prometheus text exposition format
    /// (same conventions as
    /// [`ServeStats::render_prometheus`](crate::ServeStats::render_prometheus)).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        push_counter(
            &mut out,
            "etsc_sink_delivered_total",
            "Alarms delivered to the sink after dedup.",
            self.delivered,
        );
        push_counter(
            &mut out,
            "etsc_sink_duplicates_dropped_total",
            "Redelivered alarms dropped by the sink dedup cursor.",
            self.dropped,
        );
        push_gauge(
            &mut out,
            "etsc_sink_streams",
            "Streams with at least one delivered alarm.",
            self.seen.len() as u64,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_stream::Alarm;

    fn alarm(stream: u64, seq: u64, time: usize) -> StreamAlarm {
        StreamAlarm {
            stream,
            seq,
            alarm: Alarm {
                time,
                anchor: time.saturating_sub(4),
                label: 1,
                confidence: 0.9,
            },
        }
    }

    #[test]
    fn passes_fresh_alarms_and_drops_redelivered_prefix() {
        let mut cur = DedupCursor::new();
        let first = cur.filter(vec![alarm(3, 0, 10), alarm(3, 1, 25), alarm(7, 2, 5)]);
        assert_eq!(first.len(), 3);
        // A crash+recover re-delivers the checkpointed tail, then fresh work.
        let second = cur.filter(vec![alarm(3, 1, 25), alarm(3, 9, 40), alarm(7, 3, 6)]);
        assert_eq!(second.len(), 2);
        assert_eq!(second[0].alarm.time, 40);
        assert_eq!(second[1].stream, 7);
        assert_eq!(cur.delivered(), 5);
        assert_eq!(cur.duplicates_dropped(), 1);
        assert_eq!(cur.streams(), 2);
    }

    #[test]
    fn time_zero_alarms_are_not_swallowed() {
        // A stream can legitimately alarm at sample index 0; an unseen
        // stream must pass it through.
        let mut cur = DedupCursor::new();
        assert_eq!(cur.filter(vec![alarm(1, 0, 0)]).len(), 1);
        assert_eq!(cur.filter(vec![alarm(1, 0, 0)]).len(), 0, "now a dup");
    }

    #[test]
    fn survives_a_codec_round_trip() {
        let mut cur = DedupCursor::new();
        cur.filter(vec![alarm(3, 0, 10), alarm(7, 1, 2)]);
        cur.filter(vec![alarm(3, 0, 10)]); // one dup
        let mut enc = Encoder::new();
        cur.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = DedupCursor::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, cur);
        // The restored cursor keeps filtering from the same frontier.
        let mut back = back;
        assert_eq!(back.filter(vec![alarm(7, 5, 2)]).len(), 0);
        assert_eq!(back.filter(vec![alarm(7, 5, 3)]).len(), 1);
    }

    #[test]
    fn prometheus_exposition_names_the_counters() {
        let mut cur = DedupCursor::new();
        cur.filter(vec![alarm(3, 0, 10)]);
        let text = cur.render_prometheus();
        assert!(text.contains("etsc_sink_delivered_total 1"));
        assert!(text.contains("etsc_sink_duplicates_dropped_total 0"));
        assert!(text.contains("etsc_sink_streams 1"));
    }
}
