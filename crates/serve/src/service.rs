//! The runtime surface as a trait, so callers can be generic over *where*
//! the streams are served.
//!
//! [`StreamService`] captures the ingestion surface of
//! [`Runtime`](crate::Runtime) — open, ingest, drain — behind an associated
//! error type. The in-process [`Runtime`] implements it directly; the
//! `etsc-net` crate implements it for its `NetClient` (one node over a
//! socket) and `Cluster` (many nodes behind a consistent-hash router), so a
//! test or a driver written against `StreamService` runs unchanged whether
//! the monitors live in this process, behind a socket, or across a cluster
//! — which is exactly how the cross-node layers prove their alarm
//! sequences match the in-process ones.

use crate::error::ServeError;
use crate::runtime::{Record, Runtime, StreamAlarm};
use etsc_early::EarlyClassifier;

/// A destination that serves streams: open them, feed them records, and
/// collect the alarms they raise.
///
/// Implementations must preserve the runtime's core contract: records of
/// one stream are processed in ingest order, nothing is silently dropped,
/// and overflow/remote failures surface as typed errors. Per-stream alarm
/// sequences must not depend on which implementation serves the traffic.
pub trait StreamService {
    /// The implementation's error type (`ServeError` in-process, a wire
    /// error over a socket).
    type Error: std::error::Error + 'static;

    /// Open a monitor for `stream` without ingesting anything; `Ok(false)`
    /// if the stream was already live.
    fn open_stream(&mut self, stream: u64) -> Result<bool, Self::Error>;

    /// Route a batch of records to their streams (auto-opening unknown
    /// ids). Backpressure semantics follow the underlying runtime's
    /// [`OverflowPolicy`](crate::OverflowPolicy): the call either blocks
    /// while the work happens or fails with a typed queue-full error that
    /// means no record of the batch was accepted.
    fn ingest(&mut self, batch: &[Record]) -> Result<(), Self::Error>;

    /// Process everything queued and return the produced alarms.
    fn drain(&mut self) -> Result<Vec<StreamAlarm>, Self::Error>;

    /// Number of live streams.
    fn stream_count(&mut self) -> Result<usize, Self::Error>;
}

impl<'a, C: EarlyClassifier + ?Sized> StreamService for Runtime<'a, C> {
    type Error = ServeError;

    fn open_stream(&mut self, stream: u64) -> Result<bool, ServeError> {
        Ok(Runtime::open_stream(self, stream))
    }

    fn ingest(&mut self, batch: &[Record]) -> Result<(), ServeError> {
        Runtime::ingest(self, batch)
    }

    fn drain(&mut self) -> Result<Vec<StreamAlarm>, ServeError> {
        Ok(Runtime::drain(self))
    }

    fn stream_count(&mut self) -> Result<usize, ServeError> {
        Ok(Runtime::stream_count(self))
    }
}
