//! Golden test of the full Prometheus exposition of a populated
//! [`ServeStats`]: any drift in metric names, help text, type lines,
//! label syntax, or histogram `_bucket`/`_sum`/`_count` layout fails CI
//! with a diff against the committed fixture.
//!
//! To re-bless after a *deliberate* exposition change:
//! `ETSC_BLESS=1 cargo test -p etsc-serve --test prometheus_golden`.

use std::fs;
use std::path::Path;

use etsc_core::metrics::Histogram;
use etsc_serve::stats::{ServeStats, ShardStats};

/// A stats snapshot with every field populated — histograms included —
/// built from fixed values so the exposition is bit-stable.
fn populated_stats() -> ServeStats {
    let drain = Histogram::new();
    drain.record(1_000);
    drain.record(3_000);
    let push = Histogram::new();
    push.record(450);
    push.record(512);
    let pause = Histogram::new();
    pause.record(2_000_000);
    let ckpt_bytes = Histogram::new();
    ckpt_bytes.record(4_096);
    let migration = Histogram::new(); // deliberately empty: the +Inf-only shape
    ServeStats {
        shards: vec![
            ShardStats {
                shard: 0,
                streams: 2,
                queued: 1,
                queue_high_water: 5,
                pushes: 10,
                alarms: 2,
            },
            ShardStats {
                shard: 1,
                streams: 1,
                queued: 0,
                queue_high_water: 3,
                pushes: 6,
                alarms: 1,
            },
        ],
        streams: 3,
        pushes: 16,
        alarms: 3,
        ingested: 17,
        pending_alarms: 1,
        rejected_batches: 1,
        duplicate_batches: 2,
        queue_depth: 1,
        queue_depth_high_water: 5,
        rebalances: 1,
        migrated_streams: 2,
        checkpoints: 1,
        last_checkpoint_bytes: 4_096,
        drain_cycle_ns: drain.snapshot(),
        push_ns: push.snapshot(),
        checkpoint_pause_ns: pause.snapshot(),
        checkpoint_bytes: ckpt_bytes.snapshot(),
        migration_ns: migration.snapshot(),
    }
}

#[test]
fn full_exposition_matches_the_committed_golden() {
    let actual = populated_stats().render_prometheus();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/serve_stats.prom");
    if std::env::var_os("ETSC_BLESS").is_some() {
        fs::write(&path, &actual).unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e} (run with ETSC_BLESS=1 to generate)",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "Prometheus exposition drifted from the golden fixture; if the \
         change is deliberate, re-bless with ETSC_BLESS=1"
    );
}

#[test]
fn exposition_is_structurally_sound() {
    let text = populated_stats().render_prometheus();
    // Every histogram family ends its bucket list with +Inf == _count.
    for family in [
        "etsc_serve_drain_cycle_ns",
        "etsc_serve_push_ns",
        "etsc_serve_checkpoint_pause_ns",
        "etsc_serve_checkpoint_bytes",
        "etsc_serve_migration_ns",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} histogram")),
            "{family} family missing"
        );
        let inf_count: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{family}_bucket{{le=\"+Inf\"}} ")))
            .expect("+Inf line")
            .parse()
            .expect("+Inf value");
        let count: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{family}_count ")))
            .expect("_count line")
            .parse()
            .expect("_count value");
        assert_eq!(inf_count, count, "{family}: le=\"+Inf\" must equal _count");
    }
    // The empty histogram still exposes a valid family.
    assert!(text.contains("etsc_serve_migration_ns_bucket{le=\"+Inf\"} 0"));
    // One HELP/TYPE preamble per family, no duplicates.
    let helps: Vec<&str> = text.lines().filter(|l| l.starts_with("# HELP")).collect();
    let mut dedup = helps.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(helps.len(), dedup.len(), "duplicate HELP preamble");
}
