#![warn(missing_docs)]

//! # etsc-persist
//!
//! Versioned binary snapshots for fitted models and checkpoint/restore for
//! in-flight streaming sessions — the substrate that turns the workspace's
//! incremental sessions into durable, migratable units of work (restarts,
//! deploys, shard migrations).
//!
//! Consistent with the workspace's offline-shim policy, this crate has **no
//! dependencies** beyond `etsc-core`: the codec is a hand-rolled
//! little-endian binary format, not serde.
//!
//! ## Wire format
//!
//! Every snapshot is an **envelope**:
//!
//! ```text
//! magic      4 bytes   b"ETSC"
//! version    u16 LE    FORMAT_VERSION of the writer
//! kind       str       length-prefixed type tag (e.g. "GaussianModel")
//! payload    u64 LE length, then that many body bytes
//! checksum   u64 LE    FNV-1a 64 over every preceding byte
//! ```
//!
//! Inside the payload, the primitive vocabulary is fixed:
//!
//! * integers are little-endian fixed width; `usize` travels as `u64`;
//! * `f64` is `to_bits()` little-endian — snapshots round-trip floats
//!   **bit-exactly**, which is what makes restored sessions continue
//!   bit-identically to uninterrupted ones;
//! * `bool` is one byte (0/1), `Option<T>` is a one-byte tag then `T`;
//! * strings and slices are length-prefixed;
//! * composite records are wrapped in length-prefixed **sections**
//!   ([`Encoder::section`] / [`Decoder::section`]), so readers can validate
//!   that a record consumed exactly its declared bytes.
//!
//! Format evolution policy: the golden fixtures under
//! `tests/fixtures/persist/` pin the current layout. Any layout change must
//! bump [`FORMAT_VERSION`] (readers reject other versions with
//! [`PersistError::UnsupportedVersion`]) and regenerate the fixtures —
//! never silently reshape version 1.
//!
//! ## The [`Persist`] trait
//!
//! A fitted model implements [`Persist`] by providing `encode_body` /
//! `decode_body`; the envelope handling ([`Persist::snapshot`] /
//! [`Persist::restore`]) is supplied. Session checkpointing (for types that
//! borrow a model and therefore cannot implement `restore(&[u8]) -> Self`)
//! lives on the session traits themselves (`DecisionSession::save_state` in
//! `etsc-early`, `ScoreSession::{save_state, load_state}` in
//! `etsc-classifiers`) and reuses this crate's codec.
//!
//! ## [`ModelRegistry`]
//!
//! A small file-backed store (one `<name>.etsc` file per snapshot) for
//! deploy-style workflows: save fitted models by name, list what a
//! directory holds (name, kind, format version, size), and load them back
//! in a new process.

use std::fmt;

use etsc_core::UcrDataset;

/// Current wire-format version. Bump on any layout change; readers reject
/// every other version instead of misdecoding.
pub const FORMAT_VERSION: u16 = 1;

/// Envelope magic bytes.
pub const MAGIC: [u8; 4] = *b"ETSC";

/// Errors produced by snapshot encoding, decoding, and the registry.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// The byte stream ended before a field could be read.
    UnexpectedEof {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// The envelope does not start with [`MAGIC`].
    BadMagic,
    /// The envelope was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the envelope.
        found: u16,
        /// Version this reader supports.
        supported: u16,
    },
    /// The envelope's kind tag names a different type.
    KindMismatch {
        /// Kind expected by the caller.
        expected: String,
        /// Kind found in the envelope.
        found: String,
    },
    /// The envelope checksum does not match its contents.
    ChecksumMismatch,
    /// Bytes were left over after a complete decode — the snapshot does not
    /// match the expected layout.
    TrailingBytes {
        /// Number of undecoded bytes remaining.
        remaining: usize,
    },
    /// The bytes decoded, but violate an invariant of the target type
    /// (wrong lengths, out-of-range discriminant, shape mismatch against
    /// the owning model, …).
    Corrupt(String),
    /// The model or session type does not support persistence.
    Unsupported(&'static str),
    /// A filesystem operation failed (registry paths).
    Io(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::UnexpectedEof { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            PersistError::BadMagic => write!(f, "not an etsc snapshot (bad magic)"),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (reader supports {supported})"
            ),
            PersistError::KindMismatch { expected, found } => {
                write!(f, "snapshot holds a {found:?}, expected a {expected:?}")
            }
            PersistError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            PersistError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete decode")
            }
            PersistError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            PersistError::Unsupported(what) => {
                write!(f, "persistence is not supported by {what}")
            }
            PersistError::Io(msg) => write!(f, "registry I/O error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

// FNV-1a 64-bit hash — the envelope's content checksum, shared with the
// rest of the workspace via `etsc_core::hash` (the serving layer routes
// streams to shards with the same function). Not cryptographic; it guards
// against truncation and bit rot, not adversaries.
use etsc_core::hash::fnv1a_64 as fnv1a;

/// Little-endian binary writer over a growable buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True before the first byte.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as `u64` (the portable width).
    pub fn put_usize(&mut self, v: usize) {
        // usize → u64 is widening on every supported target; the fallback
        // exists only to keep the conversion structurally infallible.
        self.put_u64(u64::try_from(v).unwrap_or(u64::MAX));
    }

    /// Write an `f64` as its IEEE 754 bits — exact round-trip.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Write an `Option<f64>` as a tag byte then the value.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_f64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Write an `Option<usize>` as a tag byte then the value.
    pub fn put_opt_usize(&mut self, v: Option<usize>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_usize(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Write a length-prefixed UTF-8 string.
    ///
    /// The prefix is u32; a string too large to represent (> 4 GiB — far
    /// beyond any model name or label this codec carries) saturates the
    /// declared length, producing an envelope that fails closed at decode
    /// (`UnexpectedEof`/checksum) instead of silently truncating.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).unwrap_or(u32::MAX));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write a length-prefixed opaque byte blob — the carrier for nested
    /// pre-encoded snapshots (e.g. a serving runtime embedding each
    /// stream's monitor-anchor envelope inside its own checkpoint).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Write a length-prefixed slice of `f64`.
    pub fn put_f64_slice(&mut self, xs: &[f64]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_f64(x);
        }
    }

    /// Write a length-prefixed slice of `usize`.
    pub fn put_usize_slice(&mut self, xs: &[usize]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_usize(x);
        }
    }

    /// Write a length-prefixed **section**: run `f` on a fresh encoder and
    /// embed its bytes behind a `u64` length. Readers consume sections with
    /// [`Decoder::section`], which enforces that the record decodes to
    /// exactly its declared extent.
    pub fn section<F: FnOnce(&mut Encoder)>(&mut self, f: F) {
        let mut inner = Encoder::new();
        f(&mut inner);
        self.put_usize(inner.buf.len());
        self.buf.extend_from_slice(&inner.buf);
    }

    /// Fallible twin of [`Encoder::section`] for bodies that can refuse
    /// (session `save_state` implementations).
    pub fn try_section<F>(&mut self, f: F) -> Result<(), PersistError>
    where
        F: FnOnce(&mut Encoder) -> Result<(), PersistError>,
    {
        let mut inner = Encoder::new();
        f(&mut inner)?;
        self.put_usize(inner.buf.len());
        self.buf.extend_from_slice(&inner.buf);
        Ok(())
    }
}

/// Little-endian binary reader over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over raw body bytes (no envelope handling; see
    /// [`open_envelope`] for that).
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], PersistError> {
        // `get` bounds-checks (and `checked_add` guards the end offset), so
        // a corrupt length costs a typed error, never a panic.
        let end = self
            .pos
            .checked_add(n)
            .ok_or(PersistError::UnexpectedEof { context })?;
        let out = self
            .buf
            .get(self.pos..end)
            .ok_or(PersistError::UnexpectedEof { context })?;
        self.pos = end;
        Ok(out)
    }

    /// [`take`](Self::take) as a fixed-size array: the panic-free bridge
    /// from a checked slice to `from_le_bytes`.
    fn take_array<const N: usize>(
        &mut self,
        context: &'static str,
    ) -> Result<[u8; N], PersistError> {
        <[u8; N]>::try_from(self.take(N, context)?)
            .map_err(|_| PersistError::UnexpectedEof { context })
    }

    /// Read one byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, PersistError> {
        let [b] = self.take_array(context)?;
        Ok(b)
    }

    /// Read a `u16`.
    pub fn get_u16(&mut self, context: &'static str) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take_array(context)?))
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take_array(context)?))
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take_array(context)?))
    }

    /// Read a `usize` (stored as `u64`), rejecting values that do not fit.
    pub fn get_usize(&mut self, context: &'static str) -> Result<usize, PersistError> {
        let v = self.get_u64(context)?;
        usize::try_from(v).map_err(|_| PersistError::Corrupt(format!("{context}: {v} overflows")))
    }

    /// Read an `f64` from its IEEE 754 bits.
    pub fn get_f64(&mut self, context: &'static str) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.get_u64(context)?))
    }

    /// Read a `bool`, rejecting tags other than 0/1.
    pub fn get_bool(&mut self, context: &'static str) -> Result<bool, PersistError> {
        match self.get_u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(PersistError::Corrupt(format!("{context}: bool tag {t}"))),
        }
    }

    /// Read an `Option<f64>`.
    pub fn get_opt_f64(&mut self, context: &'static str) -> Result<Option<f64>, PersistError> {
        Ok(if self.get_bool(context)? {
            Some(self.get_f64(context)?)
        } else {
            None
        })
    }

    /// Read an `Option<usize>`.
    pub fn get_opt_usize(&mut self, context: &'static str) -> Result<Option<usize>, PersistError> {
        Ok(if self.get_bool(context)? {
            Some(self.get_usize(context)?)
        } else {
            None
        })
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, context: &'static str) -> Result<String, PersistError> {
        let declared = self.get_u32(context)?;
        let n = usize::try_from(declared).map_err(|_| {
            PersistError::Corrupt(format!("{context}: string length {declared} overflows"))
        })?;
        let bytes = self.take(n, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupt(format!("{context}: invalid UTF-8")))
    }

    /// Read a length-prefixed opaque byte blob written by
    /// [`Encoder::put_bytes`].
    pub fn get_bytes(&mut self, context: &'static str) -> Result<Vec<u8>, PersistError> {
        let n = self.get_usize(context)?;
        Ok(self.take(n, context)?.to_vec())
    }

    /// Read a length-prefixed `Vec<f64>`.
    pub fn get_f64_vec(&mut self, context: &'static str) -> Result<Vec<f64>, PersistError> {
        let n = self.get_usize(context)?;
        if self.remaining() < n.saturating_mul(8) {
            return Err(PersistError::UnexpectedEof { context });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64(context)?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `Vec<usize>`.
    pub fn get_usize_vec(&mut self, context: &'static str) -> Result<Vec<usize>, PersistError> {
        let n = self.get_usize(context)?;
        if self.remaining() < n.saturating_mul(8) {
            return Err(PersistError::UnexpectedEof { context });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_usize(context)?);
        }
        Ok(out)
    }

    /// Validate a declared element count against the bytes actually
    /// remaining, **before** any allocation sized by it.
    ///
    /// Decoders that read `count` records of at least `min_bytes_per_item`
    /// bytes each must call this before `Vec::with_capacity(count)` (or any
    /// other count-proportional allocation): a hostile length prefix — e.g.
    /// arriving over a network connection — must cost a typed error, not a
    /// multi-gigabyte allocation. Uses saturating arithmetic so
    /// near-`u64::MAX` claims cannot overflow-panic.
    pub fn check_claim(
        &self,
        count: usize,
        min_bytes_per_item: usize,
        context: &'static str,
    ) -> Result<(), PersistError> {
        if self.remaining() < count.saturating_mul(min_bytes_per_item.max(1)) {
            return Err(PersistError::Corrupt(format!(
                "{context}: {count} items declared but only {} bytes remain",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Enter a length-prefixed section: returns a sub-decoder over exactly
    /// the section's bytes and advances this decoder past it.
    pub fn section(&mut self, context: &'static str) -> Result<Decoder<'a>, PersistError> {
        let n = self.get_usize(context)?;
        let bytes = self.take(n, context)?;
        Ok(Decoder::new(bytes))
    }

    /// Assert that every byte was consumed — the end-of-record check that
    /// catches layout drift.
    pub fn finish(&self) -> Result<(), PersistError> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(PersistError::TrailingBytes { remaining }),
        }
    }
}

/// Header of an envelope, as reported by [`inspect`] and
/// [`ModelRegistry::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvelopeInfo {
    /// The kind tag of the snapshotted type.
    pub kind: String,
    /// Format version the snapshot was written with.
    pub version: u16,
    /// Payload size in bytes (excluding the envelope framing).
    pub payload_len: usize,
}

/// Wrap pre-encoded body bytes in a versioned, checksummed envelope.
pub fn envelope(kind: &str, payload: &[u8]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.buf.extend_from_slice(&MAGIC);
    enc.put_u16(FORMAT_VERSION);
    enc.put_str(kind);
    enc.put_usize(payload.len());
    enc.buf.extend_from_slice(payload);
    let checksum = fnv1a(&enc.buf);
    enc.put_u64(checksum);
    enc.into_bytes()
}

/// Validate an envelope (magic, version, kind, checksum) and return a
/// decoder positioned over its payload.
pub fn open_envelope<'a>(bytes: &'a [u8], kind: &str) -> Result<Decoder<'a>, PersistError> {
    let info = inspect(bytes)?;
    if info.version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: info.version,
            supported: FORMAT_VERSION,
        });
    }
    if info.kind != kind {
        return Err(PersistError::KindMismatch {
            expected: kind.to_string(),
            found: info.kind,
        });
    }
    // `inspect` proved `payload_len + 8 <= bytes.len()`; saturating + `get`
    // keep that proof local instead of trusting it across functions.
    let payload_end = bytes.len().saturating_sub(8);
    let payload_start = payload_end.saturating_sub(info.payload_len);
    let payload = bytes
        .get(payload_start..payload_end)
        .ok_or(PersistError::UnexpectedEof { context: "payload" })?;
    Ok(Decoder::new(payload))
}

/// Read and validate an envelope's header and checksum without decoding
/// its payload. Accepts any version ≤ the envelope framing itself (the
/// framing has been stable since version 1), so [`ModelRegistry::list`] can
/// report snapshots this reader would refuse to decode.
pub fn inspect(bytes: &[u8]) -> Result<EnvelopeInfo, PersistError> {
    let mut dec = Decoder::new(bytes);
    let magic = dec.take(4, "magic")?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = dec.get_u16("version")?;
    let kind = dec.get_str("kind")?;
    let payload_len = dec.get_usize("payload length")?;
    // Checked arithmetic: the length field is corruption-controlled, and a
    // near-usize::MAX value must report EOF, not overflow-panic (list()
    // relies on inspect never panicking to skip foreign files).
    if payload_len
        .checked_add(8)
        .is_none_or(|need| dec.remaining() < need)
    {
        return Err(PersistError::UnexpectedEof { context: "payload" });
    }
    let body_end = dec.pos.saturating_add(payload_len);
    let body = bytes
        .get(..body_end)
        .ok_or(PersistError::UnexpectedEof { context: "payload" })?;
    let expected = fnv1a(body);
    let mut tail = Decoder::new(bytes.get(body_end..).unwrap_or(&[]));
    let actual = tail.get_u64("checksum")?;
    tail.finish()?;
    if expected != actual {
        return Err(PersistError::ChecksumMismatch);
    }
    Ok(EnvelopeInfo {
        kind,
        version,
        payload_len,
    })
}

/// A snapshot-able fitted model.
///
/// Implementors provide the body codec; `snapshot`/`restore` add the
/// envelope (magic, format version, kind tag, checksum). Restored models
/// are **bit-identical** in behavior to the originals: every float travels
/// as its IEEE bits, and anything recomputed at decode time (e.g. derived
/// cumulative sums) is recomputed by the same deterministic code that fit
/// time ran.
pub trait Persist: Sized {
    /// Type tag written into (and demanded from) the envelope.
    const KIND: &'static str;

    /// Append this model's body to `enc`.
    fn encode_body(&self, enc: &mut Encoder);

    /// Decode a body previously written by [`Persist::encode_body`],
    /// validating every invariant the type relies on.
    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError>;

    /// Serialize into a self-describing, checksummed byte vector.
    fn snapshot(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode_body(&mut enc);
        envelope(Self::KIND, &enc.into_bytes())
    }

    /// Reconstruct from bytes produced by [`Persist::snapshot`].
    fn restore(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut dec = open_envelope(bytes, Self::KIND)?;
        let v = Self::decode_body(&mut dec)?;
        dec.finish()?;
        Ok(v)
    }
}

impl Persist for UcrDataset {
    const KIND: &'static str = "UcrDataset";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.put_usize(self.series_len());
        enc.put_usize(self.len());
        enc.put_usize_slice(self.labels());
        for i in 0..self.len() {
            for &v in self.series(i) {
                enc.put_f64(v);
            }
        }
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let series_len = dec.get_usize("dataset series_len")?;
        let n = dec.get_usize("dataset size")?;
        let labels = dec.get_usize_vec("dataset labels")?;
        if labels.len() != n {
            return Err(PersistError::Corrupt(format!(
                "dataset: {} labels for {n} exemplars",
                labels.len()
            )));
        }
        if dec.remaining() < n.saturating_mul(series_len).saturating_mul(8) {
            return Err(PersistError::UnexpectedEof {
                context: "dataset rows",
            });
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(series_len);
            for _ in 0..series_len {
                row.push(dec.get_f64("dataset row")?);
            }
            data.push(row);
        }
        UcrDataset::new(data, labels).map_err(|e| PersistError::Corrupt(e.to_string()))
    }
}

mod registry;
pub use registry::{ModelEntry, ModelRegistry};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u16(65_000);
        enc.put_u32(4_000_000_000);
        enc.put_u64(u64::MAX);
        enc.put_usize(42);
        enc.put_f64(-0.0);
        enc.put_f64(f64::NAN);
        enc.put_bool(true);
        enc.put_opt_f64(None);
        enc.put_opt_usize(Some(9));
        enc.put_str("héllo");
        enc.put_f64_slice(&[1.5, f64::INFINITY]);
        enc.put_usize_slice(&[3, 1]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u8("a").unwrap(), 7);
        assert_eq!(dec.get_u16("b").unwrap(), 65_000);
        assert_eq!(dec.get_u32("c").unwrap(), 4_000_000_000);
        assert_eq!(dec.get_u64("d").unwrap(), u64::MAX);
        assert_eq!(dec.get_usize("e").unwrap(), 42);
        assert_eq!(dec.get_f64("f").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(dec.get_f64("g").unwrap().is_nan());
        assert!(dec.get_bool("h").unwrap());
        assert_eq!(dec.get_opt_f64("i").unwrap(), None);
        assert_eq!(dec.get_opt_usize("j").unwrap(), Some(9));
        assert_eq!(dec.get_str("k").unwrap(), "héllo");
        assert_eq!(dec.get_f64_vec("l").unwrap(), vec![1.5, f64::INFINITY]);
        assert_eq!(dec.get_usize_vec("m").unwrap(), vec![3, 1]);
        dec.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut enc = Encoder::new();
        enc.put_u64(5);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..4]);
        assert!(matches!(
            dec.get_u64("x"),
            Err(PersistError::UnexpectedEof { .. })
        ));
        // A declared-but-missing slice errors cleanly too.
        let mut enc = Encoder::new();
        enc.put_usize(1 << 40); // absurd length
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(dec.get_f64_vec("big").is_err());
    }

    #[test]
    fn byte_blobs_round_trip_and_reject_truncation() {
        let mut enc = Encoder::new();
        enc.put_bytes(&[0xDE, 0xAD, 0xBE]);
        enc.put_bytes(&[]);
        enc.put_u8(7);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_bytes("blob").unwrap(), vec![0xDE, 0xAD, 0xBE]);
        assert_eq!(dec.get_bytes("empty").unwrap(), Vec::<u8>::new());
        assert_eq!(dec.get_u8("tail").unwrap(), 7);
        dec.finish().unwrap();
        // A declared-but-missing blob errors cleanly.
        let mut enc = Encoder::new();
        enc.put_usize(1 << 40);
        let bytes = enc.into_bytes();
        assert!(matches!(
            Decoder::new(&bytes).get_bytes("big"),
            Err(PersistError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn sections_isolate_records() {
        let mut enc = Encoder::new();
        enc.section(|e| e.put_f64_slice(&[1.0, 2.0]));
        enc.put_u8(9);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let mut sub = dec.section("record").unwrap();
        assert_eq!(sub.get_f64_vec("xs").unwrap(), vec![1.0, 2.0]);
        sub.finish().unwrap();
        assert_eq!(dec.get_u8("tail").unwrap(), 9);
        dec.finish().unwrap();
    }

    #[test]
    fn envelope_validates_magic_version_kind_checksum() {
        let bytes = envelope("Thing", &[1, 2, 3]);
        let info = inspect(&bytes).unwrap();
        assert_eq!(info.kind, "Thing");
        assert_eq!(info.version, FORMAT_VERSION);
        assert_eq!(info.payload_len, 3);
        let mut dec = open_envelope(&bytes, "Thing").unwrap();
        assert_eq!(dec.get_u8("p").unwrap(), 1);

        // Wrong kind.
        assert!(matches!(
            open_envelope(&bytes, "Other"),
            Err(PersistError::KindMismatch { .. })
        ));
        // Flipped payload bit -> checksum failure.
        let mut bad = bytes.clone();
        let flip = bad.len() - 10;
        bad[flip] ^= 0x01;
        assert!(matches!(
            inspect(&bad),
            Err(PersistError::ChecksumMismatch) | Err(PersistError::Corrupt(_))
        ));
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(inspect(&bad), Err(PersistError::BadMagic));
        // Truncation.
        assert!(inspect(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn huge_payload_length_reports_eof_not_overflow() {
        // An envelope whose payload-length field is near u64::MAX must fail
        // as truncated, not panic on `payload_len + 8`.
        let mut enc = Encoder::new();
        enc.buf.extend_from_slice(&MAGIC);
        enc.put_u16(FORMAT_VERSION);
        enc.put_str("Thing");
        enc.put_u64(u64::MAX - 3);
        let bytes = enc.into_bytes();
        assert!(matches!(
            inspect(&bytes),
            Err(PersistError::UnexpectedEof { .. }) | Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn future_format_version_is_rejected_explicitly() {
        // Hand-build a structurally valid envelope claiming version
        // FORMAT_VERSION + 1, with a correct checksum — the reader must
        // reject it as UnsupportedVersion (not mis-decode, not call it
        // corrupt).
        let mut enc = Encoder::new();
        enc.buf.extend_from_slice(&MAGIC);
        enc.put_u16(FORMAT_VERSION + 1);
        enc.put_str("Thing");
        enc.put_usize(2);
        enc.put_u8(1);
        enc.put_u8(2);
        let checksum = fnv1a(&enc.buf);
        enc.put_u64(checksum);
        let bytes = enc.into_bytes();
        // inspect reports the header (so a registry can list it)...
        let info = inspect(&bytes).unwrap();
        assert_eq!(info.version, FORMAT_VERSION + 1);
        // ...but decoding refuses.
        assert_eq!(
            open_envelope(&bytes, "Thing").err(),
            Some(PersistError::UnsupportedVersion {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION,
            })
        );
    }

    #[test]
    fn ucr_dataset_round_trips() {
        let d =
            UcrDataset::new(vec![vec![1.0, -2.5, 0.0], vec![4.0, 5.0, 6.25]], vec![0, 1]).unwrap();
        let bytes = d.snapshot();
        let back = UcrDataset::restore(&bytes).unwrap();
        assert_eq!(back, d);
        // Label/exemplar count mismatch is rejected at decode.
        assert!(matches!(
            UcrDataset::restore(&envelope("UcrDataset", &[0u8; 16])),
            Err(PersistError::Corrupt(_)) | Err(PersistError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let d = UcrDataset::new(vec![vec![1.0]], vec![0]).unwrap();
        let mut enc = Encoder::new();
        d.encode_body(&mut enc);
        enc.put_u8(0xFF); // stray byte
        let bytes = envelope(UcrDataset::KIND, &enc.into_bytes());
        assert!(matches!(
            UcrDataset::restore(&bytes),
            Err(PersistError::TrailingBytes { .. })
        ));
    }
}
