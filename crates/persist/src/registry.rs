//! A small file-backed model store: one `<name>.etsc` envelope per entry.
//!
//! The registry is deliberately plain files in a directory — inspectable
//! with `ls`, rsync-able between hosts, and atomic per entry (writes land
//! in a temp file and are renamed into place, so a crashed save never
//! leaves a half-written snapshot under a live name).

use std::fs;
use std::path::{Path, PathBuf};

use crate::{inspect, Persist, PersistError};

/// File extension used by registry entries.
const EXT: &str = "etsc";

/// One registry entry, as reported by [`ModelRegistry::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelEntry {
    /// Entry name (the file stem).
    pub name: String,
    /// The snapshot's kind tag (e.g. `"GaussianModel"`).
    pub kind: String,
    /// Format version the snapshot was written with.
    pub version: u16,
    /// Total snapshot size in bytes (envelope included).
    pub bytes: u64,
}

/// A directory of named model snapshots.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    root: PathBuf,
}

impl ModelRegistry {
    /// Open (creating if necessary) a registry rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, PersistError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root).map_err(|e| PersistError::Io(e.to_string()))?;
        Ok(Self { root })
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, name: &str) -> Result<PathBuf, PersistError> {
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
            || name.starts_with('.')
        {
            return Err(PersistError::Io(format!(
                "invalid registry name {name:?} (use alphanumerics, '-', '_', '.')"
            )));
        }
        Ok(self.root.join(format!("{name}.{EXT}")))
    }

    /// Save a model under `name`, replacing any previous entry atomically.
    pub fn save<P: Persist>(&self, name: &str, model: &P) -> Result<(), PersistError> {
        self.save_bytes(name, &model.snapshot())
    }

    /// Save raw snapshot bytes (an envelope from any producer — fitted
    /// models, session checkpoints, monitor anchor states) under `name`.
    pub fn save_bytes(&self, name: &str, bytes: &[u8]) -> Result<(), PersistError> {
        // Refuse to store bytes that are not a valid envelope: everything a
        // registry lists must at least identify itself.
        inspect(bytes)?;
        let path = self.path_of(name)?;
        let tmp = self.root.join(format!(".{name}.{EXT}.tmp"));
        fs::write(&tmp, bytes).map_err(|e| PersistError::Io(e.to_string()))?;
        fs::rename(&tmp, &path).map_err(|e| PersistError::Io(e.to_string()))?;
        Ok(())
    }

    /// Load the model saved under `name`.
    pub fn load<P: Persist>(&self, name: &str) -> Result<P, PersistError> {
        P::restore(&self.load_bytes(name)?)
    }

    /// Load the raw snapshot bytes saved under `name`.
    pub fn load_bytes(&self, name: &str) -> Result<Vec<u8>, PersistError> {
        let path = self.path_of(name)?;
        fs::read(&path).map_err(|e| PersistError::Io(format!("{}: {e}", path.display())))
    }

    /// True if an entry named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.path_of(name).map(|p| p.is_file()).unwrap_or(false)
    }

    /// Remove the entry named `name`; returns `false` if it did not exist.
    pub fn remove(&self, name: &str) -> Result<bool, PersistError> {
        let path = self.path_of(name)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(PersistError::Io(e.to_string())),
        }
    }

    /// List every entry (name, kind, format version, size), sorted by name.
    /// Files that are not valid envelopes are skipped, not errors — a
    /// registry directory may hold unrelated files.
    pub fn list(&self) -> Result<Vec<ModelEntry>, PersistError> {
        let mut out = Vec::new();
        let iter = fs::read_dir(&self.root).map_err(|e| PersistError::Io(e.to_string()))?;
        for entry in iter {
            let entry = entry.map_err(|e| PersistError::Io(e.to_string()))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(EXT) {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if name.starts_with('.') {
                continue; // in-flight temp files
            }
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(_) => continue,
            };
            let Ok(info) = inspect(&bytes) else {
                continue;
            };
            out.push(ModelEntry {
                name: name.to_string(),
                kind: info.kind,
                version: info.version,
                bytes: bytes.len() as u64,
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsc_core::UcrDataset;

    fn tmp_root(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("etsc-persist-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    fn toy() -> UcrDataset {
        UcrDataset::new(vec![vec![0.0, 1.0], vec![2.0, 3.0]], vec![0, 1]).unwrap()
    }

    #[test]
    fn save_load_list_remove_cycle() {
        let root = tmp_root("cycle");
        let reg = ModelRegistry::open(&root).unwrap();
        assert!(reg.list().unwrap().is_empty());
        reg.save("toy-v1", &toy()).unwrap();
        assert!(reg.contains("toy-v1"));
        let back: UcrDataset = reg.load("toy-v1").unwrap();
        assert_eq!(back, toy());

        let entries = reg.list().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "toy-v1");
        assert_eq!(entries[0].kind, "UcrDataset");
        assert_eq!(entries[0].version, crate::FORMAT_VERSION);
        assert!(entries[0].bytes > 0);

        assert!(reg.remove("toy-v1").unwrap());
        assert!(!reg.remove("toy-v1").unwrap());
        assert!(!reg.contains("toy-v1"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn rejects_path_traversal_names() {
        let root = tmp_root("names");
        let reg = ModelRegistry::open(&root).unwrap();
        for bad in ["", "../evil", "a/b", ".hidden"] {
            assert!(
                matches!(reg.save(bad, &toy()), Err(PersistError::Io(_))),
                "{bad:?} must be rejected"
            );
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn save_bytes_demands_a_valid_envelope() {
        let root = tmp_root("env");
        let reg = ModelRegistry::open(&root).unwrap();
        assert!(reg.save_bytes("junk", b"not an envelope").is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn list_skips_foreign_files() {
        let root = tmp_root("foreign");
        let reg = ModelRegistry::open(&root).unwrap();
        reg.save("good", &toy()).unwrap();
        fs::write(root.join("README.txt"), "hello").unwrap();
        fs::write(root.join("broken.etsc"), "garbage").unwrap();
        let entries = reg.list().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "good");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn wrong_type_load_fails_with_kind_mismatch() {
        let root = tmp_root("kind");
        let reg = ModelRegistry::open(&root).unwrap();
        reg.save("ds", &toy()).unwrap();
        // UcrDataset snapshot cannot be loaded as another kind; simulate by
        // asking restore for a different kind via raw bytes.
        let bytes = reg.load_bytes("ds").unwrap();
        assert!(matches!(
            crate::open_envelope(&bytes, "GaussianModel"),
            Err(PersistError::KindMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&root);
    }
}
