//! Offline stand-in for the `rand_distr` crate: just [`Normal`] and the
//! [`Distribution`] trait, which is all the dataset generators use. See the
//! `rand` shim for why this workspace vendors these.

use rand::RngCore;

/// A distribution that can be sampled with any RNG.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error building a [`Normal`] (non-finite or negative standard deviation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl core::fmt::Display for NormalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution sampled via Box–Muller.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// `N(mean, std_dev^2)`; `std_dev` must be finite and `>= 0`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(NormalError);
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; one fresh pair per call keeps the sampler stateless.
        let to_unit = |bits: u64| (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let u1 = to_unit(rng.next_u64()).max(f64::MIN_POSITIVE);
        let u2 = to_unit(rng.next_u64());
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_sigma() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn moments_are_approximately_right() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Normal::new(2.0, 3.0).unwrap();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(5.0, 0.0).unwrap();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }
}
