//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!` / `criterion_main!`
//! macros — with a plain median-of-samples wall-clock harness printed to
//! stdout. No statistics beyond min/median/max, no HTML reports; the point
//! is that `cargo bench` runs and produces comparable numbers offline.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. samples) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter value (for groups whose name already identifies
    /// the function).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to the closure under measurement; `iter` runs the routine.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            last_median: Duration::ZERO,
        }
    }

    /// Measure `routine`: a few warmup runs, then `samples` timed runs;
    /// records the median.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed());
        }
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, median: Duration, throughput: Option<Throughput>) {
    let mut line = format!("{name:<56} time: {:>12}", human(median));
    if let Some(tp) = throughput {
        let secs = median.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("   thrpt: {:>12.0} elem/s", n as f64 / secs));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("   thrpt: {:>12.0} B/s", n as f64 / secs));
            }
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Declare per-iteration throughput for derived reporting.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.last_median,
            self.throughput,
        );
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.samples);
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            b.last_median,
            self.throughput,
        );
        self
    }

    /// End the group (prints nothing; provided for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { samples: 11 }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            name: name.into(),
            samples,
            throughput: None,
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        report(id, b.last_median, None);
        self
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.sample_size(5)
            .throughput(Throughput::Elements(100))
            .bench_function("inner", |b| b.iter(|| black_box(2 * 2)))
            .bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| {
                b.iter(|| black_box(x * x))
            });
        g.finish();
    }

    #[test]
    fn human_formats_scale() {
        assert!(human(Duration::from_nanos(500)).contains("ns"));
        assert!(human(Duration::from_micros(50)).contains("µs"));
        assert!(human(Duration::from_millis(50)).contains("ms"));
        assert!(human(Duration::from_secs(2)).contains(" s"));
    }
}
