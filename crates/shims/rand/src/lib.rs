//! Offline stand-in for the `rand` crate.
//!
//! This build environment has no network access to crates.io, so the
//! workspace vendors a tiny, deterministic, API-compatible subset of
//! `rand` 0.9: [`rngs::StdRng`], [`Rng`], [`SeedableRng`], and
//! [`seq::SliceRandom`]. The generator is SplitMix64 — statistically fine
//! for synthetic dataset generation, *not* cryptographic. Streams differ
//! from upstream `rand` (seeded outputs are stable within this workspace
//! only), which is acceptable: every consumer treats seeds as opaque
//! reproducibility handles, never as cross-library fixtures.

/// Core RNG interface: 64 raw bits per call.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value that can be drawn uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::draw(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * f64::draw(rng)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw of a [`Standard`] type (`rng.random::<f64>()` is `[0,1)`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw from a range (half-open or inclusive).
    #[inline]
    fn random_range<T, U: SampleRange<T>>(&mut self, range: U) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 core).
    ///
    /// Upstream `StdRng` is ChaCha-based; this stand-in only promises
    /// determinism and reasonable equidistribution, which is all the
    /// synthetic dataset generators need.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = Self {
                // Avoid the all-zero orbit start and decorrelate tiny seeds.
                state: seed ^ 0x5DEECE66D_u64.wrapping_mul(0x2545F4914F6CDD1D),
            };
            // Warm up past any low-entropy start.
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..8).map(|_| a.random::<f64>()).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.random::<f64>()).collect();
        let zs: Vec<f64> = (0..8).map(|_| c.random::<f64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
            let i: i32 = rng.random_range(0..3);
            assert!((0..3).contains(&i));
            let u: usize = rng.random_range(25..45);
            assert!((25..45).contains(&u));
            let f: f64 = rng.random_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&f));
        }
    }

    #[test]
    fn random_f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "overwhelmingly likely to move something");
    }
}
