//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, range and `prop::collection::vec` strategies,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! [`ProptestConfig::with_cases`]. Cases are generated from a deterministic
//! RNG seeded by the test name, so failures reproduce across runs; there is
//! no shrinking (a failing case reports its index and message instead).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-test configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Outcome machinery mirroring `proptest::test_runner`.
pub mod test_runner {
    /// Why a generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// `prop_assume!` rejected the input; the case is skipped.
        Reject,
    }

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// Is this a rejection (skip) rather than a failure?
        pub fn is_reject(&self) -> bool {
            matches!(self, TestCaseError::Reject)
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
            }
        }
    }

    /// Result type the [`crate::proptest!`] macro's case bodies return.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// A generator of values for one macro parameter.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy for `Vec<S::Value>` with length drawn from a range.
        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        /// Vector of `element`-generated values, length uniform in `len`.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let n = rng.random_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Deterministic per-test seed: FNV-1a over the test's name.
pub fn seed_for(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Fresh RNG for one generated case.
pub fn case_rng(name: &str, case: u32) -> StdRng {
    let mut rng = StdRng::seed_from_u64(seed_for(name, case));
    let _ = rng.next_u64();
    rng
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Assert inside a property test; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(left == right) {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($a),
                        stringify!($b),
                        left,
                        right
                    )));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(left == right) {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        left,
                        right
                    )));
                }
            }
        }
    };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (left, right) => {
                if left == right {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($a),
                        stringify!($b),
                        left
                    )));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                if left == right {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "{}\n  both: {:?}",
                        format!($($fmt)+),
                        left
                    )));
                }
            }
        }
    };
}

/// Skip the current generated case when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `fn` runs its body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                    let outcome: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err(e) if e.is_reject() => continue,
                        Err(e) => panic!(
                            "property test {} failed on generated case #{case}: {e}",
                            stringify!($name)
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn short_vecs() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(-10.0f64..10.0, 1..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, y in -2.5f64..2.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_strategy_respects_len_and_bounds(v in short_vecs()) {
            prop_assert!((1..8).contains(&v.len()));
            for x in &v {
                prop_assert!((-10.0..10.0).contains(x));
            }
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(crate::seed_for("a_test", 3), crate::seed_for("a_test", 3));
        assert_ne!(crate::seed_for("a_test", 3), crate::seed_for("b_test", 3));
        assert_ne!(crate::seed_for("a_test", 3), crate::seed_for("a_test", 4));
    }

    #[test]
    #[should_panic(expected = "failed on generated case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x = {x}");
            }
        }
        always_fails();
    }
}
