//! Multinomial (softmax) logistic regression trained by full-batch gradient
//! descent with L2 regularization.
//!
//! This is the linear classifier behind WEASEL-lite (the paper's TEASER uses
//! liblinear; we train our own). Deterministic: no stochastic shuffling, so
//! fitted models are bit-reproducible.

use etsc_persist::{Decoder, Encoder, Persist, PersistError};

use crate::gaussian::softmax_of_logs;
use crate::Classifier;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct LogisticConfig {
    /// Gradient descent epochs.
    pub epochs: usize,
    /// Initial learning rate (decays as `lr / (1 + epoch/10)`).
    pub learning_rate: f64,
    /// L2 penalty on weights (not on biases).
    pub l2: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            learning_rate: 0.5,
            l2: 1e-3,
        }
    }
}

/// A fitted softmax regression model.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// `weights[c]` has `n_features` entries.
    weights: Vec<Vec<f64>>,
    biases: Vec<f64>,
}

impl LogisticRegression {
    /// Fit on dense feature rows `x` with labels `y` in `0..n_classes`.
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, cfg: &LogisticConfig) -> Self {
        assert_eq!(x.len(), y.len(), "one label per row");
        assert!(!x.is_empty(), "need training rows");
        assert!(n_classes >= 2, "need at least two classes");
        let n_features = x[0].len();
        assert!(x.iter().all(|r| r.len() == n_features));
        let n = x.len() as f64;

        let mut weights = vec![vec![0.0; n_features]; n_classes];
        let mut biases = vec![0.0; n_classes];
        let mut probs = vec![0.0f64; n_classes];
        let mut grad_w = vec![vec![0.0; n_features]; n_classes];
        let mut grad_b = vec![0.0; n_classes];

        for epoch in 0..cfg.epochs {
            let lr = cfg.learning_rate / (1.0 + epoch as f64 / 10.0);
            for g in grad_w.iter_mut() {
                g.fill(0.0);
            }
            grad_b.fill(0.0);

            for (row, &label) in x.iter().zip(y) {
                // Forward.
                for c in 0..n_classes {
                    probs[c] = biases[c]
                        + weights[c]
                            .iter()
                            .zip(row)
                            .map(|(&w, &v)| w * v)
                            .sum::<f64>();
                }
                let p = softmax_of_logs(&probs);
                // Backward: dL/dz_c = p_c - [c == label].
                for c in 0..n_classes {
                    let err = p[c] - if c == label { 1.0 } else { 0.0 };
                    grad_b[c] += err;
                    for (g, &v) in grad_w[c].iter_mut().zip(row) {
                        *g += err * v;
                    }
                }
            }
            for c in 0..n_classes {
                biases[c] -= lr * grad_b[c] / n;
                for (w, g) in weights[c].iter_mut().zip(&grad_w[c]) {
                    *w -= lr * (g / n + cfg.l2 * *w);
                }
            }
        }
        Self { weights, biases }
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.weights[0].len()
    }

    /// Raw linear scores (pre-softmax logits).
    pub fn logits(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_features());
        self.weights
            .iter()
            .zip(&self.biases)
            .map(|(w, &b)| b + w.iter().zip(x).map(|(&wi, &xi)| wi * xi).sum::<f64>())
            .collect()
    }
}

impl Persist for LogisticRegression {
    const KIND: &'static str = "LogisticRegression";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.put_usize(self.weights.len());
        for w in &self.weights {
            enc.put_f64_slice(w);
        }
        enc.put_f64_slice(&self.biases);
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let n_classes = dec.get_usize("logistic class count")?;
        if n_classes < 2 {
            return Err(PersistError::Corrupt(format!(
                "logistic: {n_classes} classes (need at least 2)"
            )));
        }
        let mut weights = Vec::with_capacity(n_classes);
        for _ in 0..n_classes {
            weights.push(dec.get_f64_vec("logistic weights")?);
        }
        let n_features = weights[0].len();
        if weights.iter().any(|w| w.len() != n_features) {
            return Err(PersistError::Corrupt("logistic: ragged weight rows".into()));
        }
        let biases = dec.get_f64_vec("logistic biases")?;
        if biases.len() != n_classes {
            return Err(PersistError::Corrupt(format!(
                "logistic: {} biases for {n_classes} classes",
                biases.len()
            )));
        }
        Ok(Self { weights, biases })
    }
}

impl Classifier for LogisticRegression {
    fn n_classes(&self) -> usize {
        self.weights.len()
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        softmax_of_logs(&self.logits(x))
    }

    fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n_features());
        assert_eq!(out.len(), self.weights.len());
        for (o, (w, &b)) in out.iter_mut().zip(self.weights.iter().zip(&self.biases)) {
            *o = b + w.iter().zip(x).map(|(&wi, &xi)| wi * xi).sum::<f64>();
        }
        crate::gaussian::softmax_of_logs_in_place(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let t = i as f64 / 20.0;
            x.push(vec![t, 1.0 - t]);
            y.push(0);
            x.push(vec![t + 2.0, 1.0 - t]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn fits_linearly_separable_data() {
        let (x, y) = linearly_separable();
        let m = LogisticRegression::fit(&x, &y, 2, &LogisticConfig::default());
        let correct = x.iter().zip(&y).filter(|(r, &l)| m.predict(r) == l).count();
        assert_eq!(correct, x.len());
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = linearly_separable();
        let m = LogisticRegression::fit(&x, &y, 2, &LogisticConfig::default());
        let p = m.predict_proba(&[0.5, 0.5]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multiclass_works() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..15 {
            let jitter = (i % 5) as f64 * 0.02;
            x.push(vec![0.0 + jitter, 0.0]);
            y.push(0);
            x.push(vec![3.0 + jitter, 0.0]);
            y.push(1);
            x.push(vec![0.0 + jitter, 3.0]);
            y.push(2);
        }
        let m = LogisticRegression::fit(&x, &y, 3, &LogisticConfig::default());
        assert_eq!(m.predict(&[0.1, 0.1]), 0);
        assert_eq!(m.predict(&[2.9, 0.0]), 1);
        assert_eq!(m.predict(&[0.0, 2.9]), 2);
        assert_eq!(m.n_classes(), 3);
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = linearly_separable();
        let cfg = LogisticConfig::default();
        let a = LogisticRegression::fit(&x, &y, 2, &cfg);
        let b = LogisticRegression::fit(&x, &y, 2, &cfg);
        assert_eq!(a.logits(&x[0]), b.logits(&x[0]));
    }

    #[test]
    fn l2_shrinks_weights() {
        let (x, y) = linearly_separable();
        let small = LogisticRegression::fit(
            &x,
            &y,
            2,
            &LogisticConfig {
                l2: 1e-4,
                ..LogisticConfig::default()
            },
        );
        let big = LogisticRegression::fit(
            &x,
            &y,
            2,
            &LogisticConfig {
                l2: 1.0,
                ..LogisticConfig::default()
            },
        );
        let norm = |m: &LogisticRegression| {
            m.weights
                .iter()
                .flat_map(|w| w.iter())
                .map(|v| v * v)
                .sum::<f64>()
        };
        assert!(norm(&big) < norm(&small));
    }
}
