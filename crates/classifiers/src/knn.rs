//! k-nearest-neighbor time series classification — the de-facto UCR
//! baseline — under Euclidean distance or DTW with a lower-bounding cascade.

use etsc_core::distance::{squared_euclidean, squared_euclidean_early_abandon};
use etsc_core::dtw::{dtw_sq_early_abandon, envelope, lb_keogh_sq, lb_kim_sq};
use etsc_core::{ClassLabel, UcrDataset};
use etsc_persist::{Decoder, Encoder, Persist, PersistError};

use crate::Classifier;

/// Distance measure for [`NearestNeighbors`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Euclidean distance with early abandoning.
    Euclidean,
    /// DTW under a Sakoe–Chiba band (`None` = unconstrained), accelerated by
    /// the LB_Kim → LB_Keogh → early-abandoning-DTW cascade.
    Dtw {
        /// Maximum warping offset.
        band: Option<usize>,
    },
}

/// A fitted kNN classifier. Training is lazy (exemplars are stored); DTW
/// queries precompute per-exemplar envelopes for LB_Keogh.
#[derive(Debug, Clone)]
pub struct NearestNeighbors {
    train: UcrDataset,
    metric: Metric,
    k: usize,
    /// Per-exemplar (upper, lower) envelopes, for DTW only.
    envelopes: Vec<(Vec<f64>, Vec<f64>)>,
}

impl NearestNeighbors {
    /// Store `train` for lazy kNN classification. `k >= 1`.
    pub fn fit(train: &UcrDataset, metric: Metric, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        let envelopes = match metric {
            Metric::Dtw { band } => {
                let b = band.unwrap_or(train.series_len());
                (0..train.len())
                    .map(|i| envelope(train.series(i), b))
                    .collect()
            }
            Metric::Euclidean => Vec::new(),
        };
        Self {
            train: train.clone(),
            metric,
            k,
            envelopes,
        }
    }

    /// Convenience constructor for the classic 1NN-ED baseline.
    pub fn one_nn_euclidean(train: &UcrDataset) -> Self {
        Self::fit(train, Metric::Euclidean, 1)
    }

    /// Squared distance from `x` to train exemplar `i`, abandoning above
    /// `cutoff`.
    fn dist_sq_to(&self, x: &[f64], i: usize, cutoff: f64) -> Option<f64> {
        let t = self.train.series(i);
        match self.metric {
            Metric::Euclidean => squared_euclidean_early_abandon(x, t, cutoff),
            Metric::Dtw { band } => {
                // Cascade: constant-time LB_Kim, then LB_Keogh (if the query
                // length matches the stored envelope), then full DTW.
                if lb_kim_sq(x, t) > cutoff {
                    return None;
                }
                if x.len() == t.len() {
                    let (u, l) = &self.envelopes[i];
                    if lb_keogh_sq(x, u, l) > cutoff {
                        return None;
                    }
                }
                dtw_sq_early_abandon(x, t, band, cutoff)
            }
        }
    }

    /// Indices and squared distances of the k nearest training exemplars.
    pub fn k_nearest(&self, x: &[f64]) -> Vec<(usize, f64)> {
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(self.k + 1);
        let mut cutoff = f64::INFINITY;
        for i in 0..self.train.len() {
            if let Some(d) = self.dist_sq_to(x, i, cutoff) {
                if d < cutoff || best.len() < self.k {
                    let pos = best.partition_point(|&(_, bd)| bd <= d);
                    best.insert(pos, (i, d));
                    if best.len() > self.k {
                        best.pop();
                    }
                    if best.len() == self.k {
                        cutoff = best.last().unwrap().1;
                    }
                }
            }
        }
        best
    }

    /// Index of the single nearest training exemplar.
    pub fn nearest_index(&self, x: &[f64]) -> usize {
        self.k_nearest(x)
            .first()
            .map(|&(i, _)| i)
            .expect("non-empty training set always yields a neighbor")
    }

    /// The stored training data.
    pub fn train_data(&self) -> &UcrDataset {
        &self.train
    }
}

impl Persist for NearestNeighbors {
    const KIND: &'static str = "NearestNeighbors";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.section(|e| self.train.encode_body(e));
        match self.metric {
            Metric::Euclidean => enc.put_u8(0),
            Metric::Dtw { band } => {
                enc.put_u8(1);
                enc.put_opt_usize(band);
            }
        }
        enc.put_usize(self.k);
    }

    /// The stored exemplars and metric travel; LB_Keogh envelopes are
    /// recomputed at decode by the same deterministic code fit time ran.
    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let mut sub = dec.section("knn train")?;
        let train = UcrDataset::decode_body(&mut sub)?;
        sub.finish()?;
        let metric = match dec.get_u8("knn metric")? {
            0 => Metric::Euclidean,
            1 => Metric::Dtw {
                band: dec.get_opt_usize("knn band")?,
            },
            t => return Err(PersistError::Corrupt(format!("knn: metric tag {t}"))),
        };
        let k = dec.get_usize("knn k")?;
        if k == 0 {
            return Err(PersistError::Corrupt("knn: k must be at least 1".into()));
        }
        Ok(Self::fit(&train, metric, k))
    }
}

impl Classifier for NearestNeighbors {
    fn n_classes(&self) -> usize {
        self.train.n_classes()
    }

    fn predict(&self, x: &[f64]) -> ClassLabel {
        let neighbors = self.k_nearest(x);
        let mut votes = vec![0usize; self.n_classes()];
        for &(i, _) in &neighbors {
            votes[self.train.label(i)] += 1;
        }
        let mut best = 0;
        for (c, &v) in votes.iter().enumerate() {
            if v > votes[best] {
                best = c;
            }
        }
        best
    }

    /// Vote fractions among the k neighbors.
    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut votes = vec![0.0; self.n_classes()];
        self.predict_proba_into(x, &mut votes);
        votes
    }

    fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.n_classes());
        out.fill(0.0);
        let neighbors = self.k_nearest(x);
        let n = neighbors.len().max(1) as f64;
        for &(i, _) in &neighbors {
            out[self.train.label(i)] += 1.0 / n;
        }
    }
}

/// Leave-one-out 1NN over `data` at the given metric: for each exemplar,
/// the label of its nearest *other* exemplar. Returns per-exemplar
/// (nn_index, predicted_label). Heavily used by ECTS (RNN computation) and
/// the eval module.
pub fn loo_one_nn(data: &UcrDataset, metric: Metric) -> Vec<(usize, ClassLabel)> {
    let n = data.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut best_j = usize::MAX;
        let mut best_d = f64::INFINITY;
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = match metric {
                Metric::Euclidean => {
                    squared_euclidean_early_abandon(data.series(i), data.series(j), best_d)
                        .unwrap_or(f64::INFINITY)
                }
                Metric::Dtw { band } => {
                    dtw_sq_early_abandon(data.series(i), data.series(j), band, best_d)
                        .unwrap_or(f64::INFINITY)
                }
            };
            if d < best_d {
                best_d = d;
                best_j = j;
            }
        }
        out.push((best_j, data.label(best_j)));
    }
    out
}

/// Brute-force nearest neighbor of `x` among arbitrary candidate slices
/// under squared Euclidean distance; used by algorithms that operate on
/// prefix spaces where no dataset object exists.
pub fn nearest_of<'a, I>(x: &[f64], candidates: I) -> Option<(usize, f64)>
where
    I: IntoIterator<Item = &'a [f64]>,
{
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in candidates.into_iter().enumerate() {
        let cutoff = best.map_or(f64::INFINITY, |(_, d)| d);
        if let Some(d) = squared_euclidean_early_abandon(x, c, cutoff) {
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
    }
    best
}

/// Full (non-abandoning) squared distance — convenience for tests and tools.
pub fn dist_sq(metric: Metric, a: &[f64], b: &[f64]) -> f64 {
    match metric {
        Metric::Euclidean => squared_euclidean(a, b),
        Metric::Dtw { band } => etsc_core::dtw::dtw_sq(a, b, band),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated classes: level 0 wiggle vs level 5 wiggle.
    fn toy(n_per_class: usize, len: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n_per_class {
                let base = c as f64 * 5.0;
                data.push(
                    (0..len)
                        .map(|j| base + 0.1 * ((i + j) as f64).sin())
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    #[test]
    fn one_nn_classifies_separated_classes() {
        let train = toy(5, 20);
        let clf = NearestNeighbors::one_nn_euclidean(&train);
        let q0: Vec<f64> = vec![0.05; 20];
        let q1: Vec<f64> = vec![4.9; 20];
        assert_eq!(clf.predict(&q0), 0);
        assert_eq!(clf.predict(&q1), 1);
    }

    #[test]
    fn knn_proba_is_vote_fraction() {
        let train = toy(5, 20);
        let clf = NearestNeighbors::fit(&train, Metric::Euclidean, 3);
        let p = clf.predict_proba(&[0.0; 20]);
        assert_eq!(p.len(), 2);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dtw_metric_agrees_on_easy_data() {
        let train = toy(4, 16);
        let ed = NearestNeighbors::fit(&train, Metric::Euclidean, 1);
        let dtw = NearestNeighbors::fit(&train, Metric::Dtw { band: Some(3) }, 1);
        for q in [vec![0.1; 16], vec![5.1; 16]] {
            assert_eq!(ed.predict(&q), dtw.predict(&q));
        }
    }

    #[test]
    fn dtw_cascade_matches_bruteforce_nn() {
        // Cascade pruning must not change the answer.
        let train = toy(6, 12);
        let clf = NearestNeighbors::fit(&train, Metric::Dtw { band: Some(2) }, 1);
        let q: Vec<f64> = (0..12).map(|j| 2.0 + (j as f64 * 0.4).sin()).collect();
        let fast = clf.nearest_index(&q);
        let mut best = (usize::MAX, f64::INFINITY);
        for i in 0..train.len() {
            let d = dist_sq(Metric::Dtw { band: Some(2) }, &q, train.series(i));
            if d < best.1 {
                best = (i, d);
            }
        }
        assert_eq!(fast, best.0);
    }

    #[test]
    fn k_nearest_is_sorted_and_k_long() {
        let train = toy(10, 8);
        let clf = NearestNeighbors::fit(&train, Metric::Euclidean, 4);
        let ns = clf.k_nearest(&[0.0; 8]);
        assert_eq!(ns.len(), 4);
        for w in ns.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn loo_one_nn_never_selects_self() {
        let d = toy(4, 10);
        for (i, &(j, _)) in loo_one_nn(&d, Metric::Euclidean).iter().enumerate() {
            assert_ne!(i, j);
        }
    }

    #[test]
    fn loo_one_nn_labels_match_class_structure() {
        let d = toy(4, 10);
        let loo = loo_one_nn(&d, Metric::Euclidean);
        for (i, &(_, pred)) in loo.iter().enumerate() {
            assert_eq!(pred, d.label(i), "well-separated LOO must be perfect");
        }
    }

    #[test]
    fn nearest_of_slices() {
        let a = [0.0, 0.0];
        let b = [1.0, 1.0];
        let c = [0.1, 0.0];
        let cands: Vec<&[f64]> = vec![&a, &b, &c];
        let (i, d) = nearest_of(&[0.08, 0.0], cands).unwrap();
        assert_eq!(i, 2);
        assert!(d < 0.01);
        assert!(nearest_of(&[0.0], Vec::<&[f64]>::new()).is_none());
    }
}
