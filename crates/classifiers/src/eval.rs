//! Evaluation: accuracy, confusion matrices, cross-validation.
//!
//! Batch evaluation is embarrassingly parallel — each test exemplar's
//! prediction is independent — so every entry point here fans the predict
//! calls out across worker threads (`etsc_core::parallel`, honoring
//! `ETSC_THREADS`) and folds the per-exemplar outcomes serially in dataset
//! order. Results are identical at any thread count.

use etsc_core::{parallel, ClassLabel, UcrDataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::Classifier;

/// Minimum test-set size before batch evaluation fans out to worker
/// threads. A spawn round costs ~10µs per worker and cheap classifiers
/// (centroids) predict in well under a microsecond, so small test sets stay
/// on the serial loop; expensive models on big sets dominate either way.
const PAR_MIN_EVAL: usize = 128;

/// Per-exemplar predictions of `clf` over `test`, in dataset order,
/// computed in parallel. The primitive under [`accuracy`] and
/// [`ConfusionMatrix::evaluate`]; public because batch experiment bins want
/// the raw labels too.
pub fn predict_all<C: Classifier + ?Sized>(clf: &C, test: &UcrDataset) -> Vec<ClassLabel> {
    let threads = parallel::gate(test.len(), PAR_MIN_EVAL);
    parallel::map_range_with(threads, test.len(), |i| clf.predict(test.series(i)))
}

/// Fraction of `test` exemplars `clf` labels correctly.
pub fn accuracy<C: Classifier>(clf: &C, test: &UcrDataset) -> f64 {
    let correct = predict_all(clf, test)
        .into_iter()
        .zip(test.labels())
        .filter(|(p, a)| *p == **a)
        .count();
    correct as f64 / test.len() as f64
}

/// Accuracy of a list of (predicted, actual) pairs.
pub fn accuracy_of(pairs: &[(ClassLabel, ClassLabel)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().filter(|(p, a)| p == a).count() as f64 / pairs.len() as f64
}

/// A confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Build from (predicted, actual) pairs over `n_classes`.
    pub fn from_pairs(pairs: &[(ClassLabel, ClassLabel)], n_classes: usize) -> Self {
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for &(pred, actual) in pairs {
            counts[actual][pred] += 1;
        }
        Self { counts }
    }

    /// Evaluate a classifier over a test set (predictions run in parallel;
    /// see [`predict_all`]).
    pub fn evaluate<C: Classifier>(clf: &C, test: &UcrDataset) -> Self {
        let pairs: Vec<(ClassLabel, ClassLabel)> = predict_all(clf, test)
            .into_iter()
            .zip(test.labels().iter().copied())
            .collect();
        Self::from_pairs(&pairs, clf.n_classes().max(test.n_classes()))
    }

    /// `counts[actual][predicted]`.
    pub fn count(&self, actual: ClassLabel, predicted: ClassLabel) -> usize {
        self.counts[actual][predicted]
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().map(|r| r.iter().sum::<usize>()).sum();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Recall of class `c` (0.0 when the class never occurs).
    pub fn recall(&self, c: ClassLabel) -> f64 {
        let row: usize = self.counts[c].iter().sum();
        if row == 0 {
            0.0
        } else {
            self.counts[c][c] as f64 / row as f64
        }
    }

    /// Precision of class `c` (0.0 when the class is never predicted).
    pub fn precision(&self, c: ClassLabel) -> f64 {
        let col: usize = self.counts.iter().map(|r| r[c]).sum();
        if col == 0 {
            0.0
        } else {
            self.counts[c][c] as f64 / col as f64
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }
}

/// Stratified k-fold cross-validated accuracy. `fit` receives a training
/// fold and must return a fitted classifier.
pub fn cross_val_accuracy<C, F>(data: &UcrDataset, k: usize, seed: u64, mut fit: F) -> f64
where
    C: Classifier,
    F: FnMut(&UcrDataset) -> C,
{
    assert!(k >= 2, "need at least 2 folds");
    let mut rng = StdRng::seed_from_u64(seed);
    // Stratified fold assignment: shuffle within each class, deal round-robin.
    let mut fold_of = vec![0usize; data.len()];
    for c in 0..data.n_classes() {
        let mut members: Vec<usize> = (0..data.len()).filter(|&i| data.label(i) == c).collect();
        members.shuffle(&mut rng);
        for (pos, &i) in members.iter().enumerate() {
            fold_of[i] = pos % k;
        }
    }
    let mut correct = 0usize;
    let mut total = 0usize;
    for fold in 0..k {
        let train_idx: Vec<usize> = (0..data.len()).filter(|&i| fold_of[i] != fold).collect();
        let test_idx: Vec<usize> = (0..data.len()).filter(|&i| fold_of[i] == fold).collect();
        if train_idx.is_empty() || test_idx.is_empty() {
            continue;
        }
        // `subset` can only fail on an empty index list, which the guard
        // above excludes — but fold assignment is data-driven, so a
        // surprise here must skip the fold, not abort the caller.
        let Ok(train) = data.subset(&train_idx) else {
            continue;
        };
        let clf = fit(&train);
        // `fit` is FnMut, so folds stay sequential; the fold's held-out
        // predictions fan out in parallel.
        let threads = parallel::gate(test_idx.len(), PAR_MIN_EVAL);
        let ok = parallel::map_with(threads, &test_idx, |&i| {
            clf.predict(data.series(i)) == data.label(i)
        });
        correct += ok.iter().filter(|&&b| b).count();
        total += test_idx.len();
    }
    correct as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::NearestNeighbors;

    fn toy(n: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n {
                data.push(vec![
                    c as f64 * 4.0 + (i as f64) * 0.01,
                    c as f64 * 4.0,
                    0.0,
                ]);
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    #[test]
    fn accuracy_on_separable_data_is_one() {
        let d = toy(6);
        let clf = NearestNeighbors::one_nn_euclidean(&d);
        assert_eq!(accuracy(&clf, &d), 1.0);
    }

    #[test]
    fn accuracy_of_pairs() {
        assert_eq!(accuracy_of(&[(0, 0), (1, 1), (0, 1), (1, 0)]), 0.5);
        assert_eq!(accuracy_of(&[]), 0.0);
    }

    #[test]
    fn confusion_matrix_counts() {
        let pairs = [(0, 0), (0, 0), (1, 0), (1, 1), (0, 1)];
        let cm = ConfusionMatrix::from_pairs(&pairs, 2);
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
        assert!((cm.recall(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.precision(0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.n_classes(), 2);
    }

    #[test]
    fn confusion_matrix_degenerate_classes() {
        let cm = ConfusionMatrix::from_pairs(&[(0, 0)], 2);
        assert_eq!(cm.recall(1), 0.0);
        assert_eq!(cm.precision(1), 0.0);
    }

    #[test]
    fn cross_val_on_separable_data() {
        let d = toy(10);
        let acc = cross_val_accuracy(&d, 5, 1, NearestNeighbors::one_nn_euclidean);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn cross_val_is_deterministic() {
        let d = toy(8);
        let a = cross_val_accuracy(&d, 4, 2, NearestNeighbors::one_nn_euclidean);
        let b = cross_val_accuracy(&d, 4, 2, NearestNeighbors::one_nn_euclidean);
        assert_eq!(a, b);
    }
}
