//! Minimal dense linear algebra for the Gaussian models: a symmetric matrix
//! type and Cholesky factorization (solve + log-determinant).
//!
//! Written in-repo rather than pulling a linear algebra dependency: the only
//! consumers are full-covariance Gaussians over modest dimensions, so a
//! straightforward O(n³) Cholesky is both sufficient and easy to audit.

use etsc_persist::{Decoder, Encoder, Persist, PersistError};

/// A dense row-major square matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of size `n × n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major vector (length must be `n²`).
    pub fn from_vec(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "need n^2 entries");
        Self { n, data }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Add `lambda` to the diagonal (ridge regularization).
    pub fn add_ridge(&mut self, lambda: f64) {
        for i in 0..self.n {
            self[(i, i)] += lambda;
        }
    }

    /// The leading `k × k` principal submatrix (marginal covariance of the
    /// first `k` coordinates).
    pub fn leading_principal(&self, k: usize) -> Matrix {
        assert!(k <= self.n);
        let mut out = Matrix::zeros(k);
        for i in 0..k {
            for j in 0..k {
                out[(i, j)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for i in 0..self.n {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            y[i] = row.iter().zip(x).map(|(&a, &b)| a * b).sum();
        }
        y
    }
}

impl Persist for Matrix {
    const KIND: &'static str = "Matrix";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.put_usize(self.n);
        enc.put_f64_slice(&self.data);
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let n = dec.get_usize("matrix dim")?;
        let data = dec.get_f64_vec("matrix data")?;
        if data.len() != n.saturating_mul(n) {
            return Err(PersistError::Corrupt(format!(
                "matrix: {} entries for dim {n}",
                data.len()
            )));
        }
        Ok(Self { n, data })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// Because the algorithm fills `L` row by row, the leading `t × t` block of
/// `L` is *exactly* (bit-for-bit) the factor that `Cholesky::new` would
/// produce for the leading `t × t` principal submatrix of `A` — the marginal
/// covariance of the first `t` coordinates. The `*_leading` methods exploit
/// this: one factorization of the full matrix answers solve/log-det queries
/// for **every** prefix length, which is what incremental prefix-likelihood
/// sessions need.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factor `a`. Returns `None` if the matrix is not positive definite
    /// (callers regularize and retry).
    pub fn new(a: &Matrix) -> Option<Self> {
        let n = a.dim();
        let mut l = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(Self { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.dim()
    }

    /// Row `i` of the factor `L` (entries beyond column `i` are zero).
    pub fn l_row(&self, i: usize) -> &[f64] {
        let n = self.l.dim();
        &self.l.data[i * n..(i + 1) * n]
    }

    /// Diagonal entry `L[i][i]`.
    pub fn l_diag(&self, i: usize) -> f64 {
        self.l[(i, i)]
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.dim();
        assert_eq!(b.len(), n);
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// `log |A| = 2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        let n = self.l.dim();
        (0..n).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// The quadratic form `bᵀ A⁻¹ b` (Mahalanobis squared when `b = x - μ`).
    pub fn quadratic_form(&self, b: &[f64]) -> f64 {
        let x = self.solve(b);
        b.iter().zip(&x).map(|(&u, &v)| u * v).sum()
    }

    /// Log-determinant of the leading `t × t` principal submatrix:
    /// `2 Σ_{i<t} log L_ii`. With `t = dim()` this equals
    /// [`log_det`](Self::log_det).
    pub fn log_det_leading(&self, t: usize) -> f64 {
        debug_assert!(t <= self.l.dim());
        (0..t).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Forward substitution `L_t y = b` against the leading `t × t` block of
    /// the factor, where `t = b.len()` — the whitening transform of the
    /// first `t` coordinates. Appends the solution into `y` (which must
    /// arrive empty or hold a previously computed prefix of the solution;
    /// forward substitution is incremental, so extending a length-`k`
    /// solution to length `t` touches only rows `k..t`).
    pub fn forward_solve_leading(&self, b: &[f64], y: &mut Vec<f64>) {
        let t = b.len();
        debug_assert!(t <= self.l.dim());
        debug_assert!(y.len() <= t);
        for i in y.len()..t {
            let row = self.l_row(i);
            let mut sum = b[i];
            for k in 0..i {
                sum -= row[k] * y[k];
            }
            y.push(sum / row[i]);
        }
    }

    /// The quadratic form `bᵀ (A_t)⁻¹ b` against the leading `t × t`
    /// principal submatrix (`t = b.len()`), computed as `‖L_t⁻¹ b‖²` — one
    /// forward substitution, no backward pass. This is the form incremental
    /// sessions accumulate term by term, so batch callers using it stay
    /// bit-identical to the streaming path.
    pub fn mahalanobis_sq_leading(&self, b: &[f64]) -> f64 {
        let mut y = Vec::with_capacity(b.len());
        self.forward_solve_leading(b, &mut y);
        y.iter().map(|&v| v * v).sum()
    }
}

impl Persist for Cholesky {
    const KIND: &'static str = "Cholesky";

    fn encode_body(&self, enc: &mut Encoder) {
        self.l.encode_body(enc);
    }

    /// Decodes the stored factor **as written** (no refactorization — the
    /// restored factor is bit-identical to the fitted one, which is what
    /// keeps restored sessions exact), validating the invariants every
    /// consumer relies on: strictly lower-triangular shape and a finite,
    /// strictly positive diagonal. A snapshot violating them is rejected as
    /// corrupt instead of poisoning later solves.
    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let l = Matrix::decode_body(dec)?;
        let n = l.dim();
        for i in 0..n {
            let d = l[(i, i)];
            if !(d.is_finite() && d > 0.0) {
                return Err(PersistError::Corrupt(format!(
                    "cholesky: non-positive diagonal L[{i}][{i}] = {d}"
                )));
            }
            for j in (i + 1)..n {
                if l[(i, j)] != 0.0 {
                    return Err(PersistError::Corrupt(format!(
                        "cholesky: nonzero upper-triangle entry L[{i}][{j}]"
                    )));
                }
            }
        }
        Ok(Self { l })
    }
}

/// Sample covariance matrix (population normalization, matching the
/// workspace's z-norm convention) of rows, with ridge `lambda` added.
pub fn covariance(rows: &[&[f64]], mean: &[f64], lambda: f64) -> Matrix {
    let d = mean.len();
    let mut cov = Matrix::zeros(d);
    if rows.is_empty() {
        cov.add_ridge(lambda.max(1e-9));
        return cov;
    }
    for row in rows {
        assert_eq!(row.len(), d);
        for i in 0..d {
            let di = row[i] - mean[i];
            for j in 0..=i {
                let dj = row[j] - mean[j];
                cov[(i, j)] += di * dj;
            }
        }
    }
    let inv_n = 1.0 / rows.len() as f64;
    for i in 0..d {
        for j in 0..=i {
            let v = cov[(i, j)] * inv_n;
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
    }
    cov.add_ridge(lambda);
    cov
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_trivially() {
        let a = Matrix::identity(3);
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&[1.0, 2.0, 3.0]);
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
        assert!(ch.log_det().abs() < 1e-12);
    }

    #[test]
    fn known_spd_matrix() {
        // A = [[4, 2], [2, 3]]; det = 8.
        let a = Matrix::from_vec(2, vec![4.0, 2.0, 2.0, 3.0]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.log_det() - 8.0f64.ln()).abs() < 1e-12);
        // Solve A x = [2, 5] -> x = A^{-1} b; A^{-1} = 1/8 [[3,-2],[-2,4]].
        let x = ch.solve(&[2.0, 5.0]);
        assert!((x[0] - (3.0 * 2.0 - 2.0 * 5.0) / 8.0).abs() < 1e-12);
        assert!((x[1] - (-2.0 * 2.0 + 4.0 * 5.0) / 8.0).abs() < 1e-12);
    }

    #[test]
    fn non_spd_is_rejected() {
        let a = Matrix::from_vec(2, vec![1.0, 2.0, 2.0, 1.0]); // indefinite
        assert!(Cholesky::new(&a).is_none());
    }

    #[test]
    fn solve_roundtrip() {
        let mut a = Matrix::from_vec(3, vec![2.0, 0.5, 0.1, 0.5, 1.5, 0.2, 0.1, 0.2, 1.0]);
        a.add_ridge(0.01);
        let ch = Cholesky::new(&a).unwrap();
        let b = [0.3, -1.0, 2.5];
        let x = ch.solve(&b);
        let back = a.matvec(&x);
        for (u, v) in b.iter().zip(&back) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn quadratic_form_matches_manual() {
        let a = Matrix::from_vec(2, vec![4.0, 0.0, 0.0, 9.0]);
        let ch = Cholesky::new(&a).unwrap();
        // b' A^{-1} b = 4/4 + 9/9 = 2 for b = [2, 3].
        assert!((ch.quadratic_form(&[2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn leading_block_queries_match_submatrix_factorization() {
        // A well-conditioned SPD 4×4.
        let mut a = Matrix::from_vec(
            4,
            vec![
                4.0, 1.0, 0.5, 0.2, 1.0, 3.0, 0.3, 0.1, 0.5, 0.3, 2.0, 0.4, 0.2, 0.1, 0.4, 1.5,
            ],
        );
        a.add_ridge(0.01);
        let full = Cholesky::new(&a).unwrap();
        let b = [0.7, -1.3, 2.0, 0.4];
        for t in 1..=4 {
            let sub = Cholesky::new(&a.leading_principal(t)).unwrap();
            // The leading block of the full factor IS the submatrix factor,
            // bit for bit: identical arithmetic in identical order.
            for i in 0..t {
                for j in 0..=i {
                    assert_eq!(full.l_row(i)[j], sub.l_row(i)[j], "L[{i}][{j}] at t={t}");
                }
            }
            assert_eq!(full.log_det_leading(t), sub.log_det(), "log-det at t={t}");
            // ‖L⁻¹b‖² equals bᵀA⁻¹b (to fp tolerance; different algorithm).
            let q_fwd = full.mahalanobis_sq_leading(&b[..t]);
            let q_ref = sub.quadratic_form(&b[..t]);
            assert!((q_fwd - q_ref).abs() < 1e-10, "t={t}: {q_fwd} vs {q_ref}");
        }
    }

    #[test]
    fn forward_solve_leading_is_incremental() {
        let mut a = Matrix::from_vec(3, vec![2.0, 0.5, 0.1, 0.5, 1.5, 0.2, 0.1, 0.2, 1.0]);
        a.add_ridge(0.01);
        let ch = Cholesky::new(&a).unwrap();
        let b = [0.3, -1.0, 2.5];
        // One-shot solve.
        let mut all = Vec::new();
        ch.forward_solve_leading(&b, &mut all);
        // Grown one row at a time: identical bits.
        let mut grown = Vec::new();
        for t in 1..=3 {
            ch.forward_solve_leading(&b[..t], &mut grown);
            assert_eq!(grown, all[..t].to_vec(), "prefix {t}");
        }
        assert_eq!(ch.dim(), 3);
        assert_eq!(ch.l_diag(0), ch.l_row(0)[0]);
    }

    #[test]
    fn covariance_of_known_data() {
        let r1 = [1.0, 0.0];
        let r2 = [-1.0, 0.0];
        let rows: Vec<&[f64]> = vec![&r1, &r2];
        let mean = [0.0, 0.0];
        let cov = covariance(&rows, &mean, 0.0);
        assert!((cov[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((cov[(1, 1)]).abs() < 1e-12);
        assert!((cov[(0, 1)]).abs() < 1e-12);
    }

    #[test]
    fn covariance_is_symmetric_and_ridge_applies() {
        let r1 = [1.0, 2.0, 3.0];
        let r2 = [0.0, 1.0, -1.0];
        let r3 = [2.0, 0.0, 1.0];
        let rows: Vec<&[f64]> = vec![&r1, &r2, &r3];
        let mean = [1.0, 1.0, 1.0];
        let cov = covariance(&rows, &mean, 0.5);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(cov[(i, j)], cov[(j, i)]);
            }
        }
        // Ridge shows up on the diagonal.
        let no_ridge = covariance(&rows, &mean, 0.0);
        for i in 0..3 {
            assert!((cov[(i, i)] - no_ridge[(i, i)] - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn leading_principal_extracts_block() {
        let a = Matrix::from_vec(3, vec![1.0, 2.0, 3.0, 2.0, 5.0, 6.0, 3.0, 6.0, 9.0]);
        let p = a.leading_principal(2);
        assert_eq!(p.dim(), 2);
        assert_eq!(p[(0, 1)], 2.0);
        assert_eq!(p[(1, 1)], 5.0);
    }
}
