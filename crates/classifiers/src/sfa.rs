//! Symbolic Fourier Approximation (SFA).
//!
//! SFA maps a (z-normalized) window to a short discrete word: take the first
//! few Fourier coefficients, then quantize each real/imaginary component
//! with per-component breakpoints learned from training data (**M**ultiple
//! **C**oefficient **B**inning, equi-depth). SFA words are the vocabulary of
//! the WEASEL bag-of-patterns classifier ([`crate::weasel`]), which in turn
//! is the slave classifier inside TEASER.

use etsc_core::znorm::znormalize;
use etsc_persist::{Decoder, Encoder, Persist, PersistError};

/// First `n_coeffs` complex DFT coefficients of `x`, skipping the DC term
/// (z-normalized inputs have zero DC anyway), interleaved as
/// `[re1, im1, re2, im2, ...]` and scaled by `1/len`.
///
/// Direct O(len · n_coeffs) evaluation: window lengths and coefficient
/// counts in this workspace are small, so an FFT would not pay for itself.
pub fn dft_features(x: &[f64], n_coeffs: usize) -> Vec<f64> {
    let n = x.len();
    assert!(n > 0, "empty window");
    let mut out = Vec::with_capacity(2 * n_coeffs);
    let inv_n = 1.0 / n as f64;
    for k in 1..=n_coeffs {
        let mut re = 0.0;
        let mut im = 0.0;
        let w = std::f64::consts::TAU * k as f64 / n as f64;
        for (i, &v) in x.iter().enumerate() {
            let (s, c) = (w * i as f64).sin_cos();
            re += v * c;
            im -= v * s;
        }
        out.push(re * inv_n);
        out.push(im * inv_n);
    }
    out
}

/// A fitted SFA quantizer.
#[derive(Debug, Clone)]
pub struct Sfa {
    /// `breakpoints[d]` holds `alphabet - 1` sorted thresholds for feature
    /// dimension `d`.
    breakpoints: Vec<Vec<f64>>,
    n_coeffs: usize,
    alphabet: usize,
}

impl Sfa {
    /// Learn equi-depth breakpoints from training windows.
    ///
    /// * `windows` — training subsequences (will be z-normalized internally).
    /// * `word_len` — number of feature dimensions (must be even: re/im
    ///   pairs), i.e. `n_coeffs = word_len / 2`.
    /// * `alphabet` — symbols per dimension (2..=16).
    pub fn fit<'a, I>(windows: I, word_len: usize, alphabet: usize) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        assert!(
            word_len >= 2 && word_len.is_multiple_of(2),
            "word_len must be even and >= 2"
        );
        assert!((2..=16).contains(&alphabet), "alphabet must be in 2..=16");
        let n_coeffs = word_len / 2;
        // Collect per-dimension values.
        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); word_len];
        for w in windows {
            let f = dft_features(&znormalize(w), n_coeffs);
            for (d, &v) in f.iter().enumerate() {
                columns[d].push(v);
            }
        }
        let breakpoints = columns
            .into_iter()
            .map(|mut col| {
                if col.is_empty() {
                    return vec![0.0; alphabet - 1];
                }
                // total_cmp: a degenerate training pool can push NaN
                // features (e.g. after restoring and refitting on broken
                // data); NaN must sort deterministically, not panic the fit.
                col.sort_by(f64::total_cmp);
                (1..alphabet)
                    .map(|q| {
                        let pos = q * col.len() / alphabet;
                        col[pos.min(col.len() - 1)]
                    })
                    .collect()
            })
            .collect();
        Self {
            breakpoints,
            n_coeffs,
            alphabet,
        }
    }

    /// Number of feature dimensions (`2 * n_coeffs`).
    pub fn word_len(&self) -> usize {
        self.breakpoints.len()
    }

    /// Alphabet size per dimension.
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Breakpoints for feature dimension `d` (for persistence round-trip
    /// checks and inspection).
    pub fn breakpoints(&self, d: usize) -> &[f64] {
        &self.breakpoints[d]
    }

    /// Quantize one raw window into a packed SFA word (4 bits per symbol).
    pub fn word(&self, window: &[f64]) -> u64 {
        let f = dft_features(&znormalize(window), self.n_coeffs);
        self.word_of_features(&f)
    }

    /// Quantize pre-computed DFT features.
    pub fn word_of_features(&self, features: &[f64]) -> u64 {
        debug_assert_eq!(features.len(), self.breakpoints.len());
        let mut word = 0u64;
        for (d, &v) in features.iter().enumerate() {
            let sym = self.breakpoints[d].partition_point(|&b| b <= v) as u64;
            word = (word << 4) | sym;
        }
        word
    }
}

impl Persist for Sfa {
    const KIND: &'static str = "Sfa";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.put_usize(self.n_coeffs);
        enc.put_usize(self.alphabet);
        enc.put_usize(self.breakpoints.len());
        for bp in &self.breakpoints {
            enc.put_f64_slice(bp);
        }
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let n_coeffs = dec.get_usize("sfa n_coeffs")?;
        let alphabet = dec.get_usize("sfa alphabet")?;
        if !(2..=16).contains(&alphabet) {
            return Err(PersistError::Corrupt(format!(
                "sfa: alphabet {alphabet} outside 2..=16"
            )));
        }
        let n_dims = dec.get_usize("sfa dim count")?;
        if n_dims != 2 * n_coeffs {
            return Err(PersistError::Corrupt(format!(
                "sfa: {n_dims} dimensions for {n_coeffs} coefficients"
            )));
        }
        let mut breakpoints = Vec::with_capacity(n_dims);
        for d in 0..n_dims {
            let bp = dec.get_f64_vec("sfa breakpoints")?;
            if bp.len() != alphabet - 1 {
                return Err(PersistError::Corrupt(format!(
                    "sfa dim {d}: {} breakpoints for alphabet {alphabet}",
                    bp.len()
                )));
            }
            breakpoints.push(bp);
        }
        Ok(Self {
            breakpoints,
            n_coeffs,
            alphabet,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(len: usize, freq: f64, phase: f64) -> Vec<f64> {
        (0..len)
            .map(|i| (std::f64::consts::TAU * freq * i as f64 / len as f64 + phase).sin())
            .collect()
    }

    #[test]
    fn dft_detects_pure_tone() {
        // A k=2 sine: energy concentrated in coefficient 2.
        let x = sine(64, 2.0, 0.0);
        let f = dft_features(&x, 4);
        let mag = |k: usize| (f[2 * k] * f[2 * k] + f[2 * k + 1] * f[2 * k + 1]).sqrt();
        assert!(mag(1) > 10.0 * mag(0), "k=2 bin should dominate k=1");
        assert!(mag(1) > 10.0 * mag(2), "k=2 bin should dominate k=3");
        // Amplitude: |X_k|/n = 1/2 for a unit sine.
        assert!((mag(1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dft_of_constant_is_zero_without_dc() {
        let f = dft_features(&[3.0; 32], 3);
        assert!(f.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn sfa_words_distinguish_frequencies() {
        let lows: Vec<Vec<f64>> = (0..20).map(|i| sine(64, 1.0, i as f64 * 0.3)).collect();
        let highs: Vec<Vec<f64>> = (0..20).map(|i| sine(64, 6.0, i as f64 * 0.3)).collect();
        let all: Vec<&[f64]> = lows.iter().chain(&highs).map(|v| v.as_slice()).collect();
        let sfa = Sfa::fit(all, 6, 4);
        // Same-frequency windows with the same phase map to the same word;
        // different frequencies must differ.
        let w_low = sfa.word(&sine(64, 1.0, 0.0));
        let w_high = sfa.word(&sine(64, 6.0, 0.0));
        assert_ne!(w_low, w_high);
    }

    #[test]
    fn sfa_word_is_shift_scale_invariant() {
        // Fit on a diverse training pool that does NOT contain the probe, so
        // the probe's features sit strictly inside bins (equi-depth
        // breakpoints are training feature values; probing with a training
        // window would sit exactly on a boundary).
        let windows: Vec<Vec<f64>> = (0..24)
            .map(|i| sine(32, 1.0 + (i % 6) as f64, 0.9 + i as f64 * 0.31))
            .collect();
        let refs: Vec<&[f64]> = windows.iter().map(|v| v.as_slice()).collect();
        let sfa = Sfa::fit(refs, 4, 4);
        // Probe at a non-integer frequency: every DFT coefficient is robustly
        // nonzero, so quantization is not deciding between ±1e-16 noise (a
        // pure integer-frequency tone has analytic zeros in all other bins).
        let base = sine(32, 1.3, 0.4);
        let moved: Vec<f64> = base.iter().map(|&v| 3.0 + 1.7 * v).collect();
        assert_eq!(sfa.word(&base), sfa.word(&moved));
        // The underlying feature-level invariance holds to float tolerance.
        let fa = dft_features(&crate::sfa::tests::zn(&base), 2);
        let fb = dft_features(&zn(&moved), 2);
        for (a, b) in fa.iter().zip(&fb) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    fn zn(x: &[f64]) -> Vec<f64> {
        etsc_core::znorm::znormalize(x)
    }

    #[test]
    fn equi_depth_breakpoints_split_training_mass() {
        // Feed values uniform in [0,1] on one conceptual dim by using len-2
        // windows; check breakpoints are interior.
        let windows: Vec<Vec<f64>> = (0..100)
            .map(|i| sine(16, 1.0 + (i % 5) as f64, i as f64 * 0.1))
            .collect();
        let refs: Vec<&[f64]> = windows.iter().map(|v| v.as_slice()).collect();
        let sfa = Sfa::fit(refs, 4, 4);
        assert_eq!(sfa.word_len(), 4);
        assert_eq!(sfa.alphabet(), 4);
        for bp in 0..4 {
            let b = &sfa.breakpoints[bp];
            assert_eq!(b.len(), 3);
            // Sorted.
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "word_len must be even")]
    fn odd_word_len_rejected() {
        let w = [0.0f64; 8];
        let _ = Sfa::fit(vec![&w[..]], 3, 4);
    }
}
