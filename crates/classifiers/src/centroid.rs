//! Nearest-centroid classification with distance-softmax probabilities.
//!
//! Cheap, deterministic, and probabilistic — useful both as a baseline and
//! as a slave classifier where a full WEASEL pipeline is overkill.

use etsc_core::distance::euclidean;
use etsc_core::UcrDataset;
use etsc_persist::{Decoder, Encoder, Persist, PersistError};

use crate::{Classifier, ScoreSession};

/// State-schema tag for [`CentroidScoreSession`] checkpoints.
const TAG_RAW: u8 = 20;
/// State-schema tag for [`CentroidZnormScoreSession`] checkpoints.
const TAG_ZNORM: u8 = 21;

/// A fitted nearest-centroid model: one mean series per class.
#[derive(Debug, Clone)]
pub struct NearestCentroid {
    centroids: Vec<Vec<f64>>,
    /// Softmax temperature applied to negative distances when producing
    /// probabilities. Larger = sharper.
    beta: f64,
}

impl NearestCentroid {
    /// Compute per-class centroids of `train`. Classes with no exemplars get
    /// a zero centroid (they can never win).
    pub fn fit(train: &UcrDataset) -> Self {
        Self::fit_with_beta(train, 4.0)
    }

    /// As [`fit`](Self::fit) with an explicit softmax sharpness.
    pub fn fit_with_beta(train: &UcrDataset, beta: f64) -> Self {
        let n_classes = train.n_classes();
        let len = train.series_len();
        let mut sums = vec![vec![0.0; len]; n_classes];
        let mut counts = vec![0usize; n_classes];
        for (s, label) in train.iter() {
            for (acc, &v) in sums[label].iter_mut().zip(s) {
                *acc += v;
            }
            counts[label] += 1;
        }
        for (c, sum) in sums.iter_mut().enumerate() {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                sum.iter_mut().for_each(|v| *v *= inv);
            }
        }
        Self {
            centroids: sums,
            beta,
        }
    }

    /// The centroid of class `c`.
    pub fn centroid(&self, c: usize) -> &[f64] {
        &self.centroids[c]
    }

    /// Distances from `x` to every class centroid, truncated to `x.len()`
    /// prefix of each centroid if `x` is shorter (prefix classification).
    pub fn distances(&self, x: &[f64]) -> Vec<f64> {
        self.centroids
            .iter()
            .map(|c| {
                let n = x.len().min(c.len());
                euclidean(&x[..n], &c[..n]) / (n as f64).sqrt()
            })
            .collect()
    }

    /// Softmax over negative length-normalized distances, written into
    /// `dist` in place (`dist[c]` holds class `c`'s distance on entry).
    fn softmax_distances_in_place(&self, dist: &mut [f64]) {
        let min = dist.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut z = 0.0;
        for v in dist.iter_mut() {
            *v = (-self.beta * (*v - min)).exp();
            z += *v;
        }
        if z > 0.0 {
            dist.iter_mut().for_each(|v| *v /= z);
        }
    }
}

/// Incremental per-sample scorer for [`NearestCentroid`]: maintains the
/// running squared distance to each centroid, so class probabilities cost
/// O(classes) per sample instead of O(classes × prefix).
#[derive(Debug)]
pub struct CentroidScoreSession<'a> {
    model: &'a NearestCentroid,
    /// Running squared Euclidean distance per class over observed samples.
    sq: Vec<f64>,
    /// Samples consumed (uncapped).
    len: usize,
}

impl ScoreSession for CentroidScoreSession<'_> {
    fn push(&mut self, x: f64) {
        if self.len < self.model.centroids[0].len() {
            // Still inside the centroid length: accumulate coordinate `len`.
            for (acc, c) in self.sq.iter_mut().zip(&self.model.centroids) {
                let d = x - c[self.len];
                *acc += d * d;
            }
        }
        self.len += 1;
    }

    fn len(&self) -> usize {
        self.len
    }

    fn predict_proba_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.sq.len());
        let n = self.len.min(self.model.centroids[0].len()).max(1);
        let root_n = (n as f64).sqrt();
        for (o, &s) in out.iter_mut().zip(&self.sq) {
            *o = s.sqrt() / root_n;
        }
        self.model.softmax_distances_in_place(out);
    }

    fn reset(&mut self) {
        self.sq.fill(0.0);
        self.len = 0;
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u8(TAG_RAW);
        enc.put_f64_slice(&self.sq);
        enc.put_usize(self.len);
        Ok(())
    }

    fn load_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), PersistError> {
        if dec.get_u8("centroid session tag")? != TAG_RAW {
            return Err(PersistError::Corrupt(
                "centroid session: wrong state tag".into(),
            ));
        }
        let sq = dec.get_f64_vec("centroid session sq")?;
        if sq.len() != self.sq.len() {
            return Err(PersistError::Corrupt(format!(
                "centroid session: {} classes in state, model has {}",
                sq.len(),
                self.sq.len()
            )));
        }
        self.sq = sq;
        self.len = dec.get_usize("centroid session len")?;
        Ok(())
    }
}

/// Incremental per-sample scorer for the **per-prefix z-normalized** view
/// of the pushed samples (the [`Classifier::score_session_znorm`] substrate
/// for [`NearestCentroid`]).
///
/// Writing the normalized sample as `ẑᵢ = u·xᵢ − v` (`u = 1/σ_p`,
/// `v = μ_p/σ_p`, prefix statistics `μ_p, σ_p`), the squared distance to a
/// centroid prefix `c` expands through the dot identity into
///
/// ```text
/// ‖ẑ − c‖² = u²·Σx² − 2u·(v·Σx + Σx·c) + (n·v² + 2v·Σc + Σc²)
/// ```
///
/// so each arriving sample costs one running-sum update per class and a
/// *change of prefix normalization* — which rescales every past coordinate
/// — is a closed-form re-evaluation, not a replay. Probabilities track the
/// batch `predict_proba(&znormalize(prefix))` to floating-point
/// reassociation tolerance (~1e-9); the normalization constants themselves
/// are maintained with the same `Σx`/`Σx²` accumulation order as
/// `etsc_core::stats::mean_std`, so the constant-prefix branch (all-zeros
/// convention) is taken exactly when the batch path takes it.
#[derive(Debug)]
pub struct CentroidZnormScoreSession<'a> {
    model: &'a NearestCentroid,
    /// Running Σx / Σx² of the raw samples (uncapped; the batch path
    /// normalizes the whole buffer before truncating to the centroid
    /// length).
    s1: f64,
    s2: f64,
    /// Per-class Σ xᵢ·cᵢ over observed coordinates (capped at centroid
    /// length).
    sxc: Vec<f64>,
    /// Per-class Σ cᵢ and Σ cᵢ² over observed coordinates.
    sc: Vec<f64>,
    scc: Vec<f64>,
    /// Σx / Σx² capped at the centroid length (the coordinates that
    /// participate in the distance).
    s1_cap: f64,
    s2_cap: f64,
    len: usize,
}

impl ScoreSession for CentroidZnormScoreSession<'_> {
    fn push(&mut self, x: f64) {
        self.s1 += x;
        self.s2 += x * x;
        if self.len < self.model.centroids[0].len() {
            self.s1_cap += x;
            self.s2_cap += x * x;
            for (c, centroid) in self.model.centroids.iter().enumerate() {
                let ci = centroid[self.len];
                self.sxc[c] += x * ci;
                self.sc[c] += ci;
                self.scc[c] += ci * ci;
            }
        }
        self.len += 1;
    }

    fn len(&self) -> usize {
        self.len
    }

    fn predict_proba_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.sxc.len());
        let n = self.len.min(self.model.centroids[0].len()).max(1);
        let root_n = (n as f64).sqrt();
        // Normalization parameters of the *whole* prefix (uncapped sums),
        // matching `znormalize` of the full buffer; `(0, 0)` maps a
        // constant prefix to all zeros, the batch convention.
        let (u, v) = if self.len == 0 {
            (0.0, 0.0)
        } else {
            let nn = self.len as f64;
            let mean = self.s1 / nn;
            let var = (self.s2 / nn - mean * mean).max(0.0);
            let sd = var.sqrt();
            if sd <= etsc_core::znorm::CONSTANT_EPS {
                (0.0, 0.0)
            } else {
                (1.0 / sd, mean / sd)
            }
        };
        let nf = n as f64;
        for (o, ((&sxc, &sc), &scc)) in out
            .iter_mut()
            .zip(self.sxc.iter().zip(&self.sc).zip(&self.scc))
        {
            let d2 = u * u * self.s2_cap - 2.0 * u * (v * self.s1_cap + sxc)
                + (nf * v * v + 2.0 * v * sc + scc);
            *o = d2.max(0.0).sqrt() / root_n;
        }
        self.model.softmax_distances_in_place(out);
    }

    fn reset(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
        self.sxc.fill(0.0);
        self.sc.fill(0.0);
        self.scc.fill(0.0);
        self.s1_cap = 0.0;
        self.s2_cap = 0.0;
        self.len = 0;
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u8(TAG_ZNORM);
        enc.put_f64(self.s1);
        enc.put_f64(self.s2);
        enc.put_f64_slice(&self.sxc);
        enc.put_f64_slice(&self.sc);
        enc.put_f64_slice(&self.scc);
        enc.put_f64(self.s1_cap);
        enc.put_f64(self.s2_cap);
        enc.put_usize(self.len);
        Ok(())
    }

    fn load_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), PersistError> {
        if dec.get_u8("centroid znorm session tag")? != TAG_ZNORM {
            return Err(PersistError::Corrupt(
                "centroid znorm session: wrong state tag".into(),
            ));
        }
        let s1 = dec.get_f64("centroid znorm s1")?;
        let s2 = dec.get_f64("centroid znorm s2")?;
        let sxc = dec.get_f64_vec("centroid znorm sxc")?;
        let sc = dec.get_f64_vec("centroid znorm sc")?;
        let scc = dec.get_f64_vec("centroid znorm scc")?;
        let k = self.sxc.len();
        if sxc.len() != k || sc.len() != k || scc.len() != k {
            return Err(PersistError::Corrupt(format!(
                "centroid znorm session: class-sum lengths {}/{}/{} for {k} classes",
                sxc.len(),
                sc.len(),
                scc.len()
            )));
        }
        self.s1 = s1;
        self.s2 = s2;
        self.sxc = sxc;
        self.sc = sc;
        self.scc = scc;
        self.s1_cap = dec.get_f64("centroid znorm s1_cap")?;
        self.s2_cap = dec.get_f64("centroid znorm s2_cap")?;
        self.len = dec.get_usize("centroid znorm len")?;
        Ok(())
    }
}

impl Persist for NearestCentroid {
    const KIND: &'static str = "NearestCentroid";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.put_f64(self.beta);
        enc.put_usize(self.centroids.len());
        for c in &self.centroids {
            enc.put_f64_slice(c);
        }
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let beta = dec.get_f64("centroid beta")?;
        let n = dec.get_usize("centroid class count")?;
        if n == 0 {
            return Err(PersistError::Corrupt("centroid: zero classes".into()));
        }
        let mut centroids = Vec::with_capacity(n);
        for _ in 0..n {
            centroids.push(dec.get_f64_vec("centroid vector")?);
        }
        let len = centroids[0].len();
        if len == 0 || centroids.iter().any(|c| c.len() != len) {
            return Err(PersistError::Corrupt(
                "centroid: centroids must share a non-empty length".into(),
            ));
        }
        Ok(Self { centroids, beta })
    }
}

impl Classifier for NearestCentroid {
    fn n_classes(&self) -> usize {
        self.centroids.len()
    }

    /// Softmax over negative (length-normalized) centroid distances.
    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut p = self.distances(x);
        self.softmax_distances_in_place(&mut p);
        p
    }

    fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.centroids.len());
        for (o, c) in out.iter_mut().zip(&self.centroids) {
            let n = x.len().min(c.len());
            *o = euclidean(&x[..n], &c[..n]) / (n as f64).sqrt();
        }
        self.softmax_distances_in_place(out);
    }

    fn score_session(&self) -> Option<Box<dyn ScoreSession + '_>> {
        Some(Box::new(CentroidScoreSession {
            model: self,
            sq: vec![0.0; self.centroids.len()],
            len: 0,
        }))
    }

    fn score_session_znorm(&self) -> Option<Box<dyn ScoreSession + '_>> {
        let k = self.centroids.len();
        Some(Box::new(CentroidZnormScoreSession {
            model: self,
            s1: 0.0,
            s2: 0.0,
            sxc: vec![0.0; k],
            sc: vec![0.0; k],
            scc: vec![0.0; k],
            s1_cap: 0.0,
            s2_cap: 0.0,
            len: 0,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> UcrDataset {
        UcrDataset::new(
            vec![
                vec![0.0, 0.0, 0.0, 0.0],
                vec![0.2, 0.0, -0.2, 0.0],
                vec![5.0, 5.0, 5.0, 5.0],
                vec![5.2, 4.8, 5.0, 5.0],
            ],
            vec![0, 0, 1, 1],
        )
        .unwrap()
    }

    #[test]
    fn centroids_are_class_means() {
        let m = NearestCentroid::fit(&toy());
        assert_eq!(m.centroid(0), &[0.1, 0.0, -0.1, 0.0]);
        assert_eq!(m.centroid(1), &[5.1, 4.9, 5.0, 5.0]);
    }

    #[test]
    fn predicts_by_proximity() {
        let m = NearestCentroid::fit(&toy());
        assert_eq!(m.predict(&[0.1, -0.1, 0.0, 0.1]), 0);
        assert_eq!(m.predict(&[4.0, 5.0, 6.0, 5.0]), 1);
    }

    #[test]
    fn proba_sums_to_one_and_orders_correctly() {
        let m = NearestCentroid::fit(&toy());
        let p = m.predict_proba(&[0.0, 0.0, 0.0, 0.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[0] > p[1]);
        assert!(p[0] > 0.9, "clear-cut case should be confident: {p:?}");
    }

    #[test]
    fn prefix_classification_uses_centroid_prefix() {
        let m = NearestCentroid::fit(&toy());
        // Only 2 points seen; still classifiable.
        assert_eq!(m.predict(&[5.0, 5.0]), 1);
        assert_eq!(m.predict(&[0.0, 0.0]), 0);
    }

    #[test]
    fn predict_proba_into_matches_vec_path() {
        let m = NearestCentroid::fit(&toy());
        let probe = [0.3, 1.0, 4.0];
        let mut out = [0.0; 2];
        m.predict_proba_into(&probe, &mut out);
        assert_eq!(out.to_vec(), m.predict_proba(&probe));
    }

    #[test]
    fn znorm_score_session_tracks_batch_on_normalized_prefixes() {
        use etsc_core::znorm::znormalize;
        let m = NearestCentroid::fit(&toy());
        let mut s = m.score_session_znorm().expect("centroid has a znorm form");
        // Constant head (exercises the all-zeros convention), varied tail,
        // longer than the centroids (exercises the truncation cap).
        let probe = [2.0, 2.0, 2.0, 5.0, -1.0, 7.0];
        let mut out = [0.0; 2];
        for (i, &x) in probe.iter().enumerate() {
            s.push(x);
            s.predict_proba_into(&mut out);
            let batch = m.predict_proba(&znormalize(&probe[..i + 1]));
            for c in 0..2 {
                assert!(
                    (out[c] - batch[c]).abs() <= 1e-9,
                    "prefix {}: {:?} vs {:?}",
                    i + 1,
                    out,
                    batch
                );
            }
        }
        s.reset();
        assert!(s.is_empty());
        s.push(probe[0]);
        s.predict_proba_into(&mut out);
        let batch = m.predict_proba(&znormalize(&probe[..1]));
        assert!((out[0] - batch[0]).abs() <= 1e-9, "reset session replays");
    }

    #[test]
    fn snapshot_restore_and_session_checkpoint_are_exact() {
        let m = NearestCentroid::fit(&toy());
        let back = NearestCentroid::restore(&m.snapshot()).unwrap();
        let probe = [0.3, 1.0, 4.0, 5.0, 2.0, 7.0];
        for t in 1..=probe.len() {
            assert_eq!(
                back.predict_proba(&probe[..t]),
                m.predict_proba(&probe[..t])
            );
        }
        // Session checkpoint: interrupted twin continues bit-identically,
        // for both the raw and the per-prefix z-normalized scorer.
        for znorm in [false, true] {
            let mut whole = if znorm {
                m.score_session_znorm().unwrap()
            } else {
                m.score_session().unwrap()
            };
            let mut head = if znorm {
                m.score_session_znorm().unwrap()
            } else {
                m.score_session().unwrap()
            };
            for &x in &probe[..3] {
                whole.push(x);
                head.push(x);
            }
            let mut enc = Encoder::new();
            head.save_state(&mut enc).unwrap();
            let bytes = enc.into_bytes();
            let mut resumed = if znorm {
                m.score_session_znorm().unwrap()
            } else {
                m.score_session().unwrap()
            };
            resumed.load_state(&mut Decoder::new(&bytes)).unwrap();
            let mut a = [0.0; 2];
            let mut b = [0.0; 2];
            for &x in &probe[3..] {
                whole.push(x);
                resumed.push(x);
                whole.predict_proba_into(&mut a);
                resumed.predict_proba_into(&mut b);
                assert_eq!(a, b, "znorm={znorm}: restored session diverged");
            }
        }
    }

    #[test]
    fn score_session_matches_batch_on_every_prefix() {
        let m = NearestCentroid::fit(&toy());
        let mut s = m.score_session().expect("centroid is incremental");
        // Longer than the centroids to exercise the truncation cap.
        let probe = [0.3, 1.0, 4.0, 5.0, 2.0, 7.0];
        let mut out = [0.0; 2];
        for (i, &x) in probe.iter().enumerate() {
            s.push(x);
            s.predict_proba_into(&mut out);
            let batch = m.predict_proba(&probe[..i + 1]);
            assert_eq!(out.to_vec(), batch, "prefix {}", i + 1);
        }
        assert_eq!(s.len(), probe.len());
        s.reset();
        assert!(s.is_empty());
    }
}
