#![warn(missing_docs)]
// Numeric kernels below index several parallel arrays per iteration; explicit
// index loops are the clearer idiom there.
#![allow(clippy::needless_range_loop)]

//! # etsc-classifiers
//!
//! Classic (whole-series) time series classification — the substrate the
//! early-classification algorithms of `etsc-early` are built from, and the
//! baseline the paper contrasts them with.
//!
//! * [`knn`] — k-nearest-neighbor classification under Euclidean distance or
//!   DTW (with an LB_Kim/LB_Keogh lower-bounding cascade), the de-facto UCR
//!   baseline.
//! * [`centroid`] — nearest-centroid classification, used as a cheap
//!   probabilistic slave.
//! * [`gaussian`] — Gaussian class-conditional models (diagonal or full
//!   covariance), the machinery behind RelClass.
//! * [`linalg`] — the minimal dense linear algebra (Cholesky) the Gaussian
//!   models need; written in-repo per the workspace's no-extra-deps rule.
//! * [`sfa`] / [`weasel`] — Symbolic Fourier Approximation and a
//!   bag-of-SFA-words classifier ("WEASEL-lite"), our from-scratch stand-in
//!   for the WEASEL slaves TEASER uses.
//! * [`logistic`] — one-vs-rest logistic regression trained by SGD.
//! * [`eval`] — accuracy, confusion matrices, cross-validation.
//!
//! ## Streaming substrate
//!
//! The early-classification layer above this crate is streaming-first: it
//! evaluates classifiers on *growing* prefixes, one sample at a time. Two
//! pieces of this crate exist to make that cheap:
//!
//! * [`Classifier::predict_proba_into`] writes probabilities into a
//!   caller-provided buffer, eliminating the per-call `Vec` allocation on
//!   hot paths.
//! * [`Classifier::score_session`] opens an incremental [`ScoreSession`]
//!   whose per-sample cost does not grow with the prefix length (for models
//!   whose scores decompose coordinate-wise — nearest-centroid and diagonal
//!   Gaussians). Models without an incremental form return `None` and
//!   callers fall back to whole-prefix rescoring.

pub mod centroid;
pub mod eval;
pub mod gaussian;
pub mod knn;
pub mod linalg;
pub mod logistic;
pub mod sfa;
pub mod weasel;

use etsc_core::ClassLabel;
use etsc_persist::{Decoder, Encoder, PersistError};

/// A fitted whole-series classifier.
///
/// `predict_proba` returns a probability vector over `0..n_classes`;
/// implementations that are not naturally probabilistic return normalized
/// scores (documented per type).
///
/// `Sync` is a supertrait so fitted models can be shared by reference
/// across the workspace's worker threads (batch evaluation, TEASER snapshot
/// fits, the stream monitor's anchor fan-out — see `etsc_core::parallel`).
/// Fitted models are plain data, so every implementor satisfies it
/// automatically.
pub trait Classifier: Sync {
    /// Number of classes the model was fitted on.
    fn n_classes(&self) -> usize;

    /// Hard prediction for one series.
    fn predict(&self, x: &[f64]) -> ClassLabel {
        let p = self.predict_proba(x);
        argmax(&p)
    }

    /// Probability (or normalized score) per class.
    fn predict_proba(&self, x: &[f64]) -> Vec<f64>;

    /// Probability per class, written into `out` (`out.len()` must equal
    /// [`Classifier::n_classes`]). The allocation-free twin of
    /// [`Classifier::predict_proba`] for hot paths; the default delegates
    /// and copies, implementations override to skip the `Vec` entirely.
    fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        let p = self.predict_proba(x);
        assert_eq!(
            out.len(),
            p.len(),
            "output buffer must hold one probability per class"
        );
        out.copy_from_slice(&p);
    }

    /// Open an incremental scoring session, if this model supports one.
    ///
    /// A [`ScoreSession`] consumes a series one sample at a time and can
    /// report class probabilities at any point for amortized O(classes) per
    /// sample — the substrate of the early-classification session API.
    /// Models whose scores do not decompose per coordinate (kNN, WEASEL)
    /// return `None`; callers then rescore whole prefixes instead.
    fn score_session(&self) -> Option<Box<dyn ScoreSession + '_>> {
        None
    }

    /// Open an incremental scoring session over the **per-prefix
    /// z-normalized** view of the pushed samples, if this model supports
    /// one.
    ///
    /// After pushing `x1..xt`, the session's probabilities track
    /// `predict_proba(&znormalize(&[x1..xt]))` — the honest deployment
    /// normalization, in which every arriving sample retroactively rescales
    /// the whole prefix. Implementations fold that global rescaling into
    /// closed-form updates of running sums (see
    /// [`gaussian::GaussianZnormSession`] and
    /// [`centroid::CentroidZnormScoreSession`]), so the equivalence is to
    /// floating-point reassociation tolerance (~1e-9 relative), not bit
    /// exactness; the batch path stays the reference definition. Models
    /// without a closed z-norm form return `None` and callers renormalize
    /// and rescore whole prefixes.
    fn score_session_znorm(&self) -> Option<Box<dyn ScoreSession + '_>> {
        None
    }
}

/// An incremental per-sample scorer over one growing series.
///
/// Pushing samples `x1..xt` and then calling
/// [`ScoreSession::predict_proba_into`] must produce exactly what the owning
/// [`Classifier`]'s `predict_proba(&[x1..xt])` produces (up to the model's
/// fitted length, after which further samples are ignored — mirroring the
/// prefix-truncation every classifier in this crate applies).
///
/// `Send` is a supertrait so sessions can migrate to worker threads (the
/// parallel multi-anchor servicing paths); sessions hold owned running
/// state plus a shared reference to their `Sync` model, so every
/// implementor satisfies it automatically.
pub trait ScoreSession: Send {
    /// Consume one sample.
    fn push(&mut self, x: f64);

    /// Number of samples consumed (before any truncation).
    fn len(&self) -> usize;

    /// True before the first sample.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current class probabilities, written into `out` (length =
    /// `n_classes`).
    fn predict_proba_into(&self, out: &mut [f64]);

    /// Forget all samples, keeping allocations for reuse.
    fn reset(&mut self);

    /// Append this session's resumable state to `enc` (see `etsc-persist`
    /// for the codec). A session restored into the same fitted model via
    /// [`ScoreSession::load_state`] continues **bit-identically** to an
    /// uninterrupted one: every accumulator travels as its IEEE bits.
    ///
    /// The default refuses ([`PersistError::Unsupported`]); every built-in
    /// session overrides it.
    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        let _ = enc;
        Err(PersistError::Unsupported(
            "this ScoreSession type (no save_state override)",
        ))
    }

    /// Rehydrate a freshly opened session from state written by
    /// [`ScoreSession::save_state`] against the same fitted model. The
    /// session must be fresh (or is reset first); implementations validate
    /// that the state's shape matches the owning model and fail with
    /// [`PersistError::Corrupt`] otherwise.
    fn load_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), PersistError> {
        let _ = dec;
        Err(PersistError::Unsupported(
            "this ScoreSession type (no load_state override)",
        ))
    }
}

/// Index of the maximum element, NaN-safe.
///
/// * NaN entries are never selected: a NaN is treated as "no information",
///   not as a winning or losing score. (The previous implementation let a
///   leading NaN win by never being out-compared — silently corrupting
///   downstream decisions.)
/// * Ties break toward the lower index, so class 0 wins an exact tie — the
///   deterministic convention every algorithm in the workspace relies on.
/// * An empty slice or an all-NaN slice returns 0, the conventional
///   fallback label.
pub fn argmax(xs: &[f64]) -> usize {
    let mut best: Option<usize> = None;
    for (i, &v) in xs.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some(b) if v <= xs[b] => {}
            _ => best = Some(i),
        }
    }
    best.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic_and_ties() {
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
        assert_eq!(argmax(&[0.5, 0.5]), 0);
        assert_eq!(argmax(&[1.0]), 0);
    }

    #[test]
    fn argmax_skips_nan() {
        assert_eq!(argmax(&[f64::NAN, 0.2, 0.7]), 2);
        assert_eq!(argmax(&[0.9, f64::NAN, 0.7]), 0);
        assert_eq!(argmax(&[f64::NAN, f64::NAN]), 0, "all-NaN falls back to 0");
        assert_eq!(argmax(&[]), 0, "empty falls back to 0");
        assert_eq!(argmax(&[f64::NAN, 0.1, f64::NAN, 0.1]), 1, "ties low");
    }

    #[test]
    fn argmax_handles_infinities() {
        assert_eq!(argmax(&[f64::NEG_INFINITY, 0.0, f64::INFINITY]), 2);
        assert_eq!(argmax(&[f64::NEG_INFINITY, f64::NEG_INFINITY]), 0);
    }

    #[test]
    fn predict_proba_into_default_matches_vec_path() {
        struct Fixed;
        impl Classifier for Fixed {
            fn n_classes(&self) -> usize {
                3
            }
            fn predict_proba(&self, _x: &[f64]) -> Vec<f64> {
                vec![0.2, 0.5, 0.3]
            }
        }
        let mut out = [0.0; 3];
        Fixed.predict_proba_into(&[1.0], &mut out);
        assert_eq!(out, [0.2, 0.5, 0.3]);
        assert!(Fixed.score_session().is_none(), "default has no session");
    }
}
