#![warn(missing_docs)]
// Numeric kernels below index several parallel arrays per iteration; explicit
// index loops are the clearer idiom there.
#![allow(clippy::needless_range_loop)]

//! # etsc-classifiers
//!
//! Classic (whole-series) time series classification — the substrate the
//! early-classification algorithms of `etsc-early` are built from, and the
//! baseline the paper contrasts them with.
//!
//! * [`knn`] — k-nearest-neighbor classification under Euclidean distance or
//!   DTW (with an LB_Kim/LB_Keogh lower-bounding cascade), the de-facto UCR
//!   baseline.
//! * [`centroid`] — nearest-centroid classification, used as a cheap
//!   probabilistic slave.
//! * [`gaussian`] — Gaussian class-conditional models (diagonal or full
//!   covariance), the machinery behind RelClass.
//! * [`linalg`] — the minimal dense linear algebra (Cholesky) the Gaussian
//!   models need; written in-repo per the workspace's no-extra-deps rule.
//! * [`sfa`] / [`weasel`] — Symbolic Fourier Approximation and a
//!   bag-of-SFA-words classifier ("WEASEL-lite"), our from-scratch stand-in
//!   for the WEASEL slaves TEASER uses.
//! * [`logistic`] — one-vs-rest logistic regression trained by SGD.
//! * [`eval`] — accuracy, confusion matrices, cross-validation.

pub mod centroid;
pub mod eval;
pub mod gaussian;
pub mod knn;
pub mod linalg;
pub mod logistic;
pub mod sfa;
pub mod weasel;

use etsc_core::ClassLabel;

/// A fitted whole-series classifier.
///
/// `predict_proba` returns a probability vector over `0..n_classes`;
/// implementations that are not naturally probabilistic return normalized
/// scores (documented per type).
pub trait Classifier {
    /// Number of classes the model was fitted on.
    fn n_classes(&self) -> usize;

    /// Hard prediction for one series.
    fn predict(&self, x: &[f64]) -> ClassLabel {
        let p = self.predict_proba(x);
        argmax(&p)
    }

    /// Probability (or normalized score) per class.
    fn predict_proba(&self, x: &[f64]) -> Vec<f64>;
}

/// Index of the maximum element; ties break toward the lower index.
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_basic_and_ties() {
        assert_eq!(argmax(&[0.1, 0.7, 0.2]), 1);
        assert_eq!(argmax(&[0.5, 0.5]), 0);
        assert_eq!(argmax(&[1.0]), 0);
    }
}
