//! WEASEL-lite: a bag-of-SFA-words time series classifier.
//!
//! The WEASEL pipeline (Schäfer & Leser, CIKM 2017) that TEASER uses as its
//! slave classifier: slide windows of several sizes over the series, map
//! each window to an SFA word, count words into a bag-of-patterns histogram,
//! prune features by a chi² test against the class labels, and train a
//! linear (logistic) classifier on the surviving counts.
//!
//! "Lite" denotes the documented simplifications (DESIGN.md): unigram words
//! only (no bigrams), one fixed word length/alphabet across window sizes,
//! and our in-repo softmax regression instead of liblinear. The
//! architecture — probabilistic, length-agnostic, trainable per snapshot —
//! is what TEASER requires, and is preserved.

// BTreeMap, not HashMap: feature bags feed snapshot bytes and prediction
// vectors, and ordered iteration keeps both independent of hash state.
use std::collections::BTreeMap;

use etsc_core::window::sliding_windows;
use etsc_core::UcrDataset;
use etsc_persist::{Decoder, Encoder, Persist, PersistError};

use crate::logistic::{LogisticConfig, LogisticRegression};
use crate::sfa::Sfa;
use crate::Classifier;

/// WEASEL-lite hyper-parameters.
#[derive(Debug, Clone)]
pub struct WeaselConfig {
    /// Sliding window sizes. Sizes longer than the training series are
    /// skipped at fit time.
    pub window_sizes: Vec<usize>,
    /// SFA word length (even; `word_len/2` Fourier coefficients).
    pub word_len: usize,
    /// SFA alphabet size per symbol.
    pub alphabet: usize,
    /// Keep this many features (by chi² score). `0` keeps everything.
    pub top_features: usize,
    /// Window stride when extracting words.
    pub stride: usize,
    /// Logistic regression training settings.
    pub logistic: LogisticConfig,
}

impl Default for WeaselConfig {
    fn default() -> Self {
        Self {
            window_sizes: vec![16, 24, 32],
            word_len: 4,
            alphabet: 4,
            top_features: 256,
            stride: 1,
            logistic: LogisticConfig::default(),
        }
    }
}

/// A (window-size index, SFA word) feature key.
type FeatureKey = (usize, u64);

/// A fitted WEASEL-lite classifier.
#[derive(Debug, Clone)]
pub struct Weasel {
    sfas: Vec<(usize, Sfa)>, // (window size, quantizer)
    feature_index: BTreeMap<FeatureKey, usize>,
    model: LogisticRegression,
    n_classes: usize,
    stride: usize,
}

impl Weasel {
    /// Fit the full pipeline on `train`.
    pub fn fit(train: &UcrDataset, cfg: &WeaselConfig) -> Self {
        let usable: Vec<usize> = cfg
            .window_sizes
            .iter()
            .copied()
            .filter(|&w| w >= 4 && w <= train.series_len())
            .collect();
        assert!(
            !usable.is_empty(),
            "no usable window sizes for series of length {}",
            train.series_len()
        );
        let n_classes = train.n_classes();

        // 1. Fit one SFA quantizer per window size.
        let mut sfas = Vec::with_capacity(usable.len());
        for &w in &usable {
            let windows: Vec<&[f64]> = train
                .iter()
                .flat_map(|(s, _)| sliding_windows(s, w, cfg.stride).map(|(_, win)| win))
                .collect();
            sfas.push((w, Sfa::fit(windows, cfg.word_len, cfg.alphabet)));
        }

        // 2. Bag each training series; accumulate per-class feature counts
        //    for the chi² filter.
        let mut bags: Vec<BTreeMap<FeatureKey, f64>> = Vec::with_capacity(train.len());
        let mut class_feature_counts: BTreeMap<FeatureKey, Vec<f64>> = BTreeMap::new();
        for (s, label) in train.iter() {
            let bag = Self::bag_of(&sfas, s, cfg.stride);
            for (&key, &count) in &bag {
                class_feature_counts
                    .entry(key)
                    .or_insert_with(|| vec![0.0; n_classes])[label] += count;
            }
            bags.push(bag);
        }

        // 3. Chi² feature selection: score each feature's count distribution
        //    across classes against the class-size-proportional expectation.
        let class_totals: Vec<f64> = {
            let counts = train.class_counts();
            let total: usize = counts.iter().sum();
            counts.iter().map(|&c| c as f64 / total as f64).collect()
        };
        let mut scored: Vec<(FeatureKey, f64)> = class_feature_counts
            .iter()
            .map(|(&key, per_class)| {
                let total: f64 = per_class.iter().sum();
                let chi2: f64 = per_class
                    .iter()
                    .zip(&class_totals)
                    .map(|(&obs, &frac)| {
                        let exp = total * frac;
                        if exp > 0.0 {
                            (obs - exp) * (obs - exp) / exp
                        } else {
                            0.0
                        }
                    })
                    .sum();
                (key, chi2)
            })
            .collect();
        // total_cmp: chi² scores can go NaN on degenerate class structure
        // (restore-then-refit of broken data); NaN must sort
        // deterministically instead of panicking the fit.
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let keep = if cfg.top_features == 0 {
            scored.len()
        } else {
            cfg.top_features.min(scored.len())
        };
        let feature_index: BTreeMap<FeatureKey, usize> = scored[..keep]
            .iter()
            .enumerate()
            .map(|(i, &(key, _))| (key, i))
            .collect();

        // 4. Vectorize and train the linear model.
        let x: Vec<Vec<f64>> = bags
            .iter()
            .map(|bag| Self::vectorize(bag, &feature_index))
            .collect();
        let y: Vec<usize> = train.labels().to_vec();
        let model = LogisticRegression::fit(&x, &y, n_classes, &cfg.logistic);

        Self {
            sfas,
            feature_index,
            model,
            n_classes,
            stride: cfg.stride,
        }
    }

    /// Bag-of-words histogram of one series under the fitted quantizers.
    /// Window sizes longer than the series are skipped, which is what makes
    /// WEASEL usable on prefixes.
    fn bag_of(sfas: &[(usize, Sfa)], s: &[f64], stride: usize) -> BTreeMap<FeatureKey, f64> {
        let mut bag = BTreeMap::new();
        for (wi, (w, sfa)) in sfas.iter().enumerate() {
            if s.len() < *w {
                continue;
            }
            for (_, win) in sliding_windows(s, *w, stride) {
                *bag.entry((wi, sfa.word(win))).or_insert(0.0) += 1.0;
            }
        }
        bag
    }

    /// Dense feature vector: log(1 + count) of each retained feature, which
    /// tames the count scale differences between short and long inputs.
    fn vectorize(bag: &BTreeMap<FeatureKey, f64>, index: &BTreeMap<FeatureKey, usize>) -> Vec<f64> {
        let mut v = vec![0.0; index.len()];
        for (key, &count) in bag {
            if let Some(&i) = index.get(key) {
                v[i] = (1.0 + count).ln();
            }
        }
        v
    }

    /// Number of retained features.
    pub fn n_features(&self) -> usize {
        self.feature_index.len()
    }
}

impl Persist for Weasel {
    const KIND: &'static str = "Weasel";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.put_usize(self.n_classes);
        enc.put_usize(self.stride);
        enc.put_usize(self.sfas.len());
        for (w, sfa) in &self.sfas {
            enc.put_usize(*w);
            enc.section(|e| sfa.encode_body(e));
        }
        // BTreeMap iterates in key order, so identical models produce
        // identical snapshots with no explicit sort.
        enc.put_usize(self.feature_index.len());
        for (&(wi, word), &idx) in &self.feature_index {
            enc.put_usize(wi);
            enc.put_u64(word);
            enc.put_usize(idx);
        }
        enc.section(|e| self.model.encode_body(e));
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let n_classes = dec.get_usize("weasel class count")?;
        let stride = dec.get_usize("weasel stride")?;
        if stride == 0 {
            return Err(PersistError::Corrupt("weasel: zero stride".into()));
        }
        let n_sfas = dec.get_usize("weasel sfa count")?;
        let mut sfas = Vec::with_capacity(n_sfas);
        for _ in 0..n_sfas {
            let w = dec.get_usize("weasel window size")?;
            let mut sub = dec.section("weasel sfa")?;
            let sfa = Sfa::decode_body(&mut sub)?;
            sub.finish()?;
            sfas.push((w, sfa));
        }
        let n_features = dec.get_usize("weasel feature count")?;
        let mut feature_index = BTreeMap::new();
        for _ in 0..n_features {
            let wi = dec.get_usize("weasel feature window index")?;
            if wi >= n_sfas {
                return Err(PersistError::Corrupt(format!(
                    "weasel: feature references window index {wi} of {n_sfas}"
                )));
            }
            let word = dec.get_u64("weasel feature word")?;
            let idx = dec.get_usize("weasel feature slot")?;
            if idx >= n_features {
                return Err(PersistError::Corrupt(format!(
                    "weasel: feature slot {idx} of {n_features}"
                )));
            }
            if feature_index.insert((wi, word), idx).is_some() {
                return Err(PersistError::Corrupt(
                    "weasel: duplicate feature key".into(),
                ));
            }
        }
        let mut sub = dec.section("weasel model")?;
        let model = LogisticRegression::decode_body(&mut sub)?;
        sub.finish()?;
        if model.n_features() != n_features {
            return Err(PersistError::Corrupt(format!(
                "weasel: linear model expects {} features, index holds {n_features}",
                model.n_features()
            )));
        }
        if model.n_classes() != n_classes {
            return Err(PersistError::Corrupt(format!(
                "weasel: linear model has {} classes, header says {n_classes}",
                model.n_classes()
            )));
        }
        Ok(Self {
            sfas,
            feature_index,
            model,
            n_classes,
            stride,
        })
    }
}

impl Classifier for Weasel {
    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let bag = Self::bag_of(&self.sfas, x, self.stride);
        let v = Self::vectorize(&bag, &self.feature_index);
        self.model.predict_proba(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two classes with different dominant frequencies.
    fn tones(n_per_class: usize, len: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            let freq = if c == 0 { 2.0 } else { 5.0 };
            for i in 0..n_per_class {
                let phase = i as f64 * 0.7;
                data.push(
                    (0..len)
                        .map(|j| {
                            (std::f64::consts::TAU * freq * j as f64 / len as f64 + phase).sin()
                        })
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    fn quick_cfg() -> WeaselConfig {
        WeaselConfig {
            window_sizes: vec![16, 24],
            word_len: 4,
            alphabet: 4,
            top_features: 64,
            stride: 2,
            logistic: LogisticConfig {
                epochs: 80,
                ..LogisticConfig::default()
            },
        }
    }

    #[test]
    fn separates_frequency_classes() {
        let train = tones(10, 64);
        let clf = Weasel::fit(&train, &quick_cfg());
        let test = tones(5, 64);
        let acc = crate::eval::accuracy(&clf, &test);
        assert!(acc >= 0.9, "WEASEL-lite should separate tones, acc={acc}");
    }

    #[test]
    fn works_on_prefixes() {
        let train = tones(8, 64);
        let clf = Weasel::fit(&train, &quick_cfg());
        let full: Vec<f64> = tones(1, 64).series(0).to_vec();
        // A 32-sample prefix still contains windows of size 16 and 24.
        let p = clf.predict_proba(&full[..32]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prefix_shorter_than_all_windows_gives_neutral_output() {
        let train = tones(8, 64);
        let clf = Weasel::fit(&train, &quick_cfg());
        let p = clf.predict_proba(&[0.0; 8]); // shorter than any window
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn feature_count_respects_cap() {
        let train = tones(8, 64);
        let clf = Weasel::fit(&train, &quick_cfg());
        assert!(clf.n_features() <= 64);
        assert!(clf.n_features() > 0);
    }

    #[test]
    fn snapshot_restore_preserves_probabilities_exactly() {
        let train = tones(6, 48);
        let clf = Weasel::fit(&train, &quick_cfg());
        let back = Weasel::restore(&clf.snapshot()).unwrap();
        assert_eq!(back.n_features(), clf.n_features());
        for (probe, _) in train.iter() {
            assert_eq!(back.predict_proba(probe), clf.predict_proba(probe));
            // Prefix behavior (what TEASER snapshots rely on) too.
            assert_eq!(
                back.predict_proba(&probe[..24]),
                clf.predict_proba(&probe[..24])
            );
        }
    }

    #[test]
    fn fit_is_deterministic() {
        let train = tones(6, 48);
        let cfg = quick_cfg();
        let a = Weasel::fit(&train, &cfg);
        let b = Weasel::fit(&train, &cfg);
        let probe: Vec<f64> = train.series(0).to_vec();
        assert_eq!(a.predict_proba(&probe), b.predict_proba(&probe));
    }
}
