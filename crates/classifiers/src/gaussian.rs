//! Gaussian class-conditional models: diagonal ("naive Bayes") and full
//! covariance, with per-class or pooled (LDA-style) covariances.
//!
//! These are the machinery behind RelClass in `etsc-early`: a prefix of an
//! incoming series is scored under the *marginal* of each class Gaussian
//! over the observed coordinates — for a Gaussian, that marginal is just the
//! leading sub-vector/sub-matrix, so prefix classification is natural.

use etsc_core::{ClassLabel, UcrDataset};
use etsc_persist::{Decoder, Encoder, Persist, PersistError};

use crate::linalg::{covariance, Cholesky};
use crate::{Classifier, ScoreSession};

const LN_2PI: f64 = 1.8378770664093453;

/// State-schema tag for [`GaussianLikelihoodSession`] checkpoints.
const TAG_LIK: u8 = 22;
/// State-schema tag for [`GaussianZnormSession`] checkpoints.
const TAG_ZNORM: u8 = 23;

/// Covariance structure for [`GaussianModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CovarianceKind {
    /// Per-class diagonal covariance (Gaussian naive Bayes).
    Diagonal,
    /// Diagonal covariance pooled across classes — the "linear discriminant
    /// Gaussian" (LDG) variant: equal covariances make the decision boundary
    /// linear.
    PooledDiagonal,
    /// Per-class full covariance (QDA). Quadratic cost in the series length;
    /// prefer for short series or snapshot evaluation.
    Full,
}

/// One class's Gaussian parameters.
#[derive(Debug, Clone)]
struct ClassGaussian {
    mean: Vec<f64>,
    /// Diagonal variances (always kept; the Full kind uses it as a fallback
    /// when the covariance fails to factor).
    var: Vec<f64>,
    /// Full kind: the covariance's Cholesky factor plus precomputed whitened
    /// vectors, factored once at fit time. `None` when the (ridge-
    /// regularized) covariance is not positive definite; the class then
    /// falls back to its diagonal marginal at every prefix length.
    full: Option<FullFactor>,
    prior: f64,
}

/// Precomputed full-covariance machinery for one class.
///
/// The Cholesky algorithm fills `L` row by row, so the leading `t × t` block
/// of `L` is bit-identical to factoring the leading principal submatrix
/// directly (see [`Cholesky`]). One factorization therefore serves every
/// prefix length: prefix log-likelihoods become one forward substitution
/// (`‖L_t⁻¹(x − μ)‖²`), and *incremental* sessions extend that substitution
/// one row per arriving sample.
#[derive(Debug, Clone)]
struct FullFactor {
    chol: Cholesky,
    /// `L⁻¹·𝟙` — the whitened all-ones vector. Per-prefix z-normalization
    /// shifts every coordinate by the same `μ/σ`, and whitening is linear,
    /// so the whitened view of a z-normalized prefix decomposes over this
    /// vector (see [`GaussianZnormSession`]).
    white_ones: Vec<f64>,
    /// `L⁻¹·μ_c` — the whitened class mean, the constant part of the same
    /// decomposition.
    white_mean: Vec<f64>,
}

/// Gaussian class-conditional model over fixed-length series, supporting
/// prefix (marginal) likelihoods.
#[derive(Debug, Clone)]
pub struct GaussianModel {
    classes: Vec<ClassGaussian>,
    kind: CovarianceKind,
    series_len: usize,
}

/// Variance floor: keeps constant coordinates (e.g. the flat GunPoint tail)
/// from producing infinite densities.
const VAR_FLOOR: f64 = 1e-6;
/// Ridge added to full covariances before factorization.
const RIDGE: f64 = 1e-3;

impl GaussianModel {
    /// Fit per-class Gaussians of the requested kind on `train`.
    pub fn fit(train: &UcrDataset, kind: CovarianceKind) -> Self {
        let n_classes = train.n_classes();
        let len = train.series_len();
        let n_total = train.len() as f64;

        let mut classes = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            let members: Vec<&[f64]> = train
                .iter()
                .filter(|&(_, l)| l == c)
                .map(|(s, _)| s)
                .collect();
            let count = members.len();
            let mut mean = vec![0.0; len];
            for m in &members {
                for (acc, &v) in mean.iter_mut().zip(*m) {
                    *acc += v;
                }
            }
            if count > 0 {
                mean.iter_mut().for_each(|v| *v /= count as f64);
            }
            let mut var = vec![0.0; len];
            for m in &members {
                for ((acc, &v), &mu) in var.iter_mut().zip(*m).zip(&mean) {
                    let d = v - mu;
                    *acc += d * d;
                }
            }
            if count > 0 {
                var.iter_mut().for_each(|v| *v /= count as f64);
            }
            var.iter_mut().for_each(|v| *v = v.max(VAR_FLOOR));

            let full = match kind {
                CovarianceKind::Full => {
                    let cov = covariance(&members, &mean, RIDGE);
                    Cholesky::new(&cov).map(|chol| {
                        let ones = vec![1.0; len];
                        let mut white_ones = Vec::with_capacity(len);
                        chol.forward_solve_leading(&ones, &mut white_ones);
                        let mut white_mean = Vec::with_capacity(len);
                        chol.forward_solve_leading(&mean, &mut white_mean);
                        FullFactor {
                            chol,
                            white_ones,
                            white_mean,
                        }
                    })
                }
                _ => None,
            };
            classes.push(ClassGaussian {
                mean,
                var,
                full,
                prior: count as f64 / n_total,
            });
        }

        if kind == CovarianceKind::PooledDiagonal {
            // Pool the diagonal variances, weighted by class priors.
            let mut pooled = vec![0.0; len];
            for cg in &classes {
                for (p, &v) in pooled.iter_mut().zip(&cg.var) {
                    *p += cg.prior * v;
                }
            }
            for cg in &mut classes {
                cg.var.clone_from(&pooled);
            }
        }

        Self {
            classes,
            kind,
            series_len: len,
        }
    }

    /// Series length the model was fitted on.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Log-likelihood of the prefix `x` (length ≤ series_len) under class
    /// `c`'s marginal Gaussian.
    ///
    /// The Full kind evaluates against the covariance's Cholesky factor
    /// computed once at fit time (its leading block factors every prefix
    /// marginal), as `‖L_t⁻¹(x − μ)‖²` — the same term order the
    /// incremental [`GaussianLikelihoodSession`] accumulates, so the two
    /// paths agree bit for bit. A class whose regularized covariance failed
    /// to factor falls back to its diagonal marginal at every prefix length.
    pub fn log_likelihood_prefix(&self, c: ClassLabel, x: &[f64]) -> f64 {
        let t = x.len().min(self.series_len);
        let cg = &self.classes[c];
        match (self.kind, &cg.full) {
            (CovarianceKind::Full, Some(f)) => {
                let diff: Vec<f64> = (0..t).map(|i| x[i] - cg.mean[i]).collect();
                -0.5 * (t as f64 * LN_2PI
                    + f.chol.log_det_leading(t)
                    + f.chol.mahalanobis_sq_leading(&diff))
            }
            // Diagonal kinds, and the regularized fallback for a Full class
            // with an unfactorable covariance.
            _ => {
                let mut ll = 0.0;
                for i in 0..t {
                    let d = x[i] - cg.mean[i];
                    ll += -0.5 * (LN_2PI + cg.var[i].ln() + d * d / cg.var[i]);
                }
                ll
            }
        }
    }

    /// Class posteriors given a prefix: softmax of `log prior + log lik`.
    pub fn posterior_prefix(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.classes.len()];
        self.posterior_prefix_into(x, &mut out);
        out
    }

    /// [`posterior_prefix`](Self::posterior_prefix) into a caller buffer.
    pub fn posterior_prefix_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.classes.len());
        for (c, o) in out.iter_mut().enumerate() {
            *o = self.classes[c].prior.max(1e-12).ln() + self.log_likelihood_prefix(c, x);
        }
        softmax_of_logs_in_place(out);
    }

    /// Class mean (for inspection / conditional completion).
    pub fn class_mean(&self, c: ClassLabel) -> &[f64] {
        &self.classes[c].mean
    }

    /// Class prior.
    pub fn class_prior(&self, c: ClassLabel) -> f64 {
        self.classes[c].prior
    }

    /// Open an incremental per-class log-likelihood accumulator.
    ///
    /// Every covariance kind is supported. Diagonal kinds accumulate the
    /// per-coordinate likelihood sum at O(classes) per sample. The Full
    /// kind extends each class's forward substitution `L_t⁻¹(x − μ)` by one
    /// row per sample — O(classes × prefix) per sample, against
    /// O(classes × prefix²) for rescoring the whole prefix (and
    /// O(classes × prefix³) for refactoring its covariance marginal).
    pub fn likelihood_session(&self) -> GaussianLikelihoodSession<'_> {
        GaussianLikelihoodSession {
            full: match self.kind {
                CovarianceKind::Full => self
                    .classes
                    .iter()
                    .map(|cg| {
                        cg.full.as_ref().map(|_| FullClassState {
                            diff: Vec::with_capacity(self.series_len),
                            y: Vec::with_capacity(self.series_len),
                            q: 0.0,
                            sum_ln: 0.0,
                        })
                    })
                    .collect(),
                _ => Vec::new(),
            },
            model: self,
            ll: vec![0.0; self.classes.len()],
            len: 0,
        }
    }
}

impl CovarianceKind {
    fn to_tag(self) -> u8 {
        match self {
            CovarianceKind::Diagonal => 0,
            CovarianceKind::PooledDiagonal => 1,
            CovarianceKind::Full => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, PersistError> {
        match tag {
            0 => Ok(CovarianceKind::Diagonal),
            1 => Ok(CovarianceKind::PooledDiagonal),
            2 => Ok(CovarianceKind::Full),
            t => Err(PersistError::Corrupt(format!(
                "gaussian: covariance kind tag {t}"
            ))),
        }
    }
}

impl Persist for GaussianModel {
    const KIND: &'static str = "GaussianModel";

    fn encode_body(&self, enc: &mut Encoder) {
        enc.put_u8(self.kind.to_tag());
        enc.put_usize(self.series_len);
        enc.put_usize(self.classes.len());
        for cg in &self.classes {
            enc.section(|e| {
                e.put_f64_slice(&cg.mean);
                e.put_f64_slice(&cg.var);
                e.put_f64(cg.prior);
                // Only the Cholesky factor travels; the whitened vectors
                // are recomputed at decode by the same deterministic
                // forward substitution fit time ran — bit-identical.
                match &cg.full {
                    Some(f) => {
                        e.put_bool(true);
                        f.chol.encode_body(e);
                    }
                    None => e.put_bool(false),
                }
            });
        }
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let kind = CovarianceKind::from_tag(dec.get_u8("gaussian kind")?)?;
        let series_len = dec.get_usize("gaussian series_len")?;
        let n = dec.get_usize("gaussian class count")?;
        if series_len == 0 || n == 0 {
            return Err(PersistError::Corrupt(
                "gaussian: empty model (no classes or zero length)".into(),
            ));
        }
        let mut classes = Vec::with_capacity(n);
        for c in 0..n {
            let mut sub = dec.section("gaussian class")?;
            let mean = sub.get_f64_vec("gaussian mean")?;
            let var = sub.get_f64_vec("gaussian var")?;
            let prior = sub.get_f64("gaussian prior")?;
            if mean.len() != series_len || var.len() != series_len {
                return Err(PersistError::Corrupt(format!(
                    "gaussian class {c}: mean/var lengths {}/{} for series_len {series_len}",
                    mean.len(),
                    var.len()
                )));
            }
            if var.iter().any(|&v| !(v.is_finite() && v > 0.0)) {
                return Err(PersistError::Corrupt(format!(
                    "gaussian class {c}: non-positive variance"
                )));
            }
            let full = if sub.get_bool("gaussian factor present")? {
                if kind != CovarianceKind::Full {
                    return Err(PersistError::Corrupt(format!(
                        "gaussian class {c}: factor stored for a diagonal kind"
                    )));
                }
                let chol = Cholesky::decode_body(&mut sub)?;
                if chol.dim() != series_len {
                    return Err(PersistError::Corrupt(format!(
                        "gaussian class {c}: factor dim {} for series_len {series_len}",
                        chol.dim()
                    )));
                }
                let ones = vec![1.0; series_len];
                let mut white_ones = Vec::with_capacity(series_len);
                chol.forward_solve_leading(&ones, &mut white_ones);
                let mut white_mean = Vec::with_capacity(series_len);
                chol.forward_solve_leading(&mean, &mut white_mean);
                Some(FullFactor {
                    chol,
                    white_ones,
                    white_mean,
                })
            } else {
                None
            };
            sub.finish()?;
            classes.push(ClassGaussian {
                mean,
                var,
                full,
                prior,
            });
        }
        Ok(Self {
            classes,
            kind,
            series_len,
        })
    }
}

/// Per-class whitening state of a Full-covariance likelihood session: the
/// growing residual `x − μ`, its forward substitution `y = L_t⁻¹(x − μ)`
/// (extended one row per sample — triangular solves are incremental), and
/// the running `‖y‖²` / `Σ ln L_ii` the log-density is assembled from.
#[derive(Debug, Clone)]
struct FullClassState {
    diff: Vec<f64>,
    y: Vec<f64>,
    q: f64,
    sum_ln: f64,
}

/// Running per-class log-likelihood of a growing prefix under a
/// [`GaussianModel`]. After pushing `x1..xt`,
/// [`log_likelihoods`](Self::log_likelihoods)`[c]` equals
/// [`GaussianModel::log_likelihood_prefix`]`(c, &[x1..xt])` **exactly**, for
/// every covariance kind: the diagonal likelihood is a per-coordinate sum
/// accumulated in the same order, and the full-covariance likelihood is
/// assembled from the same forward-substitution rows, squared and summed in
/// the same order, as the batch path.
#[derive(Debug, Clone)]
pub struct GaussianLikelihoodSession<'a> {
    model: &'a GaussianModel,
    ll: Vec<f64>,
    len: usize,
    /// Full kind only: one whitening state per class (`None` entries are
    /// classes whose covariance failed to factor; they use the diagonal
    /// fallback, mirroring the batch path). Empty for diagonal kinds.
    full: Vec<Option<FullClassState>>,
}

impl GaussianLikelihoodSession<'_> {
    /// Consume one sample; coordinates beyond the fitted series length are
    /// ignored (matching the prefix truncation of the batch path).
    pub fn push(&mut self, x: f64) {
        if self.len < self.model.series_len {
            let i = self.len;
            if self.model.kind == CovarianceKind::Full {
                for (c, (state, cg)) in self.full.iter_mut().zip(&self.model.classes).enumerate() {
                    match (state, &cg.full) {
                        (Some(s), Some(f)) => {
                            s.diff.push(x - cg.mean[i]);
                            f.chol.forward_solve_leading(&s.diff, &mut s.y);
                            let yi = s.y[i];
                            s.q += yi * yi;
                            s.sum_ln += f.chol.l_diag(i).ln();
                            self.ll[c] = -0.5 * ((i + 1) as f64 * LN_2PI + s.sum_ln * 2.0 + s.q);
                        }
                        _ => {
                            // Unfactorable class: diagonal marginal, exactly
                            // as the batch fallback.
                            let d = x - cg.mean[i];
                            self.ll[c] += -0.5 * (LN_2PI + cg.var[i].ln() + d * d / cg.var[i]);
                        }
                    }
                }
            } else {
                for (acc, cg) in self.ll.iter_mut().zip(&self.model.classes) {
                    let d = x - cg.mean[i];
                    *acc += -0.5 * (LN_2PI + cg.var[i].ln() + d * d / cg.var[i]);
                }
            }
        }
        self.len += 1;
    }

    /// Samples consumed (uncapped).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True before the first sample.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Per-class log-likelihood of the samples pushed so far.
    pub fn log_likelihoods(&self) -> &[f64] {
        &self.ll
    }

    /// Posterior over classes, written into `out`: softmax of
    /// `log prior + log likelihood`, exactly as
    /// [`GaussianModel::posterior_prefix`].
    pub fn posterior_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.ll.len());
        for (o, (ll, cg)) in out.iter_mut().zip(self.ll.iter().zip(&self.model.classes)) {
            *o = cg.prior.max(1e-12).ln() + ll;
        }
        softmax_of_logs_in_place(out);
    }

    /// Forget all samples, keeping allocations.
    pub fn reset(&mut self) {
        self.ll.fill(0.0);
        self.len = 0;
        for state in self.full.iter_mut().flatten() {
            state.diff.clear();
            state.y.clear();
            state.q = 0.0;
            state.sum_ln = 0.0;
        }
    }
}

impl ScoreSession for GaussianLikelihoodSession<'_> {
    fn push(&mut self, x: f64) {
        GaussianLikelihoodSession::push(self, x);
    }

    fn len(&self) -> usize {
        self.len
    }

    fn predict_proba_into(&self, out: &mut [f64]) {
        self.posterior_into(out);
    }

    fn reset(&mut self) {
        GaussianLikelihoodSession::reset(self);
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u8(TAG_LIK);
        enc.put_usize(self.len);
        enc.put_f64_slice(&self.ll);
        enc.put_usize(self.full.len());
        for state in &self.full {
            match state {
                Some(s) => {
                    enc.put_bool(true);
                    enc.put_f64_slice(&s.diff);
                    enc.put_f64_slice(&s.y);
                    enc.put_f64(s.q);
                    enc.put_f64(s.sum_ln);
                }
                None => enc.put_bool(false),
            }
        }
        Ok(())
    }

    fn load_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), PersistError> {
        if dec.get_u8("gaussian session tag")? != TAG_LIK {
            return Err(PersistError::Corrupt(
                "gaussian likelihood session: wrong state tag".into(),
            ));
        }
        let len = dec.get_usize("gaussian session len")?;
        let ll = dec.get_f64_vec("gaussian session ll")?;
        if ll.len() != self.ll.len() {
            return Err(PersistError::Corrupt(format!(
                "gaussian session: {} classes in state, model has {}",
                ll.len(),
                self.ll.len()
            )));
        }
        let n_full = dec.get_usize("gaussian session full count")?;
        if n_full != self.full.len() {
            return Err(PersistError::Corrupt(format!(
                "gaussian session: {n_full} whitening states, model expects {}",
                self.full.len()
            )));
        }
        let observed = len.min(self.model.series_len);
        let mut full = Vec::with_capacity(n_full);
        for (c, expected) in self.full.iter().enumerate() {
            if dec.get_bool("gaussian session factor present")? {
                if expected.is_none() {
                    return Err(PersistError::Corrupt(format!(
                        "gaussian session class {c}: whitening state for an unfactored class"
                    )));
                }
                let diff = dec.get_f64_vec("gaussian session diff")?;
                let y = dec.get_f64_vec("gaussian session y")?;
                if diff.len() != observed || y.len() != observed {
                    return Err(PersistError::Corrupt(format!(
                        "gaussian session class {c}: residual lengths {}/{} for prefix {observed}",
                        diff.len(),
                        y.len()
                    )));
                }
                let q = dec.get_f64("gaussian session q")?;
                let sum_ln = dec.get_f64("gaussian session sum_ln")?;
                full.push(Some(FullClassState { diff, y, q, sum_ln }));
            } else {
                if expected.is_some() {
                    return Err(PersistError::Corrupt(format!(
                        "gaussian session class {c}: missing whitening state"
                    )));
                }
                full.push(None);
            }
        }
        self.len = len;
        self.ll = ll;
        self.full = full;
        Ok(())
    }
}

impl GaussianModel {
    /// Open an incremental accumulator for the per-class log-likelihood of
    /// the **per-prefix z-normalized** view of a growing prefix: after
    /// pushing `x1..xt`, its log-likelihoods track
    /// `log_likelihood_prefix(c, &znormalize(&[x1..xt]))` (to documented
    /// floating-point tolerance — see [`GaussianZnormSession`]) at O(classes)
    /// per sample for diagonal kinds and O(classes × prefix) for Full,
    /// instead of renormalizing and rescoring the whole prefix.
    pub fn znorm_likelihood_session(&self) -> GaussianZnormSession<'_> {
        GaussianZnormSession {
            classes: self
                .classes
                .iter()
                .map(|cg| match (self.kind, &cg.full) {
                    (CovarianceKind::Full, Some(_)) => ZnormClassState::Full {
                        p: Vec::with_capacity(self.series_len),
                        pp: 0.0,
                        rr: 0.0,
                        ss: 0.0,
                        pr: 0.0,
                        ps: 0.0,
                        rs: 0.0,
                        sum_ln: 0.0,
                    },
                    _ => ZnormClassState::Diag(DiagZnormSums::default()),
                })
                .collect(),
            raw: Vec::with_capacity(match self.kind {
                CovarianceKind::Full => self.series_len,
                _ => 0,
            }),
            model: self,
            s1: 0.0,
            s2: 0.0,
            len: 0,
        }
    }
}

/// The six running sums of the per-prefix z-norm algebra for one class
/// under a diagonal covariance, all weighted by the inverse variances
/// `1/σ²_ci`, plus the (prefix-cumulative) log-determinant.
///
/// Writing the z-normalized sample as `ẑᵢ = u·xᵢ − v` with `u = 1/σ_p`,
/// `v = μ_p/σ_p` (prefix statistics `μ_p, σ_p`), the class-`c` Mahalanobis
/// sum expands to
///
/// ```text
/// Σ (ẑᵢ−mᵢ)²/σ²_ci = u²·Sxx − 2u·(v·Sx + Sxm) + v²·S1 + 2v·Sm + Smm
/// ```
///
/// so a *change of prefix normalization* — which touches every past
/// coordinate — is a closed-form re-evaluation of six scalars, not a replay
/// of the prefix.
#[derive(Debug, Clone, Copy, Default)]
struct DiagZnormSums {
    /// Σ xᵢ²/σ²_ci
    sxx: f64,
    /// Σ xᵢ/σ²_ci
    sx: f64,
    /// Σ xᵢ·mᵢ/σ²_ci
    sxm: f64,
    /// Σ 1/σ²_ci
    s1: f64,
    /// Σ mᵢ/σ²_ci
    sm: f64,
    /// Σ mᵢ²/σ²_ci
    smm: f64,
    /// Σ ln σ²_ci
    slnv: f64,
}

/// Per-class state of a [`GaussianZnormSession`].
#[derive(Debug, Clone)]
enum ZnormClassState {
    /// Diagonal covariance (or the diagonal fallback of an unfactorable
    /// Full-kind class): the six-sums algebra.
    Diag(DiagZnormSums),
    /// Full covariance: the same six-sums shape, pushed through the
    /// whitening transform. With `p = L⁻¹x` (extended one forward-
    /// substitution row per sample), `r = L⁻¹𝟙` and `s = L⁻¹μ_c`
    /// (precomputed at fit), the whitened residual of the z-normalized
    /// prefix is `y = u·p − v·r − s`, so
    /// `‖y‖² = u²·pp + v²·rr + ss − 2uv·pr − 2u·ps + 2v·rs` — six running
    /// dot products, re-evaluated in closed form as `(u, v)` drift.
    Full {
        p: Vec<f64>,
        pp: f64,
        rr: f64,
        ss: f64,
        pr: f64,
        ps: f64,
        rs: f64,
        sum_ln: f64,
    },
}

/// Incremental per-class log-likelihood of the per-prefix z-normalized view
/// of a growing prefix (the [`crate::Classifier::score_session_znorm`]
/// substrate for Gaussian models).
///
/// **Tolerance contract:** after pushing `x1..xt`, the log-likelihoods
/// track `GaussianModel::log_likelihood_prefix(c, &znormalize(&[x1..xt]))`
/// up to floating-point reassociation — the closed-form sums regroup the
/// same arithmetic the batch path performs per coordinate. The prefix mean
/// and standard deviation themselves are maintained as the same running
/// `Σx`/`Σx²` that `etsc_core::stats::mean_std` accumulates, in the same
/// order, so the normalization constants (and the constant-prefix branch
/// they select) are bit-identical to the batch `znormalize`; only the
/// likelihood assembly reassociates. Callers comparing against the batch
/// path should allow ~1e-9 relative slack.
#[derive(Debug, Clone)]
pub struct GaussianZnormSession<'a> {
    model: &'a GaussianModel,
    /// Running Σx / Σx² of the raw samples (uncapped: `znormalize` of the
    /// whole buffer uses every pushed sample, even past the fitted length).
    s1: f64,
    s2: f64,
    /// The raw prefix, capped at the fitted length — the right-hand side the
    /// Full kind's forward substitutions extend over. Left empty for
    /// diagonal kinds.
    raw: Vec<f64>,
    len: usize,
    classes: Vec<ZnormClassState>,
}

impl GaussianZnormSession<'_> {
    /// Consume one sample. Coordinate-indexed sums stop at the fitted
    /// series length (the batch path truncates the prefix there), while the
    /// normalization statistics keep absorbing every sample (the batch path
    /// normalizes the whole buffer before truncating).
    pub fn push(&mut self, x: f64) {
        self.s1 += x;
        self.s2 += x * x;
        if self.len < self.model.series_len {
            let i = self.len;
            if self.model.kind == CovarianceKind::Full {
                self.raw.push(x);
            }
            for (state, cg) in self.classes.iter_mut().zip(&self.model.classes) {
                match state {
                    ZnormClassState::Diag(s) => {
                        let m = cg.mean[i];
                        let iv = 1.0 / cg.var[i];
                        s.sxx += x * x * iv;
                        s.sx += x * iv;
                        s.sxm += x * m * iv;
                        s.s1 += iv;
                        s.sm += m * iv;
                        s.smm += m * m * iv;
                        s.slnv += cg.var[i].ln();
                    }
                    ZnormClassState::Full {
                        p,
                        pp,
                        rr,
                        ss,
                        pr,
                        ps,
                        rs,
                        sum_ln,
                    } => {
                        // Every constructor (the fit-time session opener and
                        // the snapshot-restore path) keys the Full variant
                        // off the factor's presence, so the factor is always
                        // here; a hypothetically inconsistent state must
                        // still degrade gracefully (skip the class) rather
                        // than abort the process mid-stream.
                        let Some(f) = cg.full.as_ref() else { continue };
                        // Extend p = L⁻¹x by one row — the same kernel (and
                        // therefore the same bits) as every other forward
                        // substitution in the workspace.
                        f.chol.forward_solve_leading(&self.raw, p);
                        let pi = p[i];
                        let ri = f.white_ones[i];
                        let si = f.white_mean[i];
                        *sum_ln += f.chol.l_diag(i).ln();
                        *pp += pi * pi;
                        *rr += ri * ri;
                        *ss += si * si;
                        *pr += pi * ri;
                        *ps += pi * si;
                        *rs += ri * si;
                    }
                }
            }
        }
        self.len += 1;
    }

    /// Samples consumed (uncapped).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True before the first sample.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `(u, v)` normalization parameters of the current prefix:
    /// `ẑ = u·x − v` with `u = 1/σ_p`, `v = μ_p/σ_p`, or `(0, 0)` for a
    /// (near-)constant prefix — which maps it to all zeros, exactly as the
    /// batch `znormalize` convention.
    fn norm_params(&self) -> (f64, f64) {
        if self.len == 0 {
            return (0.0, 0.0);
        }
        let n = self.len as f64;
        let mean = self.s1 / n;
        let var = (self.s2 / n - mean * mean).max(0.0);
        let sd = var.sqrt();
        if sd <= etsc_core::znorm::CONSTANT_EPS {
            (0.0, 0.0)
        } else {
            (1.0 / sd, mean / sd)
        }
    }

    /// Per-class log-likelihood of the z-normalized prefix, written into
    /// `out` (length = number of classes).
    pub fn log_likelihoods_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.classes.len());
        let t = self.len.min(self.model.series_len) as f64;
        let (u, v) = self.norm_params();
        for (o, state) in out.iter_mut().zip(&self.classes) {
            *o = match state {
                ZnormClassState::Diag(s) => {
                    let q = u * u * s.sxx - 2.0 * u * (v * s.sx + s.sxm)
                        + (v * v * s.s1 + 2.0 * v * s.sm + s.smm);
                    -0.5 * (t * LN_2PI + s.slnv + q)
                }
                ZnormClassState::Full {
                    pp,
                    rr,
                    ss,
                    pr,
                    ps,
                    rs,
                    sum_ln,
                    ..
                } => {
                    let q = u * u * pp + v * v * rr + ss - 2.0 * u * v * pr - 2.0 * u * ps
                        + 2.0 * v * rs;
                    -0.5 * (t * LN_2PI + sum_ln * 2.0 + q)
                }
            };
        }
    }

    /// Posterior over classes for the z-normalized prefix, written into
    /// `out`: softmax of `log prior + log likelihood`, tracking
    /// [`GaussianModel::posterior_prefix`] of the normalized buffer.
    pub fn posterior_into(&self, out: &mut [f64]) {
        self.log_likelihoods_into(out);
        for (o, cg) in out.iter_mut().zip(&self.model.classes) {
            *o += cg.prior.max(1e-12).ln();
        }
        softmax_of_logs_in_place(out);
    }

    /// Forget all samples, keeping allocations.
    pub fn reset(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
        self.raw.clear();
        self.len = 0;
        for state in self.classes.iter_mut() {
            match state {
                ZnormClassState::Diag(s) => *s = DiagZnormSums::default(),
                ZnormClassState::Full {
                    p,
                    pp,
                    rr,
                    ss,
                    pr,
                    ps,
                    rs,
                    sum_ln,
                } => {
                    p.clear();
                    *pp = 0.0;
                    *rr = 0.0;
                    *ss = 0.0;
                    *pr = 0.0;
                    *ps = 0.0;
                    *rs = 0.0;
                    *sum_ln = 0.0;
                }
            }
        }
    }
}

impl ScoreSession for GaussianZnormSession<'_> {
    fn push(&mut self, x: f64) {
        GaussianZnormSession::push(self, x);
    }

    fn len(&self) -> usize {
        self.len
    }

    fn predict_proba_into(&self, out: &mut [f64]) {
        self.posterior_into(out);
    }

    fn reset(&mut self) {
        GaussianZnormSession::reset(self);
    }

    fn save_state(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u8(TAG_ZNORM);
        enc.put_f64(self.s1);
        enc.put_f64(self.s2);
        enc.put_f64_slice(&self.raw);
        enc.put_usize(self.len);
        enc.put_usize(self.classes.len());
        for state in &self.classes {
            match state {
                ZnormClassState::Diag(s) => {
                    enc.put_u8(0);
                    enc.put_f64(s.sxx);
                    enc.put_f64(s.sx);
                    enc.put_f64(s.sxm);
                    enc.put_f64(s.s1);
                    enc.put_f64(s.sm);
                    enc.put_f64(s.smm);
                    enc.put_f64(s.slnv);
                }
                ZnormClassState::Full {
                    p,
                    pp,
                    rr,
                    ss,
                    pr,
                    ps,
                    rs,
                    sum_ln,
                } => {
                    enc.put_u8(1);
                    enc.put_f64_slice(p);
                    enc.put_f64(*pp);
                    enc.put_f64(*rr);
                    enc.put_f64(*ss);
                    enc.put_f64(*pr);
                    enc.put_f64(*ps);
                    enc.put_f64(*rs);
                    enc.put_f64(*sum_ln);
                }
            }
        }
        Ok(())
    }

    fn load_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), PersistError> {
        if dec.get_u8("gaussian znorm session tag")? != TAG_ZNORM {
            return Err(PersistError::Corrupt(
                "gaussian znorm session: wrong state tag".into(),
            ));
        }
        let s1 = dec.get_f64("gaussian znorm s1")?;
        let s2 = dec.get_f64("gaussian znorm s2")?;
        let raw = dec.get_f64_vec("gaussian znorm raw")?;
        let len = dec.get_usize("gaussian znorm len")?;
        let n = dec.get_usize("gaussian znorm class count")?;
        if n != self.classes.len() {
            return Err(PersistError::Corrupt(format!(
                "gaussian znorm session: {n} classes in state, model has {}",
                self.classes.len()
            )));
        }
        let observed = len.min(self.model.series_len);
        let expect_raw = match self.model.kind {
            CovarianceKind::Full => observed,
            _ => 0,
        };
        if raw.len() != expect_raw {
            return Err(PersistError::Corrupt(format!(
                "gaussian znorm session: raw buffer length {} for prefix {observed}",
                raw.len()
            )));
        }
        let mut classes = Vec::with_capacity(n);
        for (c, expected) in self.classes.iter().enumerate() {
            let variant = dec.get_u8("gaussian znorm variant")?;
            match (variant, expected) {
                (0, ZnormClassState::Diag(_)) => {
                    classes.push(ZnormClassState::Diag(DiagZnormSums {
                        sxx: dec.get_f64("znorm sxx")?,
                        sx: dec.get_f64("znorm sx")?,
                        sxm: dec.get_f64("znorm sxm")?,
                        s1: dec.get_f64("znorm s1")?,
                        sm: dec.get_f64("znorm sm")?,
                        smm: dec.get_f64("znorm smm")?,
                        slnv: dec.get_f64("znorm slnv")?,
                    }));
                }
                (1, ZnormClassState::Full { .. }) => {
                    let p = dec.get_f64_vec("znorm p")?;
                    if p.len() != observed {
                        return Err(PersistError::Corrupt(format!(
                            "gaussian znorm session class {c}: p length {} for prefix {observed}",
                            p.len()
                        )));
                    }
                    classes.push(ZnormClassState::Full {
                        p,
                        pp: dec.get_f64("znorm pp")?,
                        rr: dec.get_f64("znorm rr")?,
                        ss: dec.get_f64("znorm ss")?,
                        pr: dec.get_f64("znorm pr")?,
                        ps: dec.get_f64("znorm ps")?,
                        rs: dec.get_f64("znorm rs")?,
                        sum_ln: dec.get_f64("znorm sum_ln")?,
                    });
                }
                _ => {
                    return Err(PersistError::Corrupt(format!(
                        "gaussian znorm session class {c}: state variant does not match model"
                    )));
                }
            }
        }
        self.s1 = s1;
        self.s2 = s2;
        self.raw = raw;
        self.len = len;
        self.classes = classes;
        Ok(())
    }
}

impl Classifier for GaussianModel {
    fn n_classes(&self) -> usize {
        self.classes.len()
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        self.posterior_prefix(x)
    }

    fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        self.posterior_prefix_into(x, out);
    }

    fn score_session(&self) -> Option<Box<dyn ScoreSession + '_>> {
        Some(Box::new(self.likelihood_session()))
    }

    fn score_session_znorm(&self) -> Option<Box<dyn ScoreSession + '_>> {
        Some(Box::new(self.znorm_likelihood_session()))
    }
}

/// Numerically stable softmax of log-scores.
pub fn softmax_of_logs(logs: &[f64]) -> Vec<f64> {
    let mut p = logs.to_vec();
    softmax_of_logs_in_place(&mut p);
    p
}

/// [`softmax_of_logs`] in place: `buf` holds log-scores on entry and
/// probabilities on exit.
pub fn softmax_of_logs_in_place(buf: &mut [f64]) {
    let max = buf.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        buf.fill(1.0 / buf.len() as f64);
        return;
    }
    let mut z = 0.0;
    for v in buf.iter_mut() {
        *v = (*v - max).exp();
        z += *v;
    }
    buf.iter_mut().for_each(|v| *v /= z);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Class 0 ~ N(0, 0.1) per coordinate, class 1 ~ N(3, 0.1).
    fn toy(n: usize, len: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n {
                let base = 3.0 * c as f64;
                data.push(
                    (0..len)
                        .map(|j| base + 0.1 * (((i * 7 + j * 13) % 10) as f64 / 10.0 - 0.5))
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    #[test]
    fn diagonal_model_separates_classes() {
        let d = toy(10, 8);
        let m = GaussianModel::fit(&d, CovarianceKind::Diagonal);
        assert_eq!(m.predict(&[0.05; 8]), 0);
        assert_eq!(m.predict(&[2.95; 8]), 1);
    }

    #[test]
    fn posterior_sums_to_one() {
        let d = toy(10, 8);
        for kind in [
            CovarianceKind::Diagonal,
            CovarianceKind::PooledDiagonal,
            CovarianceKind::Full,
        ] {
            let m = GaussianModel::fit(&d, kind);
            let p = m.posterior_prefix(&[1.0; 8]);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{kind:?}");
        }
    }

    #[test]
    fn prefix_likelihood_handles_partial_observation() {
        let d = toy(10, 8);
        let m = GaussianModel::fit(&d, CovarianceKind::Diagonal);
        // Only 3 of 8 points seen.
        let p = m.posterior_prefix(&[0.0, 0.0, 0.1]);
        assert!(p[0] > 0.9);
        // Longer consistent prefix is at least as confident.
        let p_full = m.posterior_prefix(&[0.0; 8]);
        assert!(p_full[0] >= p[0] - 1e-9);
    }

    #[test]
    fn pooled_variant_shares_variances() {
        let d = toy(10, 4);
        let m = GaussianModel::fit(&d, CovarianceKind::PooledDiagonal);
        // Pooled: log-lik difference between classes is linear in x, so the
        // decision boundary is the midpoint 1.5.
        assert_eq!(m.predict(&[1.4; 4]), 0);
        assert_eq!(m.predict(&[1.6; 4]), 1);
    }

    #[test]
    fn full_covariance_model_works_on_prefixes() {
        let d = toy(12, 6);
        let m = GaussianModel::fit(&d, CovarianceKind::Full);
        assert_eq!(m.predict(&[0.0, 0.1]), 0);
        assert_eq!(m.predict(&[3.0, 2.9, 3.1, 3.0, 3.0, 2.95]), 1);
    }

    #[test]
    fn priors_reflect_class_imbalance() {
        let d = UcrDataset::new(
            vec![
                vec![0.0, 0.0],
                vec![0.1, 0.0],
                vec![0.0, 0.1],
                vec![5.0, 5.0],
            ],
            vec![0, 0, 0, 1],
        )
        .unwrap();
        let m = GaussianModel::fit(&d, CovarianceKind::Diagonal);
        assert!((m.class_prior(0) - 0.75).abs() < 1e-12);
        assert!((m.class_prior(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn likelihood_session_matches_batch_exactly() {
        let d = toy(10, 8);
        for kind in [
            CovarianceKind::Diagonal,
            CovarianceKind::PooledDiagonal,
            CovarianceKind::Full,
        ] {
            let m = GaussianModel::fit(&d, kind);
            let mut s = m.likelihood_session();
            // Longer than the fitted length to exercise truncation.
            let probe = [0.1, 2.0, -0.3, 1.0, 0.0, 3.0, 0.2, 0.4, 9.0, 9.0];
            let mut out = [0.0; 2];
            for (i, &x) in probe.iter().enumerate() {
                s.push(x);
                for c in 0..2 {
                    assert_eq!(
                        s.log_likelihoods()[c],
                        m.log_likelihood_prefix(c, &probe[..i + 1]),
                        "{kind:?} class {c} prefix {}",
                        i + 1
                    );
                }
                s.posterior_into(&mut out);
                assert_eq!(
                    out.to_vec(),
                    m.posterior_prefix(&probe[..i + 1]),
                    "{kind:?} prefix {}",
                    i + 1
                );
            }
            s.reset();
            assert!(s.is_empty());
            // A reset session replays identically.
            s.push(probe[0]);
            assert_eq!(
                s.log_likelihoods()[0],
                m.log_likelihood_prefix(0, &probe[..1])
            );
        }
    }

    #[test]
    fn znorm_session_tracks_batch_on_normalized_prefixes() {
        use etsc_core::znorm::znormalize;
        let d = toy(10, 8);
        for kind in [
            CovarianceKind::Diagonal,
            CovarianceKind::PooledDiagonal,
            CovarianceKind::Full,
        ] {
            let m = GaussianModel::fit(&d, kind);
            let mut s = m.znorm_likelihood_session();
            // Longer than the fitted length to exercise truncation; varied
            // scale so the normalization genuinely moves per step.
            let probe = [0.1, 2.0, -0.3, 1.0, 0.0, 3.0, 0.2, 0.4, 9.0, -5.0];
            let mut ll = [0.0; 2];
            let mut post = [0.0; 2];
            for (i, &x) in probe.iter().enumerate() {
                s.push(x);
                let z = znormalize(&probe[..i + 1]);
                s.log_likelihoods_into(&mut ll);
                for c in 0..2 {
                    let re = m.log_likelihood_prefix(c, &z);
                    assert!(
                        (ll[c] - re).abs() <= 1e-9 * (1.0 + re.abs()),
                        "{kind:?} class {c} prefix {}: {} vs {re}",
                        i + 1,
                        ll[c]
                    );
                }
                s.posterior_into(&mut post);
                let re = m.posterior_prefix(&z);
                for c in 0..2 {
                    assert!(
                        (post[c] - re[c]).abs() <= 1e-9,
                        "{kind:?} posterior class {c} prefix {}",
                        i + 1
                    );
                }
            }
            s.reset();
            assert!(s.is_empty());
        }
    }

    #[test]
    fn znorm_session_constant_prefix_matches_zeroed_batch() {
        use etsc_core::znorm::znormalize;
        let d = toy(10, 6);
        for kind in [CovarianceKind::Diagonal, CovarianceKind::Full] {
            let m = GaussianModel::fit(&d, kind);
            let mut s = m.znorm_likelihood_session();
            let mut ll = [0.0; 2];
            for i in 0..4 {
                s.push(7.5); // constant prefix z-normalizes to zeros
                let z = znormalize(&vec![7.5; i + 1]);
                assert!(z.iter().all(|&v| v == 0.0));
                s.log_likelihoods_into(&mut ll);
                for c in 0..2 {
                    let re = m.log_likelihood_prefix(c, &z);
                    assert!(
                        (ll[c] - re).abs() <= 1e-9 * (1.0 + re.abs()),
                        "{kind:?} class {c} prefix {}",
                        i + 1
                    );
                }
            }
        }
    }

    #[test]
    fn posterior_prefix_into_matches_vec_path() {
        let d = toy(10, 8);
        let m = GaussianModel::fit(&d, CovarianceKind::Diagonal);
        let mut out = [0.0; 2];
        m.posterior_prefix_into(&[0.0, 0.1, 0.2], &mut out);
        assert_eq!(out.to_vec(), m.posterior_prefix(&[0.0, 0.1, 0.2]));
    }

    #[test]
    fn snapshot_restore_is_behavior_identical_for_every_kind() {
        let d = toy(10, 8);
        let probe = [0.1, 2.0, -0.3, 1.0, 0.0, 3.0, 0.2, 0.4];
        for kind in [
            CovarianceKind::Diagonal,
            CovarianceKind::PooledDiagonal,
            CovarianceKind::Full,
        ] {
            let m = GaussianModel::fit(&d, kind);
            let back = GaussianModel::restore(&m.snapshot()).unwrap();
            for t in 1..=probe.len() {
                for c in 0..2 {
                    assert_eq!(
                        back.log_likelihood_prefix(c, &probe[..t]),
                        m.log_likelihood_prefix(c, &probe[..t]),
                        "{kind:?} class {c} prefix {t} must be bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn likelihood_session_checkpoint_resumes_bit_identically() {
        let d = toy(10, 8);
        let probe = [0.1, 2.0, -0.3, 1.0, 0.0, 3.0, 0.2, 0.4, 9.0];
        for kind in [CovarianceKind::Diagonal, CovarianceKind::Full] {
            let m = GaussianModel::fit(&d, kind);
            // Uninterrupted reference.
            let mut whole = m.likelihood_session();
            // Interrupted twin: checkpoint mid-prefix, restore, continue.
            let mut head = m.likelihood_session();
            let split = 5;
            for &x in &probe[..split] {
                ScoreSession::push(&mut whole, x);
                ScoreSession::push(&mut head, x);
            }
            let mut enc = Encoder::new();
            ScoreSession::save_state(&head, &mut enc).unwrap();
            let bytes = enc.into_bytes();
            let mut resumed = m.likelihood_session();
            ScoreSession::load_state(&mut resumed, &mut Decoder::new(&bytes)).unwrap();
            for &x in &probe[split..] {
                ScoreSession::push(&mut whole, x);
                ScoreSession::push(&mut resumed, x);
            }
            assert_eq!(
                resumed.log_likelihoods(),
                whole.log_likelihoods(),
                "{kind:?}: restored session must continue bit-identically"
            );
        }
    }

    #[test]
    fn znorm_session_checkpoint_resumes_bit_identically() {
        let d = toy(10, 8);
        let probe = [0.1, 2.0, -0.3, 1.0, 0.0, 3.0, 0.2, 0.4, 9.0, -5.0];
        for kind in [CovarianceKind::Diagonal, CovarianceKind::Full] {
            let m = GaussianModel::fit(&d, kind);
            let mut whole = m.znorm_likelihood_session();
            let mut head = m.znorm_likelihood_session();
            for &x in &probe[..6] {
                ScoreSession::push(&mut whole, x);
                ScoreSession::push(&mut head, x);
            }
            let mut enc = Encoder::new();
            ScoreSession::save_state(&head, &mut enc).unwrap();
            let bytes = enc.into_bytes();
            let mut resumed = m.znorm_likelihood_session();
            ScoreSession::load_state(&mut resumed, &mut Decoder::new(&bytes)).unwrap();
            let mut a = [0.0; 2];
            let mut b = [0.0; 2];
            for &x in &probe[6..] {
                ScoreSession::push(&mut whole, x);
                ScoreSession::push(&mut resumed, x);
                whole.log_likelihoods_into(&mut a);
                resumed.log_likelihoods_into(&mut b);
                assert_eq!(a, b, "{kind:?}: restored znorm session diverged");
            }
        }
    }

    #[test]
    fn session_state_rejects_wrong_model_shape() {
        let d2 = toy(10, 8);
        let d3 = {
            // Three classes: shape mismatch against a two-class state.
            let mut data = Vec::new();
            let mut labels = Vec::new();
            for c in 0..3usize {
                for i in 0..6 {
                    data.push(vec![c as f64 + 0.1 * i as f64; 8]);
                    labels.push(c);
                }
            }
            UcrDataset::new(data, labels).unwrap()
        };
        let m2 = GaussianModel::fit(&d2, CovarianceKind::Diagonal);
        let m3 = GaussianModel::fit(&d3, CovarianceKind::Diagonal);
        let mut s = m2.likelihood_session();
        ScoreSession::push(&mut s, 1.0);
        let mut enc = Encoder::new();
        ScoreSession::save_state(&s, &mut enc).unwrap();
        let bytes = enc.into_bytes();
        let mut wrong = m3.likelihood_session();
        assert!(matches!(
            ScoreSession::load_state(&mut wrong, &mut Decoder::new(&bytes)),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn softmax_of_logs_is_stable() {
        let p = softmax_of_logs(&[-1000.0, -1001.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1]);
        let u = softmax_of_logs(&[f64::NEG_INFINITY, f64::NEG_INFINITY]);
        assert_eq!(u, vec![0.5, 0.5]);
    }
}
