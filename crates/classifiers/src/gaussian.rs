//! Gaussian class-conditional models: diagonal ("naive Bayes") and full
//! covariance, with per-class or pooled (LDA-style) covariances.
//!
//! These are the machinery behind RelClass in `etsc-early`: a prefix of an
//! incoming series is scored under the *marginal* of each class Gaussian
//! over the observed coordinates — for a Gaussian, that marginal is just the
//! leading sub-vector/sub-matrix, so prefix classification is natural.

use etsc_core::{ClassLabel, UcrDataset};

use crate::linalg::{covariance, Cholesky, Matrix};
use crate::{Classifier, ScoreSession};

const LN_2PI: f64 = 1.8378770664093453;

/// Covariance structure for [`GaussianModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CovarianceKind {
    /// Per-class diagonal covariance (Gaussian naive Bayes).
    Diagonal,
    /// Diagonal covariance pooled across classes — the "linear discriminant
    /// Gaussian" (LDG) variant: equal covariances make the decision boundary
    /// linear.
    PooledDiagonal,
    /// Per-class full covariance (QDA). Quadratic cost in the series length;
    /// prefer for short series or snapshot evaluation.
    Full,
}

/// One class's Gaussian parameters.
#[derive(Debug, Clone)]
struct ClassGaussian {
    mean: Vec<f64>,
    /// Diagonal variances (always kept; the Full kind uses it as a fallback
    /// when a prefix submatrix fails to factor).
    var: Vec<f64>,
    /// Full covariance, if requested.
    cov: Option<Matrix>,
    prior: f64,
}

/// Gaussian class-conditional model over fixed-length series, supporting
/// prefix (marginal) likelihoods.
#[derive(Debug, Clone)]
pub struct GaussianModel {
    classes: Vec<ClassGaussian>,
    kind: CovarianceKind,
    series_len: usize,
}

/// Variance floor: keeps constant coordinates (e.g. the flat GunPoint tail)
/// from producing infinite densities.
const VAR_FLOOR: f64 = 1e-6;
/// Ridge added to full covariances before factorization.
const RIDGE: f64 = 1e-3;

impl GaussianModel {
    /// Fit per-class Gaussians of the requested kind on `train`.
    pub fn fit(train: &UcrDataset, kind: CovarianceKind) -> Self {
        let n_classes = train.n_classes();
        let len = train.series_len();
        let n_total = train.len() as f64;

        let mut classes = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            let members: Vec<&[f64]> = train
                .iter()
                .filter(|&(_, l)| l == c)
                .map(|(s, _)| s)
                .collect();
            let count = members.len();
            let mut mean = vec![0.0; len];
            for m in &members {
                for (acc, &v) in mean.iter_mut().zip(*m) {
                    *acc += v;
                }
            }
            if count > 0 {
                mean.iter_mut().for_each(|v| *v /= count as f64);
            }
            let mut var = vec![0.0; len];
            for m in &members {
                for ((acc, &v), &mu) in var.iter_mut().zip(*m).zip(&mean) {
                    let d = v - mu;
                    *acc += d * d;
                }
            }
            if count > 0 {
                var.iter_mut().for_each(|v| *v /= count as f64);
            }
            var.iter_mut().for_each(|v| *v = v.max(VAR_FLOOR));

            let cov = match kind {
                CovarianceKind::Full => Some(covariance(&members, &mean, RIDGE)),
                _ => None,
            };
            classes.push(ClassGaussian {
                mean,
                var,
                cov,
                prior: count as f64 / n_total,
            });
        }

        if kind == CovarianceKind::PooledDiagonal {
            // Pool the diagonal variances, weighted by class priors.
            let mut pooled = vec![0.0; len];
            for cg in &classes {
                for (p, &v) in pooled.iter_mut().zip(&cg.var) {
                    *p += cg.prior * v;
                }
            }
            for cg in &mut classes {
                cg.var.clone_from(&pooled);
            }
        }

        Self {
            classes,
            kind,
            series_len: len,
        }
    }

    /// Series length the model was fitted on.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// Log-likelihood of the prefix `x` (length ≤ series_len) under class
    /// `c`'s marginal Gaussian.
    pub fn log_likelihood_prefix(&self, c: ClassLabel, x: &[f64]) -> f64 {
        let t = x.len().min(self.series_len);
        let cg = &self.classes[c];
        match self.kind {
            CovarianceKind::Diagonal | CovarianceKind::PooledDiagonal => {
                let mut ll = 0.0;
                for i in 0..t {
                    let d = x[i] - cg.mean[i];
                    ll += -0.5 * (LN_2PI + cg.var[i].ln() + d * d / cg.var[i]);
                }
                ll
            }
            CovarianceKind::Full => {
                let cov = cg.cov.as_ref().expect("Full kind stores covariance");
                let sub = cov.leading_principal(t);
                match Cholesky::new(&sub) {
                    Some(ch) => {
                        let diff: Vec<f64> = (0..t).map(|i| x[i] - cg.mean[i]).collect();
                        -0.5 * (t as f64 * LN_2PI + ch.log_det() + ch.quadratic_form(&diff))
                    }
                    None => {
                        // Regularized fallback: diagonal marginal.
                        let mut ll = 0.0;
                        for i in 0..t {
                            let d = x[i] - cg.mean[i];
                            ll += -0.5 * (LN_2PI + cg.var[i].ln() + d * d / cg.var[i]);
                        }
                        ll
                    }
                }
            }
        }
    }

    /// Class posteriors given a prefix: softmax of `log prior + log lik`.
    pub fn posterior_prefix(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.classes.len()];
        self.posterior_prefix_into(x, &mut out);
        out
    }

    /// [`posterior_prefix`](Self::posterior_prefix) into a caller buffer.
    pub fn posterior_prefix_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.classes.len());
        for (c, o) in out.iter_mut().enumerate() {
            *o = self.classes[c].prior.max(1e-12).ln() + self.log_likelihood_prefix(c, x);
        }
        softmax_of_logs_in_place(out);
    }

    /// Class mean (for inspection / conditional completion).
    pub fn class_mean(&self, c: ClassLabel) -> &[f64] {
        &self.classes[c].mean
    }

    /// Class prior.
    pub fn class_prior(&self, c: ClassLabel) -> f64 {
        self.classes[c].prior
    }

    /// Open an incremental per-class log-likelihood accumulator, if the
    /// covariance structure decomposes per coordinate (diagonal or pooled
    /// diagonal). `Full` covariance couples coordinates through the
    /// Cholesky factor of the growing principal submatrix, so it returns
    /// `None` and callers rescore whole prefixes.
    pub fn likelihood_session(&self) -> Option<GaussianLikelihoodSession<'_>> {
        match self.kind {
            CovarianceKind::Diagonal | CovarianceKind::PooledDiagonal => {
                Some(GaussianLikelihoodSession {
                    model: self,
                    ll: vec![0.0; self.classes.len()],
                    len: 0,
                })
            }
            CovarianceKind::Full => None,
        }
    }
}

/// Running per-class log-likelihood of a growing prefix under a diagonal
/// [`GaussianModel`]. After pushing `x1..xt`,
/// [`log_likelihoods`](Self::log_likelihoods)`[c]` equals
/// [`GaussianModel::log_likelihood_prefix`]`(c, &[x1..xt])` exactly — the
/// diagonal likelihood is a per-coordinate sum accumulated in the same
/// order — at O(classes) per sample instead of O(classes × prefix).
#[derive(Debug, Clone)]
pub struct GaussianLikelihoodSession<'a> {
    model: &'a GaussianModel,
    ll: Vec<f64>,
    len: usize,
}

impl GaussianLikelihoodSession<'_> {
    /// Consume one sample; coordinates beyond the fitted series length are
    /// ignored (matching the prefix truncation of the batch path).
    pub fn push(&mut self, x: f64) {
        if self.len < self.model.series_len {
            let i = self.len;
            for (acc, cg) in self.ll.iter_mut().zip(&self.model.classes) {
                let d = x - cg.mean[i];
                *acc += -0.5 * (LN_2PI + cg.var[i].ln() + d * d / cg.var[i]);
            }
        }
        self.len += 1;
    }

    /// Samples consumed (uncapped).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True before the first sample.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Per-class log-likelihood of the samples pushed so far.
    pub fn log_likelihoods(&self) -> &[f64] {
        &self.ll
    }

    /// Posterior over classes, written into `out`: softmax of
    /// `log prior + log likelihood`, exactly as
    /// [`GaussianModel::posterior_prefix`].
    pub fn posterior_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.ll.len());
        for (o, (ll, cg)) in out.iter_mut().zip(self.ll.iter().zip(&self.model.classes)) {
            *o = cg.prior.max(1e-12).ln() + ll;
        }
        softmax_of_logs_in_place(out);
    }

    /// Forget all samples, keeping allocations.
    pub fn reset(&mut self) {
        self.ll.fill(0.0);
        self.len = 0;
    }
}

impl ScoreSession for GaussianLikelihoodSession<'_> {
    fn push(&mut self, x: f64) {
        GaussianLikelihoodSession::push(self, x);
    }

    fn len(&self) -> usize {
        self.len
    }

    fn predict_proba_into(&self, out: &mut [f64]) {
        self.posterior_into(out);
    }

    fn reset(&mut self) {
        GaussianLikelihoodSession::reset(self);
    }
}

impl Classifier for GaussianModel {
    fn n_classes(&self) -> usize {
        self.classes.len()
    }

    fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        self.posterior_prefix(x)
    }

    fn predict_proba_into(&self, x: &[f64], out: &mut [f64]) {
        self.posterior_prefix_into(x, out);
    }

    fn score_session(&self) -> Option<Box<dyn ScoreSession + '_>> {
        self.likelihood_session()
            .map(|s| Box::new(s) as Box<dyn ScoreSession + '_>)
    }
}

/// Numerically stable softmax of log-scores.
pub fn softmax_of_logs(logs: &[f64]) -> Vec<f64> {
    let mut p = logs.to_vec();
    softmax_of_logs_in_place(&mut p);
    p
}

/// [`softmax_of_logs`] in place: `buf` holds log-scores on entry and
/// probabilities on exit.
pub fn softmax_of_logs_in_place(buf: &mut [f64]) {
    let max = buf.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        buf.fill(1.0 / buf.len() as f64);
        return;
    }
    let mut z = 0.0;
    for v in buf.iter_mut() {
        *v = (*v - max).exp();
        z += *v;
    }
    buf.iter_mut().for_each(|v| *v /= z);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Class 0 ~ N(0, 0.1) per coordinate, class 1 ~ N(3, 0.1).
    fn toy(n: usize, len: usize) -> UcrDataset {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n {
                let base = 3.0 * c as f64;
                data.push(
                    (0..len)
                        .map(|j| base + 0.1 * (((i * 7 + j * 13) % 10) as f64 / 10.0 - 0.5))
                        .collect(),
                );
                labels.push(c);
            }
        }
        UcrDataset::new(data, labels).unwrap()
    }

    #[test]
    fn diagonal_model_separates_classes() {
        let d = toy(10, 8);
        let m = GaussianModel::fit(&d, CovarianceKind::Diagonal);
        assert_eq!(m.predict(&[0.05; 8]), 0);
        assert_eq!(m.predict(&[2.95; 8]), 1);
    }

    #[test]
    fn posterior_sums_to_one() {
        let d = toy(10, 8);
        for kind in [
            CovarianceKind::Diagonal,
            CovarianceKind::PooledDiagonal,
            CovarianceKind::Full,
        ] {
            let m = GaussianModel::fit(&d, kind);
            let p = m.posterior_prefix(&[1.0; 8]);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{kind:?}");
        }
    }

    #[test]
    fn prefix_likelihood_handles_partial_observation() {
        let d = toy(10, 8);
        let m = GaussianModel::fit(&d, CovarianceKind::Diagonal);
        // Only 3 of 8 points seen.
        let p = m.posterior_prefix(&[0.0, 0.0, 0.1]);
        assert!(p[0] > 0.9);
        // Longer consistent prefix is at least as confident.
        let p_full = m.posterior_prefix(&[0.0; 8]);
        assert!(p_full[0] >= p[0] - 1e-9);
    }

    #[test]
    fn pooled_variant_shares_variances() {
        let d = toy(10, 4);
        let m = GaussianModel::fit(&d, CovarianceKind::PooledDiagonal);
        // Pooled: log-lik difference between classes is linear in x, so the
        // decision boundary is the midpoint 1.5.
        assert_eq!(m.predict(&[1.4; 4]), 0);
        assert_eq!(m.predict(&[1.6; 4]), 1);
    }

    #[test]
    fn full_covariance_model_works_on_prefixes() {
        let d = toy(12, 6);
        let m = GaussianModel::fit(&d, CovarianceKind::Full);
        assert_eq!(m.predict(&[0.0, 0.1]), 0);
        assert_eq!(m.predict(&[3.0, 2.9, 3.1, 3.0, 3.0, 2.95]), 1);
    }

    #[test]
    fn priors_reflect_class_imbalance() {
        let d = UcrDataset::new(
            vec![
                vec![0.0, 0.0],
                vec![0.1, 0.0],
                vec![0.0, 0.1],
                vec![5.0, 5.0],
            ],
            vec![0, 0, 0, 1],
        )
        .unwrap();
        let m = GaussianModel::fit(&d, CovarianceKind::Diagonal);
        assert!((m.class_prior(0) - 0.75).abs() < 1e-12);
        assert!((m.class_prior(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn likelihood_session_matches_batch_exactly() {
        let d = toy(10, 8);
        for kind in [CovarianceKind::Diagonal, CovarianceKind::PooledDiagonal] {
            let m = GaussianModel::fit(&d, kind);
            let mut s = m.likelihood_session().expect("diagonal is incremental");
            // Longer than the fitted length to exercise truncation.
            let probe = [0.1, 2.0, -0.3, 1.0, 0.0, 3.0, 0.2, 0.4, 9.0, 9.0];
            let mut out = [0.0; 2];
            for (i, &x) in probe.iter().enumerate() {
                s.push(x);
                for c in 0..2 {
                    assert_eq!(
                        s.log_likelihoods()[c],
                        m.log_likelihood_prefix(c, &probe[..i + 1]),
                        "{kind:?} class {c} prefix {}",
                        i + 1
                    );
                }
                s.posterior_into(&mut out);
                assert_eq!(out.to_vec(), m.posterior_prefix(&probe[..i + 1]));
            }
            s.reset();
            assert!(s.is_empty());
        }
        let full = GaussianModel::fit(&d, CovarianceKind::Full);
        assert!(
            full.likelihood_session().is_none(),
            "Full is not incremental"
        );
    }

    #[test]
    fn posterior_prefix_into_matches_vec_path() {
        let d = toy(10, 8);
        let m = GaussianModel::fit(&d, CovarianceKind::Diagonal);
        let mut out = [0.0; 2];
        m.posterior_prefix_into(&[0.0, 0.1, 0.2], &mut out);
        assert_eq!(out.to_vec(), m.posterior_prefix(&[0.0, 0.1, 0.2]));
    }

    #[test]
    fn softmax_of_logs_is_stable() {
        let p = softmax_of_logs(&[-1000.0, -1001.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1]);
        let u = softmax_of_logs(&[f64::NEG_INFINITY, f64::NEG_INFINITY]);
        assert_eq!(u, vec![0.5, 0.5]);
    }
}
