#![warn(missing_docs)]

//! # etsc
//!
//! Early time series classification (ETSC) algorithms, their substrates,
//! streaming deployment, and meaningfulness audits — a from-scratch Rust
//! reproduction of Wu, Der & Keogh, *"When is Early Classification of Time
//! Series Meaningful?"* (ICDE 2022).
//!
//! This crate is a facade: each module re-exports one workspace crate.
//!
//! * [`core`] — time series model, z-normalization, ED/DTW distances with
//!   lower bounds, subsequence nearest-neighbor search, stream events.
//! * [`datasets`] — seeded synthetic generators standing in for every
//!   dataset the paper uses (GunPoint, spoken words, ECG, EOG, EPG, random
//!   walks, chicken accelerometry).
//! * [`classifiers`] — classic whole-series classification: kNN, centroids,
//!   Gaussian models, SFA / WEASEL-lite, logistic regression, evaluation.
//! * [`early`] — the ETSC algorithms (ECTS, RelaxedECTS, EDSC-CHE/KDE,
//!   RelClass/LDG, TEASER, ECDIRE, stopping rules, cost-aware triggers,
//!   template matching) behind the [`early::EarlyClassifier`] trait —
//!   stateless [`early::EarlyClassifier::decide`] for offline evaluation,
//!   incremental [`early::DecisionSession`]s for streaming — with an
//!   explicit prefix-normalization policy at evaluation time.
//! * [`stream`] — anchored stream monitors, alarm scoring, intervention
//!   cost models, and Appendix A's well-posed alternatives.
//! * [`serve`] — the sharded multi-stream serving runtime
//!   ([`serve::Runtime`]): deterministic stream → shard routing, batched
//!   ingestion with explicit backpressure, live rebalancing by anchor
//!   migration, and registry-backed crash recovery.
//! * [`net`] — the cross-node layer: a zero-dependency framed wire
//!   protocol over TCP/Unix sockets, a federated node runtime
//!   ([`net::Node`] / [`net::NetClient`]) serving a [`serve::Runtime`]
//!   behind a socket, and a consistent-hash cluster router
//!   ([`net::Cluster`]) with two-phase cross-node stream migration.
//! * [`audit`] — the Section 6 meaningfulness criteria: costs,
//!   prefix/inclusion/homophone confusability, priors, and normalization
//!   sensitivity, combined into [`audit::MeaningfulnessReport`].
//! * [`persist`] — versioned binary snapshots for fitted models
//!   ([`persist::Persist`]), checkpoint/restore for in-flight sessions, and
//!   a file-backed [`persist::ModelRegistry`] for deploy-style workflows.
//!
//! ## Example
//!
//! ```
//! use etsc::datasets::gunpoint::{self, GunPointConfig};
//! use etsc::early::ects::{Ects, EctsConfig};
//! use etsc::early::metrics::{evaluate, PrefixPolicy};
//!
//! let mut train = gunpoint::generate(10, &GunPointConfig::default(), 1);
//! let mut test = gunpoint::generate(10, &GunPointConfig::default(), 2);
//! train.znormalize();
//! test.znormalize();
//!
//! let ects = Ects::fit(&train, &EctsConfig::default());
//! let result = evaluate(&ects, &test, PrefixPolicy::Oracle);
//! assert!(result.accuracy() > 0.5);
//! assert!(result.earliness() <= 1.0);
//! ```
//!
//! ## Streaming sessions
//!
//! Deployment is streaming-first: instead of re-deciding on every grown
//! prefix (which makes each new sample cost O(prefix)), open a stateful
//! [`early::DecisionSession`] and push samples as they arrive. Sessions
//! keep running state — running sums for online z-normalization,
//! incremental partial Euclidean sums for the 1NN models, per-class
//! likelihood accumulators (closed-form under per-prefix renormalization;
//! see the running-sums algebra on [`early::SessionNorm`]), per-checkpoint
//! caches for the ensemble models — so the amortized per-sample cost is
//! O(1) in the prefix length, and (under [`early::SessionNorm::Raw`])
//! decisions reproduce `decide` exactly. No built-in algorithm falls back
//! to whole-prefix replay under either norm. [`stream::StreamMonitor`]
//! drives one session per candidate anchor, and [`early::MultiSession`]
//! services many concurrent streams over one fitted model.
//!
//! ```
//! use etsc::datasets::gunpoint::{self, GunPointConfig};
//! use etsc::early::ects::{Ects, EctsConfig};
//! use etsc::early::{EarlyClassifier, SessionNorm};
//! use etsc::stream::{StreamMonitor, StreamMonitorConfig, StreamNorm};
//!
//! let mut train = gunpoint::generate(10, &GunPointConfig::default(), 1);
//! train.znormalize();
//! let ects = Ects::fit(&train, &EctsConfig::default());
//!
//! // One stream, driven by hand: push samples, read decisions.
//! let mut session = ects.session(SessionNorm::Raw);
//! let probe = train.series(0).to_vec();
//! let mut first_commit = None;
//! for (i, &x) in probe.iter().enumerate() {
//!     if session.push(x).is_predict() {
//!         first_commit = Some(i + 1);
//!         break;
//!     }
//! }
//! let len = first_commit.expect("a training exemplar matches itself");
//! assert!(len <= probe.len());
//! // Incremental and stateless paths agree: the prefix that committed
//! // decides, every shorter prefix waits.
//! assert!(ects.decide(&probe[..len]).is_predict());
//!
//! // Honest deployment normalization: a PerPrefix session z-normalizes
//! // with past-only statistics, folding each prefix-wide mean/std change
//! // into closed-form running-sum updates instead of replaying the
//! // prefix. It tracks the renormalize-and-decide reference.
//! let raw_probe: Vec<f64> = probe.iter().map(|&x| 40.0 + 3.0 * x).collect();
//! let mut honest = ects.session(SessionNorm::PerPrefix);
//! let mut committed_at = None;
//! for (i, &x) in raw_probe.iter().enumerate() {
//!     if honest.push(x).is_predict() {
//!         committed_at = Some(i + 1);
//!         break;
//!     }
//! }
//! let t = committed_at.expect("a shifted/scaled exemplar still matches");
//! let znormed = etsc::core::znorm::znormalize(&raw_probe[..t]);
//! assert!(ects.decide(&znormed).is_predict());
//!
//! // A monitor runs sessions over an unbounded stream, one per anchor.
//! let mut monitor = StreamMonitor::new(
//!     &ects,
//!     StreamMonitorConfig {
//!         anchor_stride: 4,
//!         norm: StreamNorm::PerPrefix,
//!         refractory: 50,
//!     },
//! );
//! let background = vec![0.0; 500];
//! let alarms = monitor.run(&background);
//! assert!(alarms.len() <= 500);
//! ```
//!
//! ## Persistence & checkpointing
//!
//! Fitted models and in-flight sessions live in RAM; [`persist`] makes them
//! durable. Every fitted model implements [`persist::Persist`]
//! (`snapshot() -> Vec<u8>` / `restore(&[u8])` over a zero-dependency,
//! versioned, checksummed little-endian format — no serde), and every
//! built-in [`early::DecisionSession`] supports checkpointing via
//! [`early::checkpoint_session`] / [`early::resume_session`]: the restored
//! session continues **bit-identically** to one that was never interrupted
//! (`Raw` exactly; `PerPrefix` resumes its running-sums algebra from the
//! same IEEE bits, so the documented ~1e-9 tolerance still refers only to
//! the comparison against batch renormalization). At the deployment level,
//! [`stream::StreamMonitor::snapshot_anchors`] /
//! [`stream::StreamMonitor::resume_anchors`] drain and rehydrate every
//! in-flight anchor — refractory clock included — across a restart, and
//! [`persist::ModelRegistry`] stores snapshots as named files.
//!
//! ```
//! use etsc::core::UcrDataset;
//! use etsc::early::ects::{Ects, EctsConfig};
//! use etsc::early::{checkpoint_session, resume_session, EarlyClassifier, SessionNorm};
//! use etsc::persist::ModelRegistry;
//!
//! // Fit on a tiny two-class problem and save the model by name.
//! let train = UcrDataset::new(
//!     (0..8)
//!         .map(|i| {
//!             let level = if i % 2 == 0 { 0.0 } else { 3.0 };
//!             (0..16).map(|j| level + 0.05 * ((i * 5 + j) % 7) as f64).collect()
//!         })
//!         .collect(),
//!     vec![0, 1, 0, 1, 0, 1, 0, 1],
//! )
//! .unwrap();
//! let ects = Ects::fit(&train, &EctsConfig::default());
//! let dir = std::env::temp_dir().join(format!("etsc-doc-{}", std::process::id()));
//! let registry = ModelRegistry::open(&dir).unwrap();
//! registry.save("ects", &ects).unwrap();
//!
//! // Drive a stream halfway, checkpoint the session, and "restart".
//! let probe: Vec<f64> = train.series(1).to_vec();
//! let mut session = ects.session(SessionNorm::Raw);
//! let reference: Vec<_> = probe.iter().map(|&x| session.push(x)).collect();
//! let mut half = ects.session(SessionNorm::Raw);
//! for &x in &probe[..8] {
//!     half.push(x);
//! }
//! let checkpoint = checkpoint_session(half.as_ref()).unwrap();
//!
//! // New process: reload the model, resume the session, continue. The
//! // decisions are bit-identical to the uninterrupted run.
//! let restored: Ects = registry.load("ects").unwrap();
//! let mut resumed = resume_session(&restored, SessionNorm::Raw, &checkpoint).unwrap();
//! for (t, &x) in probe[8..].iter().enumerate() {
//!     assert_eq!(resumed.push(x), reference[8 + t]);
//! }
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```
//!
//! ## Serving & sharding
//!
//! [`serve::Runtime`] is the deployment-scale layer over all of the above:
//! it owns many concurrent streams, routes each to one of N shards by
//! hashing its id ([`core::hash`]), and services every shard's queue on its
//! own worker thread during a [`drain`](serve::Runtime::drain)
//! (`ETSC_THREADS`, or the explicit [`serve::RuntimeConfig::threads`]
//! override). Ingestion is batched with an explicit
//! [`serve::OverflowPolicy`] — apply backpressure in place, or reject the
//! batch atomically with a typed error; nothing panics, nothing is silently
//! dropped. Per-stream alarm sequences are **invariant under shard count,
//! worker count, and mid-run rebalancing**:
//! [`rebalance`](serve::Runtime::rebalance) migrates re-routed streams
//! between workers as `(model name, anchor snapshot)` pairs over the
//! [`persist`] byte path, refractory clocks included, and
//! [`checkpoint`](serve::Runtime::checkpoint) /
//! [`recover`](serve::Runtime::recover) carry the whole runtime across a
//! crash the same way. [`stats`](serve::Runtime::stats) reports per-shard
//! and lifetime counters.
//!
//! ```
//! use etsc::core::UcrDataset;
//! use etsc::early::ects::{Ects, EctsConfig};
//! use etsc::persist::ModelRegistry;
//! use etsc::serve::{Record, Runtime, RuntimeConfig};
//! use etsc::stream::{StreamMonitorConfig, StreamNorm};
//!
//! // Fit a model on a tiny two-class problem.
//! let train = UcrDataset::new(
//!     (0..8)
//!         .map(|i| {
//!             let level = if i % 2 == 0 { 0.0 } else { 3.0 };
//!             (0..16).map(|j| level + 0.05 * ((i * 5 + j) % 7) as f64).collect()
//!         })
//!         .collect(),
//!     vec![0, 1, 0, 1, 0, 1, 0, 1],
//! )
//! .unwrap();
//! let ects = Ects::fit(&train, &EctsConfig::default());
//!
//! // Build a 4-shard runtime and ingest interleaved batches from many
//! // streams (unknown stream ids auto-open).
//! let cfg = RuntimeConfig {
//!     shards: 4,
//!     monitor: StreamMonitorConfig {
//!         anchor_stride: 4,
//!         norm: StreamNorm::Raw,
//!         refractory: 20,
//!     },
//!     model_name: "ects".to_string(),
//!     ..RuntimeConfig::default()
//! };
//! let mut rt = Runtime::new(&ects, cfg.clone()).unwrap();
//! let probe: Vec<f64> = train.series(1).to_vec();
//! for t in 0..8 {
//!     let batch: Vec<Record> = (0..6).map(|id| Record::new(id, probe[t])).collect();
//!     rt.ingest(&batch).unwrap();
//! }
//!
//! // Live rebalance: stream state migrates between workers as anchor
//! // snapshots; alarm sequences are unchanged.
//! rt.rebalance(7).unwrap();
//! assert_eq!(rt.shard_count(), 7);
//! assert_eq!(rt.stream_count(), 6);
//!
//! // Checkpoint the whole runtime (model + every stream's anchors) ...
//! let dir = std::env::temp_dir().join(format!("etsc-serve-doc-{}", std::process::id()));
//! let registry = ModelRegistry::open(&dir).unwrap();
//! rt.checkpoint(&registry).unwrap();
//! drop(rt);
//!
//! // ... and recover it in a "new process": reload the model by name,
//! // rebuild the runtime, keep serving. Decisions continue exactly.
//! let restored: Ects = registry.load("ects").unwrap();
//! let mut recovered = Runtime::recover(&restored, &dir, "ects").unwrap();
//! assert_eq!(recovered.stream_count(), 6);
//! for t in 8..16 {
//!     let batch: Vec<Record> = (0..6).map(|id| Record::new(id, probe[t])).collect();
//!     recovered.ingest(&batch).unwrap();
//! }
//! let alarms = recovered.drain();
//! assert!(alarms.len() <= 6 * 16);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```
//!
//! ## Cross-node serving
//!
//! [`net`] removes the process boundary: a [`net::Node`] serves a
//! [`serve::Runtime`] over a framed, versioned, checksummed wire protocol
//! (blocking `std::net`, no async runtime), and a [`net::NetClient`]
//! exposes the same ingest/drain/checkpoint surface over the socket —
//! both implement [`serve::StreamService`], so drivers are generic over
//! where the monitors live. Above single nodes, [`net::Cluster`]
//! consistent-hashes stream ids over node endpoints and migrates live
//! streams between machines with the same two-phase snapshot discipline
//! rebalancing uses. Per-stream alarm sequences are invariant under all
//! of it. Every malformed frame, remote overflow, or misconfiguration
//! surfaces as a typed [`net::WireError`] — never a panic, never a
//! silently dropped connection.
//!
//! ```
//! use etsc::core::UcrDataset;
//! use etsc::early::ects::{Ects, EctsConfig};
//! use etsc::net::{Endpoint, Listener, NetClient, Node, NodeConfig};
//! use etsc::serve::{Record, Runtime, RuntimeConfig};
//! use etsc::stream::{StreamMonitorConfig, StreamNorm};
//!
//! // Fit a model and wrap a runtime in a node on a loopback socket.
//! let train = UcrDataset::new(
//!     (0..8)
//!         .map(|i| {
//!             let level = if i % 2 == 0 { 0.0 } else { 3.0 };
//!             (0..16).map(|j| level + 0.05 * ((i * 5 + j) % 7) as f64).collect()
//!         })
//!         .collect(),
//!     vec![0, 1, 0, 1, 0, 1, 0, 1],
//! )
//! .unwrap();
//! let ects = Ects::fit(&train, &EctsConfig::default());
//! let cfg = RuntimeConfig {
//!     shards: 2,
//!     monitor: StreamMonitorConfig {
//!         anchor_stride: 4,
//!         norm: StreamNorm::Raw,
//!         refractory: 20,
//!     },
//!     model_name: "ects".to_string(),
//!     ..RuntimeConfig::default()
//! };
//! let node = Node::new(Runtime::new(&ects, cfg).unwrap(), NodeConfig::default());
//! let listener = Listener::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).unwrap();
//! let endpoint = listener.local_endpoint().unwrap();
//!
//! std::thread::scope(|s| {
//!     let server = s.spawn(|| node.serve(listener));
//!
//!     // A client across the wire has the Runtime surface: ingest
//!     // interleaved multi-stream batches, drain alarms, read metrics.
//!     let mut client = NetClient::connect(&endpoint).unwrap();
//!     let probe: Vec<f64> = train.series(1).to_vec();
//!     for t in 0..16 {
//!         let batch: Vec<Record> =
//!             (0..4).map(|id| Record::new(id, probe[t % probe.len()])).collect();
//!         client.ingest(&batch).unwrap();
//!     }
//!     let alarms = client.drain().unwrap();
//!     assert!(alarms.len() <= 4 * 16);
//!     assert_eq!(client.stream_count().unwrap(), 4);
//!     let metrics = client.stats_prometheus().unwrap();
//!     assert!(metrics.contains("etsc_serve_ingested_total 64"));
//!
//!     node.stop();
//!     server.join().unwrap().unwrap();
//! });
//! ```
//!
//! ## Observability
//!
//! [`core::metrics`] is the telemetry plane everything above reports
//! into: lock-free atomic counters and gauges, fixed-bucket log₂ latency
//! [histograms](core::metrics::Histogram) (O(1) wait-free recording,
//! mergeable snapshots, p50/p99/p999 readout), and an injectable
//! [`Clock`](core::metrics::Clock) — monotonic in production, manual in
//! tests, or disabled to turn every timing site into a no-op. Recording
//! never touches alarm bytes: the same traffic produces bit-identical
//! alarm sequences under any clock mode (`tests/metrics_e2e.rs` enforces
//! this). The serve runtime times drain cycles, sampled pushes,
//! checkpoint pauses, and migrations; the net layer adds per-message-kind
//! request service times, client RTTs, retry backoff, and failover
//! probes; all of it renders as Prometheus text exposition.
//!
//! ```
//! use etsc::core::metrics::Clock;
//! use etsc::core::UcrDataset;
//! use etsc::early::ects::{Ects, EctsConfig};
//! use etsc::serve::{Record, Runtime, RuntimeConfig};
//!
//! let train = UcrDataset::new(
//!     (0..8)
//!         .map(|i| {
//!             let level = if i % 2 == 0 { 0.0 } else { 3.0 };
//!             (0..16).map(|j| level + 0.05 * ((i * 5 + j) % 7) as f64).collect()
//!         })
//!         .collect(),
//!     vec![0, 1, 0, 1, 0, 1, 0, 1],
//! )
//! .unwrap();
//! let ects = Ects::fit(&train, &EctsConfig::default());
//! let mut rt = Runtime::new(
//!     &ects,
//!     RuntimeConfig { shards: 2, ..RuntimeConfig::default() },
//! )
//! .unwrap();
//! rt.set_clock(Clock::monotonic()); // the default; Clock::disabled() opts out
//!
//! for t in 0..32 {
//!     let batch: Vec<Record> = (0..4).map(|id| Record::new(id, t as f64)).collect();
//!     rt.ingest(&batch).unwrap();
//!     if (t + 1) % 8 == 0 {
//!         rt.drain();
//!     }
//! }
//!
//! // Quantiles read straight off the runtime's own histograms…
//! let stats = rt.stats();
//! assert!(stats.drain_cycle_ns.count() >= 4);
//! assert!(stats.drain_cycle_ns.p99() >= stats.drain_cycle_ns.p50());
//!
//! // …and the same snapshots render as Prometheus text exposition.
//! let text = stats.render_prometheus();
//! assert!(text.contains("etsc_serve_ingested_total 128"));
//! assert!(text.contains("# TYPE etsc_serve_drain_cycle_ns histogram"));
//! assert!(text.contains("etsc_serve_drain_cycle_ns_bucket{le=\"+Inf\"}"));
//! ```
//!
//! ## Tracing
//!
//! [`core::trace`] adds the causal layer on top of the metrics plane: a
//! [`Tracer`](core::trace::Tracer) is a cloneable handle over a bounded
//! wait-free span ring and a typed structured event log, with
//! deterministic span ids and the same injectable
//! [`Clock`](core::metrics::Clock) (disabled clock = every call a no-op).
//! A 16-byte [`TraceContext`](core::trace::TraceContext) — trace id plus
//! parent span — rides the wire protocol (v3) so **one trace id follows a
//! record across processes**: the cluster client opens a `ClientIngest`
//! root and a `ClientSend` per node, the node continues it as
//! `NodeIngest`, the runtime as `ShardEnqueue` → `ShardDrain` →
//! `AlarmEmit`, and failure handling stays inside the same trace
//! (`Migration`, `Redelivery` after a failover, plus
//! failover/retry/backoff events). Retained spans export as Chrome
//! `trace_event` JSON (load in `chrome://tracing` or Perfetto) — locally
//! via [`Runtime::export_trace`](serve::Runtime::export_trace), remotely
//! via [`net::Cluster::fetch_traces`] — and events render as text or JSON
//! lines. Tracing never touches alarm bytes: the same traffic produces
//! bit-identical alarm sequences with tracing on, off, or under a manual
//! clock (`tests/trace_e2e.rs` enforces this across a three-node cluster
//! with a live migration and a failover), and `bench_serve` holds the
//! recording path under the same 5% budget as telemetry.
//!
//! ```
//! use etsc::core::metrics::Clock;
//! use etsc::core::trace::{SpanKind, TraceContext, Tracer, TracerConfig};
//! use etsc::core::UcrDataset;
//! use etsc::early::ects::{Ects, EctsConfig};
//! use etsc::serve::{Record, Runtime, RuntimeConfig};
//!
//! let train = UcrDataset::new(
//!     (0..8)
//!         .map(|i| {
//!             let level = if i % 2 == 0 { 0.0 } else { 3.0 };
//!             (0..16).map(|j| level + 0.05 * ((i * 5 + j) % 7) as f64).collect()
//!         })
//!         .collect(),
//!     vec![0, 1, 0, 1, 0, 1, 0, 1],
//! )
//! .unwrap();
//! let ects = Ects::fit(&train, &EctsConfig::default());
//! let mut rt = Runtime::new(
//!     &ects,
//!     RuntimeConfig { shards: 2, ..RuntimeConfig::default() },
//! )
//! .unwrap();
//!
//! // A tracer over a manual clock: deterministic timestamps. Cloning
//! // shares the buffers, so every layer records into one span set.
//! let tracer = Tracer::new(TracerConfig {
//!     clock: Clock::manual(),
//!     ..TracerConfig::default()
//! });
//! rt.set_tracer(tracer.clone());
//!
//! // Open a root span (exactly what the net client does per batch) and
//! // hand its context to the runtime: enqueue and the next drain record
//! // ShardEnqueue → ShardDrain (→ AlarmEmit per alarm) under the root.
//! let trace_id = tracer.new_trace_id();
//! let root = tracer.alloc_span_id();
//! let started = tracer.start();
//! for t in 0..8 {
//!     let batch: Vec<Record> = (0..4).map(|id| Record::new(id, t as f64)).collect();
//!     let ctx = TraceContext { trace_id, parent_span: root };
//!     rt.ingest_ctx(&batch, Some(ctx)).unwrap();
//!     tracer.clock().advance_ns(1_000);
//! }
//! rt.drain();
//! tracer.span_with_id(root, SpanKind::ClientIngest, trace_id, 0, started, 32);
//!
//! // Every span carries the trace id, parented back to the root...
//! let spans = tracer.spans();
//! assert!(spans.iter().any(|s| s.kind == SpanKind::ShardEnqueue));
//! assert!(spans.iter().any(|s| s.kind == SpanKind::ShardDrain));
//! assert!(spans.iter().all(|s| s.trace_id == trace_id));
//! assert_eq!(tracer.dropped_spans(), 0);
//!
//! // ...and the retained set exports as Chrome trace_event JSON.
//! let json = rt.export_trace("doc");
//! assert!(json.contains("\"traceEvents\""));
//! ```
//!
//! ## Fault tolerance
//!
//! The wire layer assumes the network fails and the serving layer assumes
//! nodes die. Requests carry a retry schedule ([`net::RetryPolicy`]:
//! capped exponential backoff with deterministic jitter), and every
//! [`net::WireError`] classifies itself — retryable transport fault,
//! known-unapplied rejection ([`busy / queue-full replies carry a
//! retry-after hint`](net::WireError::retry_after)), or permanent. Ingest
//! retries are made safe by idempotency tags: a client configured with a
//! nonzero [`net::ClientConfig::client_id`] tags each batch with a
//! sequence number, and a node that already applied it answers the retry
//! with a duplicate ack instead of applying it twice. Above that,
//! a [`net::Supervisor`] heartbeats every node in a cluster, declares a
//! node dead after consecutive missed probes, recovers its streams from
//! its registry checkpoint, and imports them into the survivors — while a
//! [`serve::DedupCursor`] at the alarm sink turns the checkpoint's
//! at-least-once re-delivery back into exactly-once delivery. All of it is
//! testable deterministically: a [`net::FaultInjector`] scripted by a
//! seeded [`net::FaultPlan`] injects refused connects, mid-frame
//! disconnects, read stalls, corrupted frames, and asymmetric partitions
//! underneath a real client, with no real clocks or entropy involved.
//!
//! ```
//! use std::time::Duration;
//!
//! use etsc::core::UcrDataset;
//! use etsc::early::ects::{Ects, EctsConfig};
//! use etsc::net::{
//!     ClientConfig, Cluster, Endpoint, Listener, Node, NodeConfig, RetryPolicy, Supervisor,
//!     SupervisorConfig,
//! };
//! use etsc::persist::ModelRegistry;
//! use etsc::serve::{DedupCursor, Record, Runtime, RuntimeConfig};
//! use etsc::stream::{StreamMonitorConfig, StreamNorm};
//!
//! let train = UcrDataset::new(
//!     (0..8)
//!         .map(|i| {
//!             let level = if i % 2 == 0 { 0.0 } else { 3.0 };
//!             (0..16).map(|j| level + 0.05 * ((i * 5 + j) % 7) as f64).collect()
//!         })
//!         .collect(),
//!     vec![0, 1, 0, 1, 0, 1, 0, 1],
//! )
//! .unwrap();
//! let ects = Ects::fit(&train, &EctsConfig::default());
//! let cfg = RuntimeConfig {
//!     monitor: StreamMonitorConfig {
//!         anchor_stride: 4,
//!         norm: StreamNorm::Raw,
//!         refractory: 20,
//!     },
//!     model_name: "ects".to_string(),
//!     ..RuntimeConfig::default()
//! };
//!
//! // Two nodes; node 0 checkpoints every batch into a registry the
//! // supervisor can reach — that checkpoint is what failover recovers.
//! let root = std::env::temp_dir().join(format!("etsc-ft-doc-{}", std::process::id()));
//! let dirs = vec![root.join("node0"), root.join("node1")];
//! let mut rt0 = Runtime::new(&ects, cfg.clone()).unwrap();
//! rt0.enable_checkpoints(ModelRegistry::open(&dirs[0]).unwrap(), 1).unwrap();
//! let node0 = Node::new(rt0, NodeConfig::default());
//! let node1 = Node::new(Runtime::new(&ects, cfg).unwrap(), NodeConfig::default());
//! let (l0, l1) = (
//!     Listener::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).unwrap(),
//!     Listener::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).unwrap(),
//! );
//! let (e0, e1) = (l0.local_endpoint().unwrap(), l1.local_endpoint().unwrap());
//!
//! std::thread::scope(|s| {
//!     let s0 = s.spawn(|| node0.serve(l0));
//!     let s1 = s.spawn(|| node1.serve(l1));
//!
//!     // Fail fast against a dead node, and tag batches (nonzero id) so
//!     // ingest retries are idempotent.
//!     let client_cfg = ClientConfig {
//!         request_timeout: Duration::from_millis(200),
//!         retry: RetryPolicy {
//!             max_attempts: 2,
//!             base_delay: Duration::from_millis(1),
//!             max_delay: Duration::from_millis(5),
//!             jitter_seed: 7,
//!         },
//!         client_id: 1,
//!         ..ClientConfig::default()
//!     };
//!     let mut cluster = Cluster::connect_with(&[e0, e1], client_cfg).unwrap();
//!     for id in 0..4 {
//!         cluster.open_stream(id).unwrap();
//!     }
//!     cluster.migrate(&[0, 1], 0).unwrap();
//!     cluster.migrate(&[2, 3], 1).unwrap();
//!
//!     // Live traffic; alarms pass through a dedup cursor at the sink.
//!     let mut sink = DedupCursor::default();
//!     let probe: Vec<f64> = train.series(1).to_vec();
//!     for t in 0..8 {
//!         let batch: Vec<Record> = (0..4).map(|id| Record::new(id, probe[t])).collect();
//!         cluster.ingest(&batch).unwrap();
//!     }
//!     let _ = sink.filter(cluster.drain().unwrap());
//!
//!     // Kill node 0 for real. The next ingest errors once; the lost
//!     // sub-batch is stashed, the survivor's half was applied.
//!     node0.stop();
//!     s0.join().unwrap().unwrap();
//!     let batch: Vec<Record> = (0..4).map(|id| Record::new(id, probe[8])).collect();
//!     assert!(cluster.ingest(&batch).is_err());
//!
//!     // One missed heartbeat declares it dead; its streams come back on
//!     // the survivor, recovered from the checkpoint.
//!     let sup_cfg = SupervisorConfig {
//!         miss_threshold: 1,
//!         ..SupervisorConfig::new(dirs.clone(), "ects")
//!     };
//!     let mut sup: Supervisor<Ects> = Supervisor::new(sup_cfg);
//!     let reports = sup.tick(&mut cluster).unwrap();
//!     assert_eq!(reports.len(), 1);
//!     assert_eq!(reports[0].node, 0);
//!     cluster.apply_failover(&reports[0]).unwrap();
//!
//!     // Checkpoint recovery re-delivers alarms at-least-once; the sink's
//!     // cursor drops anything it has already seen — exactly-once overall.
//!     let _ = sink.filter(reports[0].redelivered.clone());
//!
//!     // Every stream is served again and traffic flows, with the stashed
//!     // batch settled.
//!     assert_eq!(cluster.stream_count().unwrap(), 4);
//!     assert_eq!(cluster.pending_batches(), 0);
//!     let batch: Vec<Record> = (0..4).map(|id| Record::new(id, probe[9])).collect();
//!     cluster.ingest(&batch).unwrap();
//!
//!     node1.stop();
//!     s1.join().unwrap().unwrap();
//! });
//! # let _ = std::fs::remove_dir_all(&root);
//! ```
//!
//! ## Subsequence search and the threading model
//!
//! Long-stream search (the Fig 5 homophone hunt, Fig 8's 500 dustbathing
//! neighbors) runs on [`core::nn::BatchProfile`]: build the engine once per
//! haystack — a single cumulative-statistics pass
//! ([`core::nn::CumStats`]) makes every window's mean/std O(1) — then issue
//! as many queries as you like. Per query the only O(m) work left is a
//! blocked, SIMD-dispatched dot product;
//! [`nearest`](core::nn::BatchProfile::nearest) additionally prunes windows
//! that cannot beat the best match so far via the dot-product identity.
//! The free functions ([`core::nn::distance_profile`], …) wrap a throwaway
//! engine for one-shot calls, and
//! [`core::nn::select_within`] / [`core::nn::select_top_k`] re-select
//! matches from an existing profile so threshold sweeps don't rescan.
//!
//! Heavy stages fan out across worker threads via [`core::parallel`] — the
//! profile engine (haystack chunks), the ECTS pairwise fit, TEASER's
//! per-snapshot fits, batch evaluation, and multi-anchor stream servicing.
//! The worker count comes from the `ETSC_THREADS` environment variable
//! (default: all cores; `1` = fully serial), and parallelism is a pure
//! performance knob: work is split into contiguous chunks and stitched in
//! input order, every per-item computation is identical to the serial
//! loop, and there are no atomics or reduction-order races — results are
//! **bit-identical at any thread count** (the `parallel_equivalence`
//! integration tests pin this at 1, 2, and 7 workers).
//!
//! ```
//! use etsc::core::nn::BatchProfile;
//! use etsc::core::parallel;
//!
//! // One engine, many queries: the haystack statistics pass runs once.
//! let haystack: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.1).sin()).collect();
//! let needle: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).sin()).collect();
//! let other: Vec<f64> = (0..50).map(|i| (i as f64 * 0.23).cos()).collect();
//!
//! let engine = BatchProfile::new(&haystack);
//! let profiles = engine.profiles(&[&needle, &other]);
//! assert_eq!(profiles[0].len(), haystack.len() - needle.len() + 1);
//!
//! // The planted shape matches (z-normalized distance ~ 0)...
//! let hit = engine.nearest(&needle).unwrap();
//! assert!(hit.dist < 1e-6);
//! // ...and the worker count never changes results, only wall-clock.
//! let serial = parallel::with_threads(1, || engine.profile(&needle));
//! let parallel = parallel::with_threads(4, || engine.profile(&needle));
//! assert_eq!(serial, parallel);
//! ```
//!
//! ## Invariants, enforced
//!
//! The guarantees above — bit-identical replay, deterministic alarm order,
//! typed errors instead of panics — are machine-checked, not conventions.
//! `cargo run -p etsc-lint -- --deny-all` runs the workspace's own
//! zero-dependency static analyzer (`crates/lint`) over every non-test
//! source file and CI fails on any violation of its five rules: no wall
//! clocks or OS entropy outside the allowlisted deadline/heartbeat/bench
//! code (**determinism**), no hash-ordered iteration where bytes or alarm
//! order leave the process (**ordered-iteration**), no `unwrap`/`panic!`/
//! bare indexing in the serving, wire, and persistence runtime
//! (**panic-freedom**), no unchecked `as` integer casts in the frozen
//! codecs (**cast-safety**), and no overlapping mutex guards
//! (**lock-hygiene**). Exemptions are explicit in the source —
//! `// lint: allow(<rule>, <reason>)`, reason mandatory — and a malformed
//! exemption is itself a violation. Performance is watched the same way:
//! CI re-runs the quick benchmarks and `bench_diff` (in `crates/bench`)
//! compares every metric of the fresh `BENCH_*.json` reports against the
//! committed baselines in `crates/bench/baselines/`, printing a
//! direction-aware regression table (warn-only in CI, `--deny` for local
//! A/B runs on quiet hardware).

pub use etsc_audit as audit;
pub use etsc_classifiers as classifiers;
pub use etsc_core as core;
pub use etsc_datasets as datasets;
pub use etsc_early as early;
pub use etsc_net as net;
pub use etsc_persist as persist;
pub use etsc_serve as serve;
pub use etsc_stream as stream;
