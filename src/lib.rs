#![warn(missing_docs)]

//! # etsc
//!
//! Early time series classification (ETSC) algorithms, their substrates,
//! streaming deployment, and meaningfulness audits — a from-scratch Rust
//! reproduction of Wu, Der & Keogh, *"When is Early Classification of Time
//! Series Meaningful?"* (ICDE 2022).
//!
//! This crate is a facade: each module re-exports one workspace crate.
//!
//! * [`core`] — time series model, z-normalization, ED/DTW distances with
//!   lower bounds, subsequence nearest-neighbor search, stream events.
//! * [`datasets`] — seeded synthetic generators standing in for every
//!   dataset the paper uses (GunPoint, spoken words, ECG, EOG, EPG, random
//!   walks, chicken accelerometry).
//! * [`classifiers`] — classic whole-series classification: kNN, centroids,
//!   Gaussian models, SFA / WEASEL-lite, logistic regression, evaluation.
//! * [`early`] — the ETSC algorithms (ECTS, RelaxedECTS, EDSC-CHE/KDE,
//!   RelClass/LDG, TEASER, ECDIRE, stopping rules, cost-aware triggers,
//!   template matching) behind the [`early::EarlyClassifier`] trait, with
//!   an explicit prefix-normalization policy at evaluation time.
//! * [`stream`] — anchored stream monitors, alarm scoring, intervention
//!   cost models, and Appendix A's well-posed alternatives.
//! * [`audit`] — the Section 6 meaningfulness criteria: costs,
//!   prefix/inclusion/homophone confusability, priors, and normalization
//!   sensitivity, combined into [`audit::MeaningfulnessReport`].
//!
//! ## Example
//!
//! ```
//! use etsc::datasets::gunpoint::{self, GunPointConfig};
//! use etsc::early::ects::{Ects, EctsConfig};
//! use etsc::early::metrics::{evaluate, PrefixPolicy};
//!
//! let mut train = gunpoint::generate(10, &GunPointConfig::default(), 1);
//! let mut test = gunpoint::generate(10, &GunPointConfig::default(), 2);
//! train.znormalize();
//! test.znormalize();
//!
//! let ects = Ects::fit(&train, &EctsConfig::default());
//! let result = evaluate(&ects, &test, PrefixPolicy::Oracle);
//! assert!(result.accuracy() > 0.5);
//! assert!(result.earliness() <= 1.0);
//! ```

pub use etsc_audit as audit;
pub use etsc_classifiers as classifiers;
pub use etsc_core as core;
pub use etsc_datasets as datasets;
pub use etsc_early as early;
pub use etsc_stream as stream;
