//! A compact version of the paper's Table 1: how much accuracy do early
//! classifiers lose when the test data is shifted by an offset a camera
//! tilt of ~1.9 degrees would produce?
//!
//! Run: `cargo run --release --example denormalization_study`

use etsc::datasets::gunpoint::{self, GunPointConfig};
use etsc::datasets::transforms::{denormalize, DenormalizeConfig};
use etsc::early::ects::{Ects, EctsConfig};
use etsc::early::metrics::{evaluate, PrefixPolicy};
use etsc::early::relclass::{RelClass, RelClassConfig};
use etsc::early::EarlyClassifier;

fn main() {
    let cfg = GunPointConfig::default();
    let mut train = gunpoint::generate(25, &cfg, 31);
    let mut test = gunpoint::generate(40, &cfg, 32);
    train.znormalize();
    test.znormalize();

    let ects = Ects::fit(&train, &EctsConfig::default());
    let relclass = RelClass::fit(&train, &RelClassConfig::default());
    let models: [(&str, &dyn EarlyClassifier); 2] =
        [("ECTS", &ects), ("RelClass (tau=0.1)", &relclass)];

    println!("offset sweep: accuracy under increasing denormalization\n");
    println!(
        "{:<20} {:>8} {:>8} {:>8} {:>8}",
        "model", "0.0", "0.5", "1.0", "2.0"
    );
    for (name, clf) in models {
        let mut cells = Vec::new();
        for offset in [0.0, 0.5, 1.0, 2.0] {
            let perturbed = if offset == 0.0 {
                test.clone()
            } else {
                denormalize(
                    &test,
                    DenormalizeConfig {
                        max_offset: offset,
                        scale_jitter: 0.0,
                    },
                    33,
                )
            };
            let ev = evaluate(clf, &perturbed, PrefixPolicy::Oracle);
            cells.push(format!("{:>7.1}%", ev.accuracy() * 100.0));
        }
        println!("{name:<20} {}", cells.join(" "));
    }
    println!("\nAn offset of 1.0 on z-normalized data is the paper's Fig 6 perturbation:");
    println!("equivalent to tilting the camera ~1.9 degrees, or the actor wearing heels.");
}
