//! Deploying an early classifier on a stream — and pricing the result.
//!
//! A miniature of the paper's Appendix B experiment: GunPoint exemplars
//! embedded in a long random walk, a TEASER monitor watching the stream,
//! alarms scored against ground truth, and the $1000-event / $200-action
//! cost model deciding whether the system is worth deploying.
//!
//! Run: `cargo run --release --example streaming_deployment`

use etsc::core::{AnnotatedStream, Event};
use etsc::datasets::gunpoint::{self, GunPointConfig};
use etsc::datasets::random_walk::smoothed_random_walk;
use etsc::early::teaser::{Teaser, TeaserConfig};
use etsc::stream::{
    score_alarms, CostModel, ScoringConfig, StreamMonitor, StreamMonitorConfig, StreamNorm,
};

fn main() {
    let cfg = GunPointConfig::default();
    let mut train = gunpoint::generate(25, &cfg, 3);
    let mut test = gunpoint::generate(20, &cfg, 4);
    train.znormalize();
    test.znormalize();

    // Build the stream: 40 gesture events inside 400k points of random walk.
    let walk = smoothed_random_walk(400_000, 15, 5);
    let mut data = walk;
    let mut events = Vec::new();
    let spacing = 9_000;
    let mut pos = spacing;
    for (s, label) in test.iter() {
        if pos + s.len() + spacing > data.len() {
            break;
        }
        let level = data[pos];
        for (j, &v) in s.iter().enumerate() {
            data[pos + j] = level + 2.0 * v;
        }
        events.push(Event::new(pos, pos + s.len(), label));
        pos += s.len() + spacing;
    }
    let stream = AnnotatedStream::new(data, events);
    println!(
        "stream: {} samples, {} genuine gesture events",
        stream.len(),
        stream.events.len()
    );

    // Deploy TEASER behind a monitor with honest per-prefix normalization.
    let teaser = Teaser::fit(&train, &TeaserConfig::fast());
    let mut monitor = StreamMonitor::new(
        &teaser,
        StreamMonitorConfig {
            anchor_stride: 8,
            norm: StreamNorm::PerPrefix,
            refractory: 75,
        },
    );
    let alarms = monitor.run(&stream.data);
    let score = score_alarms(
        &alarms,
        &stream.events,
        stream.len(),
        &ScoringConfig {
            tolerance: 75,
            match_labels: false,
        },
    );
    println!(
        "alarms: {} ({} TP, {} FP, {} FN) — {:.0} false alarms per true one",
        alarms.len(),
        score.true_positives,
        score.false_positives,
        score.false_negatives,
        score.fp_to_tp_ratio()
    );

    // Price it.
    let report = CostModel::appendix_b().evaluate(&score);
    println!(
        "cost without system ${:.0}, with system ${:.0} -> net ${:.0}",
        report.without_system, report.with_system, report.net_benefit
    );
    println!(
        "verdict: {}",
        if report.worth_deploying() {
            "worth deploying"
        } else {
            "NOT worth deploying"
        }
    );
}
