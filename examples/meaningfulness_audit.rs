//! Auditing a proposed early-classification deployment before building it.
//!
//! The paper's Section 6 says any meaningful ETSC problem statement must
//! consider four things: intervention costs, confuser probability (prefixes,
//! inclusions, homophones), the class prior, and the normalization
//! assumptions. This example runs all four audits for the "detect spoken
//! gun / point" problem the paper keeps returning to.
//!
//! Run: `cargo run --release --example meaningfulness_audit`

use etsc::audit::homophone::homophone_audit;
use etsc::audit::inclusion::inclusion_audit;
use etsc::audit::normalization::sensitivity_sweep;
use etsc::audit::prefix::prefix_audit;
use etsc::audit::report::{DeploymentAssumptions, MeaningfulnessReport};
use etsc::audit::PatternLexicon;
use etsc::datasets::random_walk::smoothed_random_walk;
use etsc::datasets::words::{
    utterance, word_dataset, WordConfig, GUN_PREFIX_WORDS, INCLUSION_WORDS, POINT_PREFIX_WORDS,
};
use etsc::early::metrics::PrefixPolicy;
use etsc::stream::CostModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = WordConfig::default();
    let mut rng = StdRng::seed_from_u64(21);

    // The targets and the domain's wider vocabulary.
    let mut targets = PatternLexicon::new();
    for word in ["gun", "point"] {
        targets.add(word, utterance(word, &cfg, &mut rng));
    }
    let mut lexicon = PatternLexicon::new();
    for &word in GUN_PREFIX_WORDS
        .iter()
        .chain(POINT_PREFIX_WORDS)
        .chain(INCLUSION_WORDS)
    {
        lexicon.add(word, utterance(word, &cfg, &mut rng));
    }

    // Criterion 2 evidence: prefix, inclusion, homophone audits.
    let prefix_findings = prefix_audit(&targets, &lexicon, 0.35);
    let inclusion_findings = inclusion_audit(&targets, &lexicon, 0.35);
    println!("prefix collisions:");
    for f in &prefix_findings {
        println!(
            "  '{}' begins like '{}' (d = {:.3})",
            f.confuser, f.target, f.dist
        );
    }
    println!("inclusion collisions:");
    for f in &inclusion_findings {
        println!(
            "  '{}' contains '{}' at offset {} (d = {:.3})",
            f.confuser, f.target, f.position, f.dist
        );
    }

    let mut probes = word_dataset(&["gun", "point"], 4, 120, &cfg, 22);
    probes.znormalize();
    let background = smoothed_random_walk(1 << 18, 15, 23);
    let homophone_findings = homophone_audit(&probes, &[0, 4], &[("random walk", &background)]);
    for f in &homophone_findings {
        println!(
            "homophone check vs {}: in-class {:.2}, background {:.2} (ratio {:.2})",
            f.background,
            f.in_class_nn_dist,
            f.background_nn_dist,
            f.ratio()
        );
    }

    // Criterion 4 evidence: how does a trained model react to tiny offsets?
    // ECTS (1NN on prefixes) makes the assumption the paper criticizes.
    let mut train = word_dataset(&["gun", "point"], 20, 120, &cfg, 24);
    train.znormalize();
    let clf = etsc::early::ects::Ects::fit(&train, &etsc::early::ects::EctsConfig::default());
    let mut test = word_dataset(&["gun", "point"], 10, 120, &cfg, 25);
    test.znormalize();
    let sensitivity = sensitivity_sweep(&clf, &test, &[0.0, 0.5, 1.0], PrefixPolicy::Oracle, 26);

    // Criteria 1 + 3: deployment economics and priors.
    let report = MeaningfulnessReport {
        assumptions: DeploymentAssumptions {
            cost_model: CostModel::appendix_b(),
            // Spoken "gun"/"point" are rare; gun-/point-prefixed and
            // -containing words are an order of magnitude more common
            // (Zipf) — these rates mirror the paper's argument.
            events_per_million: 5.0,
            expected_fp_per_million: 60.0,
        },
        prefix_findings,
        inclusion_findings,
        homophone_findings,
        sensitivity,
    };
    println!("\n{}", report.render());
}
