//! Quickstart: fit an early classifier on a UCR-format dataset, evaluate it,
//! and see why the evaluation convention matters.
//!
//! Run: `cargo run --release --example quickstart`

use etsc::core::UcrDataset;
use etsc::datasets::gunpoint::{self, GunPointConfig};
use etsc::early::ects::{Ects, EctsConfig};
use etsc::early::metrics::{evaluate, PrefixPolicy};

fn main() {
    // 1. A GunPoint-like problem in the UCR format: equal-length, aligned
    //    exemplars, z-normalized. (All data in this workspace is synthetic
    //    and seeded — this program's output is fully reproducible.)
    let cfg = GunPointConfig::default();
    let mut train: UcrDataset = gunpoint::generate(25, &cfg, 1);
    let mut test: UcrDataset = gunpoint::generate(75, &cfg, 2);
    train.znormalize();
    test.znormalize();
    println!(
        "GunPoint-like data: {} train / {} test exemplars of length {}",
        train.len(),
        test.len(),
        train.series_len()
    );

    // 2. Fit ECTS: 1NN early classification via reverse-nearest-neighbor
    //    stability (minimum prediction lengths).
    let ects = Ects::fit(&train, &EctsConfig::default());
    let mean_mpl =
        ects.mpls().iter().sum::<usize>() as f64 / ects.mpls().len() as f64;
    println!("ECTS fitted; mean minimum prediction length = {mean_mpl:.1} samples");

    // 3. Evaluate under the UCR convention (prefixes sliced from the
    //    pre-normalized series — the "oracle" that peeks into the future).
    let oracle = evaluate(&ects, &test, PrefixPolicy::Oracle);
    println!("\nUCR-style (oracle normalization) evaluation:");
    println!("  accuracy  = {:.1}%", oracle.accuracy() * 100.0);
    println!("  earliness = {:.1}% of each series consumed", oracle.earliness() * 100.0);
    println!("  harmonic  = {:.3}", oracle.harmonic_mean());

    // 4. Evaluate honestly: each prefix normalized with only its own points.
    //    This is what a deployment could actually compute.
    let raw_test = {
        let mut t = gunpoint::generate(75, &cfg, 2);
        // Keep the raw values: no z-normalization of full series.
        t.map_series(|_, _| {});
        t
    };
    let honest = evaluate(&ects, &raw_test, PrefixPolicy::PerPrefix);
    println!("\nHonest (per-prefix normalization) evaluation on raw data:");
    println!("  accuracy  = {:.1}%", honest.accuracy() * 100.0);
    println!("  earliness = {:.1}%", honest.earliness() * 100.0);
    println!(
        "\nThe gap between those two numbers is the subject of the paper this"
    );
    println!("library reproduces: 'When is Early Classification of Time Series Meaningful?'");
}
