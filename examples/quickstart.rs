//! Quickstart: fit an early classifier on a UCR-format dataset, evaluate it,
//! and see why the evaluation convention matters.
//!
//! Run: `cargo run --release --example quickstart`

use etsc::core::UcrDataset;
use etsc::datasets::gunpoint::{self, GunPointConfig};
use etsc::early::ects::{Ects, EctsConfig};
use etsc::early::metrics::{evaluate, PrefixPolicy};
use etsc::early::{checkpoint_session, resume_session, EarlyClassifier, SessionNorm};
use etsc::persist::ModelRegistry;
use etsc::serve::{Record, Runtime, RuntimeConfig};
use etsc::stream::{StreamMonitorConfig, StreamNorm};

fn main() {
    // 1. A GunPoint-like problem in the UCR format: equal-length, aligned
    //    exemplars, z-normalized. (All data in this workspace is synthetic
    //    and seeded — this program's output is fully reproducible.)
    let cfg = GunPointConfig::default();
    let mut train: UcrDataset = gunpoint::generate(25, &cfg, 1);
    let mut test: UcrDataset = gunpoint::generate(75, &cfg, 2);
    train.znormalize();
    test.znormalize();
    println!(
        "GunPoint-like data: {} train / {} test exemplars of length {}",
        train.len(),
        test.len(),
        train.series_len()
    );

    // 2. Fit ECTS: 1NN early classification via reverse-nearest-neighbor
    //    stability (minimum prediction lengths).
    let ects = Ects::fit(&train, &EctsConfig::default());
    let mean_mpl = ects.mpls().iter().sum::<usize>() as f64 / ects.mpls().len() as f64;
    println!("ECTS fitted; mean minimum prediction length = {mean_mpl:.1} samples");

    // 3. Evaluate under the UCR convention (prefixes sliced from the
    //    pre-normalized series — the "oracle" that peeks into the future).
    let oracle = evaluate(&ects, &test, PrefixPolicy::Oracle);
    println!("\nUCR-style (oracle normalization) evaluation:");
    println!("  accuracy  = {:.1}%", oracle.accuracy() * 100.0);
    println!(
        "  earliness = {:.1}% of each series consumed",
        oracle.earliness() * 100.0
    );
    println!("  harmonic  = {:.3}", oracle.harmonic_mean());

    // 4. Evaluate honestly: each prefix normalized with only its own points.
    //    This is what a deployment could actually compute.
    let raw_test = {
        let mut t = gunpoint::generate(75, &cfg, 2);
        // Keep the raw values: no z-normalization of full series.
        t.map_series(|_, _| {});
        t
    };
    let honest = evaluate(&ects, &raw_test, PrefixPolicy::PerPrefix);
    println!("\nHonest (per-prefix normalization) evaluation on raw data:");
    println!("  accuracy  = {:.1}%", honest.accuracy() * 100.0);
    println!("  earliness = {:.1}%", honest.earliness() * 100.0);

    // 5. The streaming-first API: instead of re-deciding on every grown
    //    prefix (O(prefix) per sample), open an incremental session and
    //    push samples as they arrive — amortized O(1) per sample for the
    //    ED-based models, with identical decisions.
    let probe = test.series(0);
    let mut session = ects.session(SessionNorm::Raw);
    let mut committed = None;
    for (i, &x) in probe.iter().enumerate() {
        if let Some((label, confidence)) = session.push(x).label_confidence() {
            committed = Some((i + 1, label, confidence));
            break;
        }
    }
    match committed {
        Some((len, label, confidence)) => println!(
            "\nStreaming session: committed to class {label} after {len}/{} samples \
             (confidence {confidence:.2})",
            probe.len()
        ),
        None => println!("\nStreaming session: never committed on this probe"),
    }

    // 6. Persistence: save the fitted model to a registry, reload it in a
    //    "new process" scope, and resume a checkpointed stream exactly
    //    where the old process left it.
    let registry_dir = std::env::temp_dir().join(format!("etsc-quickstart-{}", std::process::id()));
    let registry = ModelRegistry::open(&registry_dir).expect("registry opens");
    registry.save("ects-gunpoint", &ects).expect("model saves");

    // Checkpoint an in-flight session mid-stream (e.g. just before a
    // deploy)...
    let split = probe.len() / 3;
    let mut inflight = ects.session(SessionNorm::Raw);
    for &x in &probe[..split] {
        inflight.push(x);
    }
    let checkpoint = checkpoint_session(inflight.as_ref()).expect("session checkpoints");
    drop(inflight);
    drop(session);
    drop(ects); // the "old process" is gone

    // ...and in the replacement process: load the model back by name,
    // resume the session from the checkpoint, and keep classifying.
    {
        let registry = ModelRegistry::open(&registry_dir).expect("registry reopens");
        for entry in registry.list().expect("registry lists") {
            println!(
                "\nRegistry entry: {} ({} v{}, {} bytes)",
                entry.name, entry.kind, entry.version, entry.bytes
            );
        }
        let restored: Ects = registry.load("ects-gunpoint").expect("model loads");
        let mut resumed =
            resume_session(&restored, SessionNorm::Raw, &checkpoint).expect("session resumes");
        let mut resumed_commit = None;
        for (i, &x) in probe[split..].iter().enumerate() {
            if let Some((label, confidence)) = resumed.push(x).label_confidence() {
                resumed_commit = Some((split + i + 1, label, confidence));
                break;
            }
        }
        match resumed_commit {
            Some((len, label, confidence)) => println!(
                "Resumed session (checkpointed at {split}): committed to class {label} after \
                 {len}/{} samples (confidence {confidence:.2}) — exactly as the uninterrupted run",
                probe.len()
            ),
            None => println!("Resumed session: never committed on this probe"),
        }
    }
    // 7. Serving at scale: a sharded runtime owns many concurrent streams,
    //    routes batched records to per-shard workers, rebalances live (the
    //    re-routed streams migrate as anchor snapshots), and checkpoints the
    //    whole fleet into the same registry for crash recovery.
    {
        let restored: Ects = registry.load("ects-gunpoint").expect("model loads");
        let serve_cfg = RuntimeConfig {
            shards: 2,
            monitor: StreamMonitorConfig {
                anchor_stride: 8,
                norm: StreamNorm::Raw,
                refractory: 60,
            },
            model_name: "ects-gunpoint".to_string(),
            ..RuntimeConfig::default()
        };
        let mut runtime = Runtime::new(&restored, serve_cfg).expect("valid serve config");
        // Interleaved traffic: 12 streams each replaying a test exemplar.
        for t in 0..test.series_len() {
            let batch: Vec<Record> = (0..12)
                .map(|id| Record::new(id, test.series(id as usize)[t]))
                .collect();
            runtime.ingest(&batch).expect("queues sized for the demo");
            if t == test.series_len() / 2 {
                runtime.rebalance(5).expect("live rebalance");
            }
        }
        let alarms = runtime.drain();
        runtime.checkpoint(&registry).expect("runtime checkpoints");
        let stats = runtime.stats();
        println!(
            "\nServing runtime: {} streams over {} shards (rebalanced mid-run, {} migrated), \
             {} pushes, {} alarms, checkpoint {} bytes",
            stats.streams,
            stats.shards.len(),
            stats.migrated_streams,
            stats.pushes,
            alarms.len(),
            stats.last_checkpoint_bytes
        );
        // A crashed replacement process would now call
        // Runtime::recover(&restored, &registry_dir, "ects-gunpoint") and
        // continue every stream's alarm sequence exactly.
    }
    let _ = std::fs::remove_dir_all(&registry_dir);

    println!("\nThe gap between the oracle and honest numbers is the subject of the paper this");
    println!("library reproduces: 'When is Early Classification of Time Series Meaningful?'");
}
